"""Style and efficiency linting for Verilog sources.

The PyraNet ranking step asks a judge to score "the overall Verilog
coding style and the efficiency of the code" on a 0–20 scale.  This
module provides the deterministic analysis that judge is built on: a
set of lint rules, each with a severity-weighted penalty, covering the
issues hardware reviewers actually flag — blocking assignments in
clocked processes, latch-inferring incomplete branches, magic numbers,
unused signals, formatting inconsistencies, and so on.

:func:`lint` returns a :class:`StyleReport`; the ranking judge in
:mod:`repro.dataset.ranking` converts its penalty total to the 0–20
scale.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import ast_nodes as ast
from .parser import ParseError, parse


@dataclass(frozen=True)
class Violation:
    """One style finding."""

    code: str
    message: str
    penalty: float
    line: int = 0

    def __str__(self) -> str:
        return f"{self.line}: {self.code}: {self.message}"


@dataclass
class StyleReport:
    """Lint outcome; ``penalty`` is the sum over violations (capped
    per-rule so one pervasive issue cannot dominate)."""

    violations: List[Violation] = field(default_factory=list)
    parse_failed: bool = False

    @property
    def penalty(self) -> float:
        by_code: Dict[str, float] = {}
        for violation in self.violations:
            by_code[violation.code] = by_code.get(violation.code, 0.0) + (
                violation.penalty
            )
        # Cap each style rule's total contribution at 4 points; fatal
        # E-codes (parse failures) are never capped.
        return sum(
            total if code.startswith("E") else min(total, 4.0)
            for code, total in by_code.items()
        )

    def codes(self) -> Set[str]:
        return {v.code for v in self.violations}


# -- rule implementations --------------------------------------------------


def _rule_line_length(lines: Sequence[str], out: List[Violation]) -> None:
    for number, line in enumerate(lines, start=1):
        if len(line.rstrip("\n")) > 120:
            out.append(Violation(
                "W001", "line exceeds 120 characters", 0.25, number))


def _rule_tabs_and_spaces(lines: Sequence[str], out: List[Violation]) -> None:
    has_tab_indent = any(line.startswith("\t") for line in lines)
    has_space_indent = any(
        line.startswith(" ") and line.strip() for line in lines
    )
    if has_tab_indent and has_space_indent:
        out.append(Violation(
            "W002", "mixed tab and space indentation", 1.5))


def _rule_trailing_whitespace(
    lines: Sequence[str], out: List[Violation]
) -> None:
    count = sum(
        1 for line in lines if line != line.rstrip() and line.strip()
    )
    if count > 3:
        out.append(Violation(
            "W003", f"trailing whitespace on {count} lines", 0.75))


def _rule_comment_density(
    lines: Sequence[str], out: List[Violation]
) -> None:
    code_lines = [line for line in lines if line.strip()]
    if len(code_lines) < 12:
        return
    comment_lines = sum(
        1 for line in code_lines
        if line.strip().startswith("//") or "/*" in line or "//" in line
    )
    if comment_lines == 0:
        out.append(Violation(
            "W004", "no comments in a non-trivial design", 1.75))


def _rule_indent_consistency(
    lines: Sequence[str], out: List[Violation]
) -> None:
    widths: Set[int] = set()
    for line in lines:
        stripped = line.lstrip(" ")
        if stripped and stripped != line and not line.startswith("\t"):
            widths.add(len(line) - len(stripped))
    # Wildly varying indent widths indicate copy-paste formatting.
    if len(widths) > 5:
        out.append(Violation(
            "W005", "inconsistent indentation levels", 2.0))


#: Acceptable naming styles: snake_case, SCREAMING_CASE, PascalCase.
_IDENT_RE = re.compile(
    r"^[a-z][a-z0-9_]*$|^[A-Z][A-Z0-9_]*$|^[A-Z][a-zA-Z0-9]*$"
)


class _AstRules:
    """AST-level style rules for one module."""

    def __init__(self, module: ast.Module, out: List[Violation]) -> None:
        self._module = module
        self._out = out

    def run(self) -> None:
        module = self._module
        self._check_port_style()
        self._check_naming()
        has_parameters = bool(module.parameters)
        for item in module.items:
            if isinstance(item, ast.Always):
                self._check_always(item)
        self._check_magic_numbers(has_parameters)
        self._check_unused_signals()

    def _check_port_style(self) -> None:
        undirected = [
            p for p in self._module.ports if p.direction is None
        ]
        # Non-ANSI headers are completed during parsing, so detect the
        # old style by body-level Port items.
        body_port_decls = [
            item for item in self._module.items if isinstance(item, ast.Port)
        ]
        if body_port_decls and not undirected:
            self._out.append(Violation(
                "S001", "non-ANSI (Verilog-1995) port declarations",
                0.5, self._module.line))

    def _check_naming(self) -> None:
        short = [
            p.name for p in self._module.ports
            if len(p.name) == 1 and p.name not in ("a", "b", "c", "d", "q", "y")
        ]
        cryptic = [
            p.name for p in self._module.ports
            if not _IDENT_RE.match(p.name) and not p.name.startswith("\\")
        ]
        if cryptic:
            self._out.append(Violation(
                "S002",
                f"mixed-case or cryptic port names: {sorted(cryptic)[:4]}",
                0.5, self._module.line))
        if len(short) > 2:
            self._out.append(Violation(
                "S003", f"many single-letter ports: {sorted(short)[:6]}",
                0.5, self._module.line))
        cryptic_internals = [
            item.name for item in self._module.items
            if isinstance(item, ast.Decl)
            and re.match(r"^[ntwsx]\d+$", item.name)
        ]
        if cryptic_internals:
            self._out.append(Violation(
                "S004",
                f"meaningless internal names: {cryptic_internals[:5]}",
                0.9 * len(cryptic_internals), self._module.line))

    def _check_always(self, item: ast.Always) -> None:
        sens = item.sensitivity
        if sens is None:
            return
        sequential = not sens.star and any(
            s.edge != "level" for s in sens.items
        )
        blocking, nonblocking = _count_assign_kinds(item.body)
        if sequential and blocking:
            self._out.append(Violation(
                "S010",
                f"{blocking} blocking assignment(s) in an edge-triggered "
                "always block", 1.5, item.line))
        if not sequential and nonblocking:
            self._out.append(Violation(
                "S011",
                f"{nonblocking} non-blocking assignment(s) in a "
                "combinational always block", 1.0, item.line))
        if not sequential:
            if _has_incomplete_case(item.body):
                self._out.append(Violation(
                    "S012",
                    "case without default in combinational logic "
                    "(latch risk)", 1.5, item.line))
            if _has_if_without_else(item.body):
                self._out.append(Violation(
                    "S013",
                    "if without else in combinational logic (latch risk)",
                    1.0, item.line))
            if not sens.star and _sensitivity_incomplete(item):
                self._out.append(Violation(
                    "S014",
                    "explicit sensitivity list may be incomplete "
                    "(prefer @*)", 0.75, item.line))
        if _has_delay(item.body) and sequential:
            self._out.append(Violation(
                "S015", "delay control inside clocked logic", 1.0,
                item.line))
        depth = _statement_depth(item.body)
        if depth > 6:
            self._out.append(Violation(
                "S016", f"deeply nested statements (depth {depth})",
                0.75, item.line))
        chain = _longest_if_chain(item.body)
        if chain >= 5:
            self._out.append(Violation(
                "S017",
                f"if/else chain of length {chain} (a case statement "
                "would be clearer and faster to synthesise)", 0.75,
                item.line))

    def _check_magic_numbers(self, has_parameters: bool) -> None:
        numbers: List[int] = []

        def visit(expr: Optional[ast.Expr]) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.Number):
                if expr.value > 64 and expr.width is None:
                    numbers.append(expr.value)
            for child in _expr_children(expr):
                visit(child)

        for item in self._module.items:
            if isinstance(item, ast.ContinuousAssign):
                visit(item.value)
            elif isinstance(item, (ast.Always, ast.Initial)):
                _visit_stmt_exprs(item.body, visit)
        if len(numbers) >= 3 and not has_parameters:
            self._out.append(Violation(
                "S020",
                f"magic numbers ({sorted(set(numbers))[:4]}…) without "
                "parameters", 0.75, self._module.line))

    def _check_unused_signals(self) -> None:
        declared: Dict[str, int] = {}
        for item in self._module.items:
            if isinstance(item, ast.Decl):
                declared[item.name] = item.line
        if not declared:
            return
        used: Set[str] = set()

        def visit(expr: Optional[ast.Expr]) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.Identifier):
                used.add(expr.name)
            for child in _expr_children(expr):
                visit(child)

        for item in self._module.items:
            if isinstance(item, ast.ContinuousAssign):
                visit(item.target)
                visit(item.value)
            elif isinstance(item, (ast.Always, ast.Initial)):
                _visit_stmt_exprs(item.body, visit, include_targets=True)
            elif isinstance(item, ast.Instance):
                for conn in item.connections + item.param_overrides:
                    visit(conn.expr)
            elif isinstance(item, ast.GateInstance):
                for conn in item.connections:
                    visit(conn)
            elif isinstance(item, ast.Decl) and item.init is not None:
                visit(item.init)
        unused = sorted(set(declared) - used)
        if unused:
            self._out.append(Violation(
                "S021", f"unused signal(s): {unused[:5]}",
                0.5 * len(unused), declared[unused[0]]))


# -- AST helpers ---------------------------------------------------------------


def _expr_children(expr: ast.Expr) -> List[Optional[ast.Expr]]:
    if isinstance(expr, ast.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.if_true, expr.if_false]
    if isinstance(expr, ast.Select):
        return [expr.base, expr.left, expr.right]
    if isinstance(expr, ast.Concat):
        return list(expr.parts)
    if isinstance(expr, ast.Replicate):
        return [expr.count, expr.value]
    if isinstance(expr, (ast.FunctionCall, ast.SystemCall)):
        return list(expr.args)
    return []


def _visit_stmt_exprs(stmt, visit, include_targets: bool = False) -> None:
    if stmt is None:
        return
    if isinstance(stmt, ast.Block):
        for inner in stmt.stmts:
            _visit_stmt_exprs(inner, visit, include_targets)
    elif isinstance(stmt, ast.Assign):
        visit(stmt.value)
        if include_targets:
            visit(stmt.target)
    elif isinstance(stmt, ast.If):
        visit(stmt.cond)
        _visit_stmt_exprs(stmt.then_stmt, visit, include_targets)
        _visit_stmt_exprs(stmt.else_stmt, visit, include_targets)
    elif isinstance(stmt, ast.Case):
        visit(stmt.subject)
        for item in stmt.items:
            for expr in item.exprs:
                visit(expr)
            _visit_stmt_exprs(item.body, visit, include_targets)
    elif isinstance(stmt, (ast.For, ast.While, ast.Repeat, ast.Forever)):
        if isinstance(stmt, ast.While):
            visit(stmt.cond)
        if isinstance(stmt, ast.Repeat):
            visit(stmt.count)
        _visit_stmt_exprs(stmt.body, visit, include_targets)
        if isinstance(stmt, ast.For):
            _visit_stmt_exprs(stmt.init, visit, include_targets)
            visit(stmt.cond)
            _visit_stmt_exprs(stmt.step, visit, include_targets)
    elif isinstance(stmt, (ast.Delay, ast.EventControl, ast.Wait)):
        _visit_stmt_exprs(stmt.stmt, visit, include_targets)
    elif isinstance(stmt, (ast.SystemTaskCall, ast.TaskCall)):
        for arg in stmt.args:
            visit(arg)


def _count_assign_kinds(stmt) -> Tuple[int, int]:
    blocking = nonblocking = 0

    def walk(node) -> None:
        nonlocal blocking, nonblocking
        if node is None:
            return
        if isinstance(node, ast.Assign):
            if node.blocking:
                blocking += 1
            else:
                nonblocking += 1
        for child in _stmt_children(node):
            walk(child)

    walk(stmt)
    return blocking, nonblocking


def _stmt_children(stmt) -> List:
    if isinstance(stmt, ast.Block):
        return list(stmt.stmts)
    if isinstance(stmt, ast.If):
        return [stmt.then_stmt, stmt.else_stmt]
    if isinstance(stmt, ast.Case):
        return [item.body for item in stmt.items]
    if isinstance(stmt, (ast.For, ast.While, ast.Repeat, ast.Forever)):
        extra = []
        if isinstance(stmt, ast.For):
            extra = [stmt.init, stmt.step]
        return [stmt.body] + extra
    if isinstance(stmt, (ast.Delay, ast.EventControl, ast.Wait)):
        return [stmt.stmt]
    return []


def _has_incomplete_case(stmt) -> bool:
    if stmt is None:
        return False
    if isinstance(stmt, ast.Case):
        has_default = any(not item.exprs for item in stmt.items)
        if not has_default:
            return True
    return any(_has_incomplete_case(c) for c in _stmt_children(stmt))


def _has_if_without_else(stmt) -> bool:
    if stmt is None:
        return False
    if isinstance(stmt, ast.If) and stmt.else_stmt is None:
        # else-if chains count via recursion; a bare if is the risk.
        if _assigns_anything(stmt.then_stmt):
            return True
    return any(_has_if_without_else(c) for c in _stmt_children(stmt))


def _assigns_anything(stmt) -> bool:
    if stmt is None:
        return False
    if isinstance(stmt, ast.Assign):
        return True
    return any(_assigns_anything(c) for c in _stmt_children(stmt))


def _sensitivity_incomplete(item: ast.Always) -> bool:
    """Are signals read in the body missing from the sensitivity list?"""
    listed: Set[str] = set()
    for entry in item.sensitivity.items:
        if isinstance(entry.expr, ast.Identifier):
            listed.add(entry.expr.name)
    read: Set[str] = set()

    def visit(expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Identifier):
            read.add(expr.name)
        for child in _expr_children(expr):
            visit(child)

    _visit_stmt_exprs(item.body, visit)
    return bool(read - listed)


def _has_delay(stmt) -> bool:
    if stmt is None:
        return False
    if isinstance(stmt, ast.Delay):
        return True
    return any(_has_delay(c) for c in _stmt_children(stmt))


def _statement_depth(stmt, depth: int = 0) -> int:
    if stmt is None:
        return depth
    best = depth
    for child in _stmt_children(stmt):
        best = max(best, _statement_depth(child, depth + 1))
    return best


def _longest_if_chain(stmt) -> int:
    if stmt is None:
        return 0
    if isinstance(stmt, ast.If):
        length = 1
        node = stmt.else_stmt
        while isinstance(node, ast.If):
            length += 1
            node = node.else_stmt
        inner = max(
            (_longest_if_chain(c) for c in _stmt_children(stmt)), default=0
        )
        return max(length, inner)
    return max(
        (_longest_if_chain(c) for c in _stmt_children(stmt)), default=0
    )


def lint(source: str) -> StyleReport:
    """Lint Verilog source text.

    Parse failures yield ``parse_failed=True`` with a single fatal
    violation; the ranking judge maps that to a score of 0.
    """
    report = StyleReport()
    lines = source.splitlines()
    _rule_line_length(lines, report.violations)
    _rule_tabs_and_spaces(lines, report.violations)
    _rule_trailing_whitespace(lines, report.violations)
    _rule_comment_density(lines, report.violations)
    _rule_indent_consistency(lines, report.violations)
    try:
        tree = parse(source)
    except ParseError as exc:
        report.parse_failed = True
        report.violations.append(Violation(
            "E000", f"parse error: {exc}", 20.0, getattr(exc, "line", 0)))
        return report
    for module in tree.modules:
        _AstRules(module, report.violations).run()
    if len(tree.modules) > 3:
        report.violations.append(Violation(
            "W006", f"{len(tree.modules)} modules in one file", 0.25))
    return report
