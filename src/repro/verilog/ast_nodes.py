"""Abstract syntax tree for the supported Verilog subset.

Nodes are plain dataclasses; the parser builds them and the elaborator,
metrics, style checker, and simulator walk them.  Every node carries the
source line it started on so diagnostics can point at code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions."""

    line: int = 0


@dataclass
class Number(Expr):
    """An integer literal, possibly sized/based and holding x/z digits.

    Attributes:
        width: declared bit width, or None for unsized literals.
        value: the known bits (x/z positions are zero here).
        xz_mask: bit mask of positions that are x or z.
        z_mask: bit mask of positions that are z (subset of ``xz_mask``).
        signed: True for ``'sd``-style signed literals.
        text: original spelling, kept for round-tripping.
    """

    width: Optional[int] = None
    value: int = 0
    xz_mask: int = 0
    z_mask: int = 0
    signed: bool = False
    text: str = ""


@dataclass
class RealNumber(Expr):
    """A real literal such as ``3.14`` (rare in synthesizable code)."""

    value: float = 0.0


@dataclass
class StringLiteral(Expr):
    """A string literal, used mainly in $display calls."""

    value: str = ""


@dataclass
class Identifier(Expr):
    """A reference to a named net, variable, parameter, or genvar."""

    name: str = ""


@dataclass
class HierarchicalId(Expr):
    """A dotted reference like ``dut.counter.q`` (testbench probing)."""

    parts: Tuple[str, ...] = ()


@dataclass
class Select(Expr):
    """Bit select ``a[i]``, part select ``a[h:l]``, or indexed part
    select ``a[b +: w]`` / ``a[b -: w]``.

    ``kind`` is one of ``"bit"``, ``"part"``, ``"plus"``, ``"minus"``.
    """

    base: Expr = None  # type: ignore[assignment]
    kind: str = "bit"
    left: Expr = None  # type: ignore[assignment]
    right: Optional[Expr] = None


@dataclass
class Concat(Expr):
    """Concatenation ``{a, b, c}``."""

    parts: List[Expr] = field(default_factory=list)


@dataclass
class Replicate(Expr):
    """Replication ``{N{expr}}``."""

    count: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Unary(Expr):
    """Unary operator application (including reduction operators)."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    """Binary operator application."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Ternary(Expr):
    """Conditional expression ``cond ? a : b``."""

    cond: Expr = None  # type: ignore[assignment]
    if_true: Expr = None  # type: ignore[assignment]
    if_false: Expr = None  # type: ignore[assignment]


@dataclass
class FunctionCall(Expr):
    """Call of a user-defined function inside an expression."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class SystemCall(Expr):
    """A system function/task reference such as ``$clog2`` or ``$time``."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for procedural statements."""

    line: int = 0


@dataclass
class Block(Stmt):
    """A ``begin … end`` block, optionally named, with local decls."""

    name: Optional[str] = None
    decls: List["Decl"] = field(default_factory=list)
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class Assign(Stmt):
    """A procedural assignment.

    ``blocking`` distinguishes ``=`` from ``<=``.  ``delay`` is an
    optional intra-assignment delay expression (ignored by the cycle
    semantics but parsed for corpus compatibility).
    """

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]
    blocking: bool = True
    delay: Optional[Expr] = None


@dataclass
class If(Stmt):
    """``if``/``else`` statement."""

    cond: Expr = None  # type: ignore[assignment]
    then_stmt: Optional[Stmt] = None
    else_stmt: Optional[Stmt] = None


@dataclass
class CaseItem:
    """One arm of a case statement; ``exprs`` empty means ``default``."""

    exprs: List[Expr] = field(default_factory=list)
    body: Optional[Stmt] = None
    line: int = 0


@dataclass
class Case(Stmt):
    """``case``/``casez``/``casex`` statement; ``kind`` holds which."""

    kind: str = "case"
    subject: Expr = None  # type: ignore[assignment]
    items: List[CaseItem] = field(default_factory=list)


@dataclass
class For(Stmt):
    """``for (init; cond; step) body`` loop."""

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    """``while (cond) body`` loop."""

    cond: Expr = None  # type: ignore[assignment]
    body: Optional[Stmt] = None


@dataclass
class Repeat(Stmt):
    """``repeat (count) body`` loop."""

    count: Expr = None  # type: ignore[assignment]
    body: Optional[Stmt] = None


@dataclass
class Forever(Stmt):
    """``forever body`` loop (testbench clock generators)."""

    body: Optional[Stmt] = None


@dataclass
class Delay(Stmt):
    """``# delay stmt`` — a timing control prefix (testbench code)."""

    amount: Expr = None  # type: ignore[assignment]
    stmt: Optional[Stmt] = None


@dataclass
class EventControl(Stmt):
    """``@(sens) stmt`` inside a procedural context."""

    sensitivity: "SensitivityList" = None  # type: ignore[assignment]
    stmt: Optional[Stmt] = None


@dataclass
class Wait(Stmt):
    """``wait (expr) stmt``."""

    cond: Expr = None  # type: ignore[assignment]
    stmt: Optional[Stmt] = None


@dataclass
class SystemTaskCall(Stmt):
    """A system task statement such as ``$display(...)``."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class TaskCall(Stmt):
    """A call of a user task (parsed; limited simulation support)."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NullStmt(Stmt):
    """A lone semicolon."""


@dataclass
class Disable(Stmt):
    """``disable name`` (parsed for corpus compatibility)."""

    name: str = ""


# ---------------------------------------------------------------------------
# Declarations and module items
# ---------------------------------------------------------------------------


@dataclass
class Range:
    """A ``[msb:lsb]`` range; both bounds are constant expressions."""

    msb: Expr = None  # type: ignore[assignment]
    lsb: Expr = None  # type: ignore[assignment]


@dataclass
class Decl:
    """A net/variable declaration.

    Attributes:
        kind: ``wire``, ``reg``, ``integer``, ``real``, ``supply0`` …
        name: declared identifier.
        range: packed vector range, or None for scalars.
        array_dims: unpacked (memory) dimensions.
        signed: ``signed`` qualifier.
        init: optional initialiser expression (``wire x = …``).
    """

    kind: str = "wire"
    name: str = ""
    range: Optional[Range] = None
    array_dims: List[Range] = field(default_factory=list)
    signed: bool = False
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class Port:
    """A module port.

    ``direction`` is ``input``/``output``/``inout``; ``net_kind`` is the
    declared storage (``wire`` or ``reg``).  Non-ANSI headers produce a
    Port with only ``name`` set, completed later by body declarations.
    """

    direction: Optional[str] = None
    net_kind: str = "wire"
    name: str = ""
    range: Optional[Range] = None
    signed: bool = False
    line: int = 0


@dataclass
class Parameter:
    """``parameter``/``localparam`` declaration."""

    name: str = ""
    value: Expr = None  # type: ignore[assignment]
    local: bool = False
    range: Optional[Range] = None
    signed: bool = False
    line: int = 0


@dataclass
class ContinuousAssign:
    """``assign target = value;`` with optional drive delay (parsed only)."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]
    delay: Optional[Expr] = None
    line: int = 0


@dataclass
class SensitivityItem:
    """One entry of a sensitivity list: ``posedge clk`` etc.

    ``edge`` is ``posedge``, ``negedge``, or ``level``.
    """

    edge: str = "level"
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class SensitivityList:
    """The ``@(...)`` control; ``star`` means ``@*``/``@(*)``."""

    star: bool = False
    items: List[SensitivityItem] = field(default_factory=list)


@dataclass
class Always:
    """An ``always @(...)`` process."""

    sensitivity: Optional[SensitivityList] = None
    body: Optional[Stmt] = None
    line: int = 0


@dataclass
class Initial:
    """An ``initial`` process."""

    body: Optional[Stmt] = None
    line: int = 0


@dataclass
class PortConnection:
    """One connection in an instantiation; ``name`` None = positional."""

    name: Optional[str] = None
    expr: Optional[Expr] = None
    line: int = 0


@dataclass
class Instance:
    """A module (or primitive-gate) instantiation."""

    module_name: str = ""
    instance_name: str = ""
    param_overrides: List[PortConnection] = field(default_factory=list)
    connections: List[PortConnection] = field(default_factory=list)
    line: int = 0


@dataclass
class GateInstance:
    """A primitive gate instantiation: ``and g1(y, a, b);``."""

    gate_kind: str = ""
    instance_name: str = ""
    connections: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class FunctionDecl:
    """A user function: ``function [7:0] f; input ...; begin ... end``."""

    name: str = ""
    range: Optional[Range] = None
    signed: bool = False
    inputs: List[Decl] = field(default_factory=list)
    locals: List[Decl] = field(default_factory=list)
    body: Optional[Stmt] = None
    line: int = 0


@dataclass
class TaskDecl:
    """A user task (parsed; limited simulation support)."""

    name: str = ""
    inputs: List[Decl] = field(default_factory=list)
    outputs: List[Decl] = field(default_factory=list)
    locals: List[Decl] = field(default_factory=list)
    body: Optional[Stmt] = None
    line: int = 0


@dataclass
class GenerateFor:
    """A ``for``-generate loop (unrolled during elaboration)."""

    genvar: str = ""
    init: Expr = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]
    step: Expr = None  # type: ignore[assignment]
    label: Optional[str] = None
    items: List["ModuleItem"] = field(default_factory=list)
    line: int = 0


@dataclass
class GenerateIf:
    """An ``if``-generate (resolved during elaboration)."""

    cond: Expr = None  # type: ignore[assignment]
    then_items: List["ModuleItem"] = field(default_factory=list)
    else_items: List["ModuleItem"] = field(default_factory=list)
    line: int = 0


ModuleItem = Union[
    Decl,
    Parameter,
    ContinuousAssign,
    Always,
    Initial,
    Instance,
    GateInstance,
    FunctionDecl,
    TaskDecl,
    GenerateFor,
    GenerateIf,
]


@dataclass
class Module:
    """A parsed module definition."""

    name: str = ""
    ports: List[Port] = field(default_factory=list)
    parameters: List[Parameter] = field(default_factory=list)
    items: List[ModuleItem] = field(default_factory=list)
    line: int = 0

    def port_names(self) -> List[str]:
        """Return declared port names in header order."""
        return [p.name for p in self.ports]

    def find_port(self, name: str) -> Optional[Port]:
        """Return the port named ``name``, or None."""
        for port in self.ports:
            if port.name == name:
                return port
        return None


@dataclass
class SourceFile:
    """A parsed compilation unit (one or more modules)."""

    modules: List[Module] = field(default_factory=list)

    def module_names(self) -> List[str]:
        return [m.name for m in self.modules]

    def find_module(self, name: str) -> Optional[Module]:
        for module in self.modules:
            if module.name == name:
                return module
        return None
