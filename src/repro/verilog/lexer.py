"""Tokenizer for a Verilog-2001 subset.

The lexer converts preprocessed source text into a stream of
:class:`Token` objects carrying position information, which the parser
and the diagnostics machinery use to produce readable error messages.

The supported language subset covers everything the PyraNet corpus and
evaluation problems use: module declarations (ANSI and non-ANSI),
parameters, nets and variables, continuous assignments, always and
initial blocks, case statements, loops, instantiations, functions, and
the full Verilog expression grammar including sized/based literals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional


class TokenKind(enum.Enum):
    """Lexical categories produced by :class:`Lexer`."""

    KEYWORD = "keyword"
    IDENT = "ident"
    SYSTEM_IDENT = "system_ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    EOF = "eof"


#: Reserved words of the supported subset.  Anything else that looks like
#: an identifier is an IDENT token.
KEYWORDS = frozenset(
    """
    module endmodule input output inout wire reg integer real time
    parameter localparam assign always initial begin end if else case
    casez casex endcase default for while repeat forever posedge negedge
    or and not nand nor xor xnor buf bufif0 bufif1 notif0 notif1
    function endfunction task endtask generate endgenerate genvar
    signed unsigned defparam specify endspecify supply0 supply1
    tri tri0 tri1 triand trior wand wor
    disable wait fork join deassign force release
    """.split()
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<<", ">>>", "===", "!==",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "**",
    "~&", "~|", "~^", "^~", "->", "+:", "-:",
    "+", "-", "*", "/", "%", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", "=", ".",
    "@", "#", "$",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: lexical category.
        text: exact source spelling (for numbers, the full literal).
        line: 1-based source line.
        col: 1-based source column.
    """

    kind: TokenKind
    text: str
    line: int
    col: int

    def is_op(self, *ops: str) -> bool:
        """Return True when this token is an operator with one of ``ops``."""
        return self.kind is TokenKind.OPERATOR and self.text in ops

    def is_kw(self, *kws: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.text in kws

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}({self.text!r})@{self.line}:{self.col}"


class LexError(Exception):
    """Raised when the source contains a character sequence that cannot
    be tokenized (e.g. an unterminated string or a stray byte)."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.message = message
        self.line = line
        self.col = col


class Lexer:
    """Single-pass maximal-munch tokenizer.

    Usage::

        tokens = Lexer(source).tokenize()
    """

    def __init__(self, source: str) -> None:
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    # -- character helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._src):
            return ""
        return self._src[index]

    def _advance(self, count: int = 1) -> str:
        """Consume ``count`` characters, tracking line/column."""
        taken = self._src[self._pos : self._pos + count]
        for ch in taken:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += len(taken)
        return taken

    # -- skipping ----------------------------------------------------------

    def _skip_trivia(self) -> None:
        """Skip whitespace, comments, and synthesis attributes."""
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._col
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise LexError(
                            "unterminated block comment", start_line, start_col
                        )
                    self._advance()
                self._advance(2)
            elif ch == "(" and self._peek(1) == "*":
                # Synthesis attribute (* ... *): skipped entirely.  Guard
                # against "(*)" which is a sensitivity list, not an attribute.
                if self._peek(2) == ")":
                    return
                start_line, start_col = self._line, self._col
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == ")"):
                    if not self._peek():
                        raise LexError(
                            "unterminated attribute", start_line, start_col
                        )
                    self._advance()
                self._advance(2)
            else:
                return

    # -- token scanners ----------------------------------------------------

    def _scan_ident(self) -> Token:
        line, col = self._line, self._col
        start = self._pos
        if self._peek() == "\\":
            # Escaped identifier: backslash up to whitespace.
            self._advance()
            while self._peek() and self._peek() not in " \t\r\n":
                self._advance()
            text = self._src[start:self._pos]
            return Token(TokenKind.IDENT, text, line, col)
        while self._peek() and (self._peek().isalnum() or self._peek() in "_$"):
            self._advance()
        text = self._src[start:self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, col)

    def _scan_system_ident(self) -> Token:
        line, col = self._line, self._col
        start = self._pos
        self._advance()  # the '$'
        while self._peek() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self._src[start:self._pos]
        if text == "$":
            return Token(TokenKind.OPERATOR, "$", line, col)
        return Token(TokenKind.SYSTEM_IDENT, text, line, col)

    def _scan_number(self) -> Token:
        """Scan decimal, real, and based literals.

        A based literal may be preceded by a size (``8'hFF``); the size,
        when present, has already been consumed as the leading digits.
        """
        line, col = self._line, self._col
        start = self._pos
        while self._peek() and (self._peek().isdigit() or self._peek() == "_"):
            self._advance()
        # Real numbers: 3.14, 1e9, 2.5e-3
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self._peek() and (self._peek().isdigit() or self._peek() == "_"):
                self._advance()
        if self._peek() and self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) and self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        # Based literal continuation: optional whitespace then 'b/'h/...
        save = self._pos, self._line, self._col
        while self._peek() and self._peek() in " \t":
            self._advance()
        if self._peek() == "'":
            self._scan_base_suffix()
        else:
            self._pos, self._line, self._col = save
        text = self._src[start:self._pos]
        return Token(TokenKind.NUMBER, text, line, col)

    def _scan_base_suffix(self) -> None:
        """Consume ``'[sS]?[bodhBODH]<digits>`` after a quote."""
        line, col = self._line, self._col
        self._advance()  # the quote
        if self._peek() and self._peek() in "sS":
            self._advance()
        base = self._peek()
        if base not in "bodhBODH":
            raise LexError(f"invalid base character {base!r}", line, col)
        self._advance()
        while self._peek() and self._peek() in " \t":
            self._advance()
        digits_start = self._pos
        while self._peek() and (
            self._peek().isalnum() or self._peek() in "_?xXzZ"
        ):
            self._advance()
        if self._pos == digits_start:
            raise LexError("based literal missing digits", line, col)

    def _scan_unsized_based(self) -> Token:
        """Scan a based literal with no size prefix, e.g. ``'b0``, ``'hFF``."""
        line, col = self._line, self._col
        start = self._pos
        self._scan_base_suffix()
        return Token(TokenKind.NUMBER, self._src[start:self._pos], line, col)

    def _scan_string(self) -> Token:
        line, col = self._line, self._col
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", line, col)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._advance()
                chars.append({"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(esc, esc))
            else:
                chars.append(self._advance())
        return Token(TokenKind.STRING, "".join(chars), line, col)

    def _scan_operator(self) -> Token:
        line, col = self._line, self._col
        for op in _OPERATORS:
            if self._src.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenKind.OPERATOR, op, line, col)
        raise LexError(f"unexpected character {self._peek()!r}", line, col)

    # -- public API ----------------------------------------------------------

    def next_token(self) -> Token:
        """Return the next token, or an EOF token at end of input."""
        self._skip_trivia()
        ch = self._peek()
        if not ch:
            return Token(TokenKind.EOF, "", self._line, self._col)
        if ch.isalpha() or ch == "_" or ch == "\\":
            return self._scan_ident()
        if ch == "$":
            return self._scan_system_ident()
        if ch.isdigit():
            return self._scan_number()
        if ch == "'":
            return self._scan_unsized_based()
        if ch == '"':
            return self._scan_string()
        return self._scan_operator()

    def tokenize(self) -> List[Token]:
        """Tokenize the whole input, returning a list ending with EOF."""
        tokens: List[Token] = []
        while True:
            tok = self.next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                return tokens

    def __iter__(self) -> Iterator[Token]:
        while True:
            tok = self.next_token()
            yield tok
            if tok.kind is TokenKind.EOF:
                return


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list."""
    return Lexer(source).tokenize()
