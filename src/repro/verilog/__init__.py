"""Verilog front-end and simulator.

Public surface:

* :func:`tokenize`, :func:`parse`, :func:`parse_module` — lexing/parsing;
* :func:`preprocess` — compiler directives;
* :func:`check`, :class:`CheckResult` — compile checking with the
  paper's syntax/dependency taxonomy (the Icarus Verilog substitute);
* :class:`Simulator` — event-driven four-state simulation;
* :func:`measure` — structural metrics;
* :func:`lint` — style/efficiency linting;
* :func:`check_equivalence`, :func:`check_properties`,
  :func:`verify_design` — bounded BDD-based formal checking
  (:mod:`repro.verilog.formal`).
"""

from .lexer import LexError, Token, TokenKind, tokenize
from .parser import ParseError, parse, parse_module, parse_number_literal
from .preprocessor import PreprocessorError, preprocess
from .syntax_checker import (
    Category,
    CheckResult,
    Diagnostic,
    Severity,
    check,
    has_module_declaration,
)
from .metrics import StructuralMetrics, measure, measure_module
from .style import StyleReport, Violation, lint
from .sim.values import Vec4
from .sim.runtime import Simulator, build_library
from .sim.design import ElaborationError
from .sim.interp import SimulationError, StopSimulation
from .formal import (
    ElaborationMemo,
    FormalReport,
    FormalUnsupported,
    check_equivalence,
    check_properties,
    verify_code,
    verify_design,
)

__all__ = [
    "tokenize", "Token", "TokenKind", "LexError",
    "parse", "parse_module", "parse_number_literal", "ParseError",
    "preprocess", "PreprocessorError",
    "check", "CheckResult", "Diagnostic", "Severity", "Category",
    "has_module_declaration",
    "measure", "measure_module", "StructuralMetrics",
    "lint", "StyleReport", "Violation",
    "Vec4", "Simulator", "build_library",
    "ElaborationError", "SimulationError", "StopSimulation",
    "FormalReport", "FormalUnsupported", "ElaborationMemo",
    "check_equivalence", "check_properties",
    "verify_design", "verify_code",
]
