"""Verilog compiler directives: `define, `include, `ifdef, and friends.

The preprocessor runs over raw source text before lexing.  It supports
the directive subset that appears in real-world Verilog corpora:

* ``\\`define`` / ``\\`undef`` — object-like and function-like macros;
* ``\\`ifdef`` / ``\\`ifndef`` / ``\\`elsif`` / ``\\`else`` / ``\\`endif``;
* ``\\`include`` — resolved through a caller-supplied virtual filesystem
  (a mapping of file name to contents), since the curation pipeline works
  on in-memory corpus entries rather than on-disk trees;
* ``\\`timescale``, ``\\`default_nettype``, ``\\`resetall``,
  ``\\`celldefine`` / ``\\`endcelldefine`` — recorded and stripped.

Unresolvable includes are reported as *dependency issues* rather than
syntax errors, matching the paper's filtering taxonomy (Section III-A.2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple


class PreprocessorError(Exception):
    """Raised for malformed directives (unterminated `ifdef, bad `define)."""


@dataclass
class Macro:
    """A `define'd macro: optional parameter list plus replacement body."""

    name: str
    params: Optional[List[str]]
    body: str


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`.

    Attributes:
        text: the directive-free source text.
        missing_includes: include files that could not be resolved; these
            are dependency issues, not syntax errors.
        timescale: the last ``\\`timescale`` argument seen, if any.
        defines: the macro table at end of processing.
    """

    text: str
    missing_includes: List[str] = field(default_factory=list)
    timescale: Optional[str] = None
    defines: Dict[str, Macro] = field(default_factory=dict)


_DIRECTIVE_RE = re.compile(r"`([a-zA-Z_][a-zA-Z0-9_]*)")
_STRIP_DIRECTIVES = frozenset(
    ["resetall", "celldefine", "endcelldefine", "default_nettype",
     "timescale", "line", "pragma", "nounconnected_drive",
     "unconnected_drive"]
)


class Preprocessor:
    """Streaming, line-oriented preprocessor.

    Args:
        include_files: virtual filesystem mapping include names to text.
        predefined: macros visible before processing starts.
        max_include_depth: recursion guard for include cycles.
    """

    def __init__(
        self,
        include_files: Optional[Mapping[str, str]] = None,
        predefined: Optional[Mapping[str, str]] = None,
        max_include_depth: int = 16,
    ) -> None:
        self._includes = dict(include_files or {})
        self._macros: Dict[str, Macro] = {}
        for name, body in (predefined or {}).items():
            self._macros[name] = Macro(name, None, body)
        self._max_depth = max_include_depth
        self._missing: List[str] = []
        self._timescale: Optional[str] = None

    # -- public ------------------------------------------------------------

    def run(self, source: str) -> PreprocessResult:
        """Process ``source`` and return the directive-free text."""
        text = self._process(source, depth=0)
        return PreprocessResult(
            text=text,
            missing_includes=list(self._missing),
            timescale=self._timescale,
            defines=dict(self._macros),
        )

    # -- internals -----------------------------------------------------------

    def _process(self, source: str, depth: int) -> str:
        if depth > self._max_depth:
            raise PreprocessorError("include depth limit exceeded")
        out: List[str] = []
        lines = source.split("\n")
        # Conditional stack entries: (taken_branch_already, currently_active)
        cond_stack: List[Tuple[bool, bool]] = []
        index = 0
        while index < len(lines):
            line = lines[index]
            stripped = line.lstrip()
            active = all(entry[1] for entry in cond_stack)
            if stripped.startswith("`"):
                consumed = self._handle_directive(
                    lines, index, stripped, cond_stack, out, active, depth
                )
                index += consumed
                continue
            if active:
                out.append(self._expand_macros(line))
            index += 1
        if cond_stack:
            raise PreprocessorError("unterminated `ifdef/`ifndef")
        return "\n".join(out)

    def _handle_directive(
        self,
        lines: List[str],
        index: int,
        stripped: str,
        cond_stack: List[Tuple[bool, bool]],
        out: List[str],
        active: bool,
        depth: int,
    ) -> int:
        """Process one directive line; return how many lines were consumed."""
        match = _DIRECTIVE_RE.match(stripped)
        if not match:
            raise PreprocessorError(f"malformed directive: {stripped!r}")
        name = match.group(1)
        rest = stripped[match.end():].strip()

        if name == "ifdef" or name == "ifndef":
            want_defined = name == "ifdef"
            symbol = rest.split()[0] if rest else ""
            taken = (symbol in self._macros) == want_defined
            cond_stack.append((taken, active and taken))
            return 1
        if name == "elsif":
            if not cond_stack:
                raise PreprocessorError("`elsif without `ifdef")
            taken_before, _ = cond_stack[-1]
            symbol = rest.split()[0] if rest else ""
            parent_active = all(entry[1] for entry in cond_stack[:-1])
            take_now = not taken_before and symbol in self._macros
            cond_stack[-1] = (taken_before or take_now, parent_active and take_now)
            return 1
        if name == "else":
            if not cond_stack:
                raise PreprocessorError("`else without `ifdef")
            taken_before, _ = cond_stack[-1]
            parent_active = all(entry[1] for entry in cond_stack[:-1])
            cond_stack[-1] = (True, parent_active and not taken_before)
            return 1
        if name == "endif":
            if not cond_stack:
                raise PreprocessorError("`endif without `ifdef")
            cond_stack.pop()
            return 1

        if not active:
            return 1

        if name == "define":
            return self._handle_define(lines, index, rest)
        if name == "undef":
            symbol = rest.split()[0] if rest else ""
            self._macros.pop(symbol, None)
            return 1
        if name == "include":
            self._handle_include(rest, out, depth)
            return 1
        if name == "timescale":
            self._timescale = rest
            return 1
        if name in _STRIP_DIRECTIVES:
            return 1
        # Unknown backtick word: treat as macro usage on a line of its own.
        out.append(self._expand_macros(stripped))
        return 1

    def _handle_define(self, lines: List[str], index: int, rest: str) -> int:
        """Parse a `define, following line continuations."""
        consumed = 1
        while rest.endswith("\\") and index + consumed < len(lines):
            rest = rest[:-1] + "\n" + lines[index + consumed]
            consumed += 1
        match = re.match(r"([a-zA-Z_][a-zA-Z0-9_]*)(\(([^)]*)\))?", rest)
        if not match:
            raise PreprocessorError(f"malformed `define: {rest!r}")
        name = match.group(1)
        params = None
        if match.group(2) is not None and rest[match.end(1):match.end(1) + 1] == "(":
            params = [p.strip() for p in match.group(3).split(",") if p.strip()]
        body = rest[match.end():].strip()
        self._macros[name] = Macro(name, params, body)
        return consumed

    def _handle_include(self, rest: str, out: List[str], depth: int) -> None:
        match = re.match(r'"([^"]*)"', rest) or re.match(r"<([^>]*)>", rest)
        if not match:
            raise PreprocessorError(f"malformed `include: {rest!r}")
        fname = match.group(1)
        if fname in self._includes:
            out.append(self._process(self._includes[fname], depth + 1))
        else:
            self._missing.append(fname)

    def _expand_macros(self, line: str, depth: int = 0) -> str:
        """Expand backtick macro references in ``line``."""
        if "`" not in line or depth > 32:
            return line
        result: List[str] = []
        pos = 0
        while pos < len(line):
            ch = line[pos]
            if ch != "`":
                result.append(ch)
                pos += 1
                continue
            match = _DIRECTIVE_RE.match(line, pos)
            if not match:
                result.append(ch)
                pos += 1
                continue
            name = match.group(1)
            macro = self._macros.get(name)
            if macro is None:
                # Leave unknown macros in place; the lexer will flag them.
                result.append(line[pos:match.end()])
                pos = match.end()
                continue
            pos = match.end()
            if macro.params is not None and pos < len(line) and line[pos] == "(":
                args, pos = self._parse_macro_args(line, pos)
                body = macro.body
                for param, arg in zip(macro.params, args):
                    body = re.sub(
                        rf"\b{re.escape(param)}\b", arg.strip(), body
                    )
                result.append(self._expand_macros(body, depth + 1))
            else:
                result.append(self._expand_macros(macro.body, depth + 1))
        return "".join(result)

    @staticmethod
    def _parse_macro_args(line: str, pos: int) -> Tuple[List[str], int]:
        """Parse a parenthesised, comma-separated argument list."""
        assert line[pos] == "("
        pos += 1
        args: List[str] = []
        current: List[str] = []
        level = 1
        while pos < len(line) and level > 0:
            ch = line[pos]
            if ch == "(":
                level += 1
                current.append(ch)
            elif ch == ")":
                level -= 1
                if level > 0:
                    current.append(ch)
            elif ch == "," and level == 1:
                args.append("".join(current))
                current = []
            else:
                current.append(ch)
            pos += 1
        args.append("".join(current))
        return args, pos


def preprocess(
    source: str,
    include_files: Optional[Mapping[str, str]] = None,
    predefined: Optional[Mapping[str, str]] = None,
) -> PreprocessResult:
    """One-shot convenience wrapper around :class:`Preprocessor`."""
    return Preprocessor(include_files, predefined).run(source)
