"""Recursive-descent parser for the supported Verilog-2001 subset.

The parser consumes the token stream produced by
:mod:`repro.verilog.lexer` and builds the AST defined in
:mod:`repro.verilog.ast_nodes`.  It recognises everything the PyraNet
corpus generators emit plus the usual real-world variations: ANSI and
non-ANSI port lists, parameter ports, generate blocks, functions/tasks,
gate primitives, and full expressions.

Errors raise :class:`ParseError` carrying line/column information; the
syntax checker converts these into diagnostics.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from . import ast_nodes as ast
from .lexer import Lexer, LexError, Token, TokenKind


class ParseError(Exception):
    """Raised on a syntax error, with source position."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.message = message
        self.line = line
        self.col = col


_NUMBER_RE = re.compile(
    r"^\s*(\d[\d_]*)?\s*'\s*([sS]?)([bodhBODH])\s*([0-9a-fA-F_xXzZ?]+)\s*$"
)

_BASE_BITS = {"b": 1, "o": 3, "d": 0, "h": 4}

#: Net-declaration keywords accepted at module scope.
_NET_KINDS = frozenset(
    ["wire", "reg", "integer", "real", "time", "supply0", "supply1",
     "tri", "tri0", "tri1", "triand", "trior", "wand", "wor", "genvar"]
)

#: Primitive gate keywords.
_GATE_KINDS = frozenset(
    ["and", "or", "not", "nand", "nor", "xor", "xnor", "buf",
     "bufif0", "bufif1", "notif0", "notif1"]
)


def parse_number_literal(text: str, line: int = 0) -> ast.Number:
    """Decode a Verilog number literal into an :class:`ast.Number`.

    Handles plain decimal (``42``), sized/based (``8'hFF``), unsized
    based (``'b0``), signed (``4'sb1010``), and x/z digits
    (``4'b10xz``).  Underscores are ignored.  ``?`` is an alias for z.
    """
    text = text.strip()
    match = _NUMBER_RE.match(text)
    if not match:
        clean = text.replace("_", "")
        try:
            return ast.Number(
                line=line, width=None, value=int(clean), signed=True, text=text
            )
        except ValueError:
            raise ParseError(f"invalid number literal {text!r}", line, 0)
    size_txt, sign_txt, base_ch, digits = match.groups()
    width = int(size_txt.replace("_", "")) if size_txt else None
    signed = bool(sign_txt)
    base_ch = base_ch.lower()
    digits = digits.replace("_", "")
    value = 0
    xz_mask = 0
    z_mask = 0
    if base_ch == "d":
        if any(c in "xXzZ?" for c in digits):
            # 'dx / 'dz: all bits unknown.
            nbits = width or 32
            xz_mask = (1 << nbits) - 1
            if digits[0] in "zZ?":
                z_mask = xz_mask
        else:
            value = int(digits)
    else:
        bits_per = _BASE_BITS[base_ch]
        for ch in digits:
            value <<= bits_per
            xz_mask <<= bits_per
            z_mask <<= bits_per
            digit_mask = (1 << bits_per) - 1
            if ch in "xX":
                xz_mask |= digit_mask
            elif ch in "zZ?":
                xz_mask |= digit_mask
                z_mask |= digit_mask
            else:
                value |= int(ch, 16)
    if width is not None:
        full = (1 << width) - 1
        # x/z in the top digit extends leftward per the LRM.
        top_bit = 1 << (len(digits) * _BASE_BITS.get(base_ch, 0) - 1) if base_ch != "d" else 0
        if top_bit and (xz_mask & top_bit):
            ext = full & ~((top_bit << 1) - 1)
            xz_mask |= ext
            if z_mask & top_bit:
                z_mask |= ext
        value &= full
        xz_mask &= full
        z_mask &= full
    return ast.Number(
        line=line, width=width, value=value, xz_mask=xz_mask,
        z_mask=z_mask, signed=signed, text=text,
    )


class Parser:
    """Token-stream parser producing :class:`ast.SourceFile`."""

    def __init__(self, source: str) -> None:
        try:
            self._tokens = Lexer(source).tokenize()
        except LexError as exc:
            raise ParseError(exc.message, exc.line, exc.col) from exc
        self._pos = 0

    # -- token stream helpers ------------------------------------------------

    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        tok = self._tok
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self._tok
        return ParseError(message, tok.line, tok.col)

    def _expect_op(self, op: str) -> Token:
        if not self._tok.is_op(op):
            raise self._error(f"expected {op!r}, found {self._tok.text!r}")
        return self._next()

    def _expect_kw(self, kw: str) -> Token:
        if not self._tok.is_kw(kw):
            raise self._error(f"expected {kw!r}, found {self._tok.text!r}")
        return self._next()

    def _expect_ident(self) -> Token:
        if self._tok.kind is not TokenKind.IDENT:
            raise self._error(f"expected identifier, found {self._tok.text!r}")
        return self._next()

    def _accept_op(self, *ops: str) -> Optional[Token]:
        if self._tok.is_op(*ops):
            return self._next()
        return None

    def _accept_kw(self, *kws: str) -> Optional[Token]:
        if self._tok.is_kw(*kws):
            return self._next()
        return None

    # -- top level -------------------------------------------------------------

    def parse_source(self) -> ast.SourceFile:
        """Parse a complete compilation unit."""
        source = ast.SourceFile()
        while self._tok.kind is not TokenKind.EOF:
            if self._tok.is_kw("module"):
                source.modules.append(self.parse_module())
            else:
                raise self._error(
                    f"expected 'module', found {self._tok.text!r}"
                )
        return source

    # -- module ------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        start = self._expect_kw("module")
        name = self._expect_ident().text
        module = ast.Module(name=name, line=start.line)
        if self._accept_op("#"):
            self._parse_parameter_port_list(module)
        if self._tok.is_op("("):
            self._parse_port_list(module)
        self._expect_op(";")
        while not self._tok.is_kw("endmodule"):
            if self._tok.kind is TokenKind.EOF:
                raise self._error("unexpected end of file inside module")
            self._parse_module_item(module)
        self._next()  # endmodule
        self._complete_non_ansi_ports(module)
        return module

    def _parse_parameter_port_list(self, module: ast.Module) -> None:
        """Parse ``#(parameter A = 1, parameter [3:0] B = 2, ...)``."""
        self._expect_op("(")
        while not self._tok.is_op(")"):
            self._accept_kw("parameter")
            signed = bool(self._accept_kw("signed"))
            rng = self._parse_optional_range()
            pname = self._expect_ident()
            self._expect_op("=")
            value = self.parse_expression()
            module.parameters.append(
                ast.Parameter(
                    name=pname.text, value=value, local=False,
                    range=rng, signed=signed, line=pname.line,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(")")

    def _parse_port_list(self, module: ast.Module) -> None:
        """Parse an ANSI or non-ANSI port list."""
        self._expect_op("(")
        if self._accept_op(")"):
            return
        # ANSI style starts with a direction keyword; non-ANSI is names only.
        direction: Optional[str] = None
        net_kind = "wire"
        rng: Optional[ast.Range] = None
        signed = False
        while True:
            tok = self._tok
            if tok.is_kw("input", "output", "inout"):
                direction = self._next().text
                net_kind = "wire"
                signed = False
                rng = None
                if self._tok.is_kw("wire", "reg", "integer"):
                    net_kind = self._next().text
                if self._accept_kw("signed"):
                    signed = True
                rng = self._parse_optional_range()
            elif tok.is_kw("signed"):
                self._next()
                signed = True
                rng = self._parse_optional_range()
            name_tok = self._expect_ident()
            module.ports.append(
                ast.Port(
                    direction=direction, net_kind=net_kind,
                    name=name_tok.text, range=rng, signed=signed,
                    line=name_tok.line,
                )
            )
            if self._accept_op(","):
                continue
            break
        self._expect_op(")")

    def _complete_non_ansi_ports(self, module: ast.Module) -> None:
        """Fill in direction/range on non-ANSI ports from body decls."""
        pending = {p.name: p for p in module.ports if p.direction is None}
        if not pending:
            return
        for item in module.items:
            if isinstance(item, ast.Port) and item.name in pending:
                port = pending[item.name]
                port.direction = item.direction
                port.range = item.range
                port.signed = item.signed
                if item.net_kind != "wire":
                    port.net_kind = item.net_kind
            elif isinstance(item, ast.Decl) and item.name in pending:
                port = pending[item.name]
                if item.kind == "reg":
                    port.net_kind = "reg"

    # -- module items ----------------------------------------------------------

    def _parse_module_item(self, module: ast.Module) -> None:
        tok = self._tok
        if tok.is_kw("input", "output", "inout"):
            self._parse_port_declaration(module)
        elif tok.is_kw("parameter", "localparam"):
            self._parse_parameter_decl(module)
        elif tok.kind is TokenKind.KEYWORD and tok.text in _NET_KINDS:
            self._parse_net_declaration(module)
        elif tok.is_kw("assign"):
            self._parse_continuous_assign(module)
        elif tok.is_kw("always"):
            module.items.append(self._parse_always())
        elif tok.is_kw("initial"):
            start = self._next()
            body = self.parse_statement()
            module.items.append(ast.Initial(body=body, line=start.line))
        elif tok.is_kw("function"):
            module.items.append(self._parse_function())
        elif tok.is_kw("task"):
            module.items.append(self._parse_task())
        elif tok.is_kw("generate"):
            self._next()
            while not self._tok.is_kw("endgenerate"):
                if self._tok.kind is TokenKind.EOF:
                    raise self._error("unexpected EOF inside generate")
                self._parse_generate_item(module.items)
            self._next()
        elif tok.is_kw("for", "if"):
            # Generate constructs are legal without generate/endgenerate.
            self._parse_generate_item(module.items)
        elif tok.is_kw("defparam"):
            self._next()
            # defparam path = value; — parsed and discarded.
            self.parse_expression()
            self._expect_op("=")
            self.parse_expression()
            self._expect_op(";")
        elif tok.kind is TokenKind.KEYWORD and tok.text in _GATE_KINDS:
            self._parse_gate_instances(module)
        elif tok.kind is TokenKind.IDENT:
            self._parse_instantiation(module)
        elif tok.is_op(";"):
            self._next()
        else:
            raise self._error(f"unexpected token {tok.text!r} in module body")

    def _parse_port_declaration(self, module: ast.Module) -> None:
        """Body-level ``input/output [wire|reg] [signed] [range] names;``"""
        direction = self._next().text
        net_kind = "wire"
        if self._tok.is_kw("wire", "reg", "integer"):
            net_kind = self._next().text
        signed = bool(self._accept_kw("signed"))
        rng = self._parse_optional_range()
        while True:
            name_tok = self._expect_ident()
            init = None
            if self._accept_op("="):
                init = self.parse_expression()
            port_item = ast.Port(
                direction=direction, net_kind=net_kind, name=name_tok.text,
                range=rng, signed=signed, line=name_tok.line,
            )
            module.items.append(port_item)
            existing = module.find_port(name_tok.text)
            if existing is not None and existing.direction is None:
                pass  # completed by _complete_non_ansi_ports
            elif existing is None:
                # Port declared only in the body (a non-ANSI corner case):
                # add it to the port list to be permissive.
                module.ports.append(port_item)
            if net_kind == "reg" and init is not None:
                module.items.append(
                    ast.Decl(
                        kind="reg", name=name_tok.text, range=rng,
                        signed=signed, init=init, line=name_tok.line,
                    )
                )
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _parse_parameter_decl(self, module: ast.Module) -> None:
        local = self._next().text == "localparam"
        signed = bool(self._accept_kw("signed"))
        self._accept_kw("integer")
        rng = self._parse_optional_range()
        while True:
            name_tok = self._expect_ident()
            self._expect_op("=")
            value = self.parse_expression()
            module.parameters.append(
                ast.Parameter(
                    name=name_tok.text, value=value, local=local,
                    range=rng, signed=signed, line=name_tok.line,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _parse_net_declaration(self, module: ast.Module) -> None:
        kind = self._next().text
        signed = bool(self._accept_kw("signed"))
        rng = self._parse_optional_range()
        while True:
            name_tok = self._expect_ident()
            array_dims: List[ast.Range] = []
            while self._tok.is_op("["):
                array_dims.append(self._parse_range())
            init = None
            if self._accept_op("="):
                init = self.parse_expression()
            module.items.append(
                ast.Decl(
                    kind=kind, name=name_tok.text, range=rng,
                    array_dims=array_dims, signed=signed, init=init,
                    line=name_tok.line,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _parse_continuous_assign(self, module: ast.Module) -> None:
        start = self._next()
        delay = None
        if self._accept_op("#"):
            delay = self._parse_delay_value()
        while True:
            target = self._parse_lvalue()
            self._expect_op("=")
            value = self.parse_expression()
            module.items.append(
                ast.ContinuousAssign(
                    target=target, value=value, delay=delay, line=start.line
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _parse_always(self) -> ast.Always:
        start = self._expect_kw("always")
        sensitivity = None
        if self._accept_op("@"):
            sensitivity = self._parse_sensitivity()
        body = self.parse_statement()
        return ast.Always(sensitivity=sensitivity, body=body, line=start.line)

    def _parse_sensitivity(self) -> ast.SensitivityList:
        if self._accept_op("*"):
            return ast.SensitivityList(star=True)
        self._expect_op("(")
        if self._accept_op("*"):
            self._expect_op(")")
            return ast.SensitivityList(star=True)
        items: List[ast.SensitivityItem] = []
        while True:
            edge = "level"
            if self._tok.is_kw("posedge", "negedge"):
                edge = self._next().text
            expr = self.parse_expression()
            items.append(ast.SensitivityItem(edge=edge, expr=expr))
            if self._accept_op(",") or self._accept_kw("or"):
                continue
            break
        self._expect_op(")")
        return ast.SensitivityList(star=False, items=items)

    def _parse_function(self) -> ast.FunctionDecl:
        start = self._expect_kw("function")
        self._accept_kw("automatic")
        signed = bool(self._accept_kw("signed"))
        self._accept_kw("integer")
        rng = self._parse_optional_range()
        name = self._expect_ident().text
        func = ast.FunctionDecl(
            name=name, range=rng, signed=signed, line=start.line
        )
        if self._accept_op("("):
            # ANSI function ports.
            while not self._tok.is_op(")"):
                self._expect_kw("input")
                in_signed = bool(self._accept_kw("signed"))
                in_rng = self._parse_optional_range()
                pname = self._expect_ident().text
                func.inputs.append(
                    ast.Decl(kind="wire", name=pname, range=in_rng,
                             signed=in_signed)
                )
                if not self._accept_op(","):
                    break
            self._expect_op(")")
        self._expect_op(";")
        # Non-ANSI input declarations and locals.
        while self._tok.is_kw("input", "reg", "integer"):
            if self._tok.is_kw("input"):
                self._next()
                in_signed = bool(self._accept_kw("signed"))
                in_rng = self._parse_optional_range()
                while True:
                    pname = self._expect_ident().text
                    func.inputs.append(
                        ast.Decl(kind="wire", name=pname, range=in_rng,
                                 signed=in_signed)
                    )
                    if not self._accept_op(","):
                        break
                self._expect_op(";")
            else:
                kind = self._next().text
                l_signed = bool(self._accept_kw("signed"))
                l_rng = self._parse_optional_range()
                while True:
                    lname = self._expect_ident().text
                    func.locals.append(
                        ast.Decl(kind=kind, name=lname, range=l_rng,
                                 signed=l_signed)
                    )
                    if not self._accept_op(","):
                        break
                self._expect_op(";")
        func.body = self.parse_statement()
        self._expect_kw("endfunction")
        return func

    def _parse_task(self) -> ast.TaskDecl:
        start = self._expect_kw("task")
        self._accept_kw("automatic")
        name = self._expect_ident().text
        task = ast.TaskDecl(name=name, line=start.line)
        if self._accept_op("("):
            while not self._tok.is_op(")"):
                direction = "input"
                if self._tok.is_kw("input", "output", "inout"):
                    direction = self._next().text
                t_signed = bool(self._accept_kw("signed"))
                t_rng = self._parse_optional_range()
                pname = self._expect_ident().text
                decl = ast.Decl(kind="reg", name=pname, range=t_rng,
                                signed=t_signed)
                (task.inputs if direction == "input" else task.outputs).append(decl)
                if not self._accept_op(","):
                    break
            self._expect_op(")")
        self._expect_op(";")
        while self._tok.is_kw("input", "output", "reg", "integer"):
            direction_or_kind = self._next().text
            t_signed = bool(self._accept_kw("signed"))
            t_rng = self._parse_optional_range()
            while True:
                pname = self._expect_ident().text
                decl = ast.Decl(kind="reg", name=pname, range=t_rng,
                                signed=t_signed)
                if direction_or_kind == "input":
                    task.inputs.append(decl)
                elif direction_or_kind == "output":
                    task.outputs.append(decl)
                else:
                    task.locals.append(decl)
                if not self._accept_op(","):
                    break
            self._expect_op(";")
        task.body = self.parse_statement()
        self._expect_kw("endtask")
        return task

    def _parse_generate_item(self, items: List[ast.ModuleItem]) -> None:
        if self._tok.is_kw("for"):
            items.append(self._parse_generate_for())
        elif self._tok.is_kw("if"):
            items.append(self._parse_generate_if())
        elif self._tok.is_kw("begin"):
            self._next()
            if self._accept_op(":"):
                self._expect_ident()
            while not self._tok.is_kw("end"):
                self._parse_generate_item(items)
            self._next()
        else:
            # Ordinary module items are allowed inside generate.
            holder = ast.Module()
            self._parse_module_item(holder)
            items.extend(holder.items)

    def _parse_generate_for(self) -> ast.GenerateFor:
        start = self._expect_kw("for")
        self._expect_op("(")
        genvar = self._expect_ident().text
        self._expect_op("=")
        init = self.parse_expression()
        self._expect_op(";")
        cond = self.parse_expression()
        self._expect_op(";")
        step_var = self._expect_ident().text
        if step_var != genvar:
            raise self._error("generate-for must step its own genvar")
        self._expect_op("=")
        step = self.parse_expression()
        self._expect_op(")")
        gen = ast.GenerateFor(
            genvar=genvar, init=init, cond=cond, step=step, line=start.line
        )
        if self._accept_kw("begin"):
            if self._accept_op(":"):
                gen.label = self._expect_ident().text
            while not self._tok.is_kw("end"):
                self._parse_generate_item(gen.items)
            self._next()
        else:
            self._parse_generate_item(gen.items)
        return gen

    def _parse_generate_if(self) -> ast.GenerateIf:
        start = self._expect_kw("if")
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        gen = ast.GenerateIf(cond=cond, line=start.line)
        self._parse_generate_branch(gen.then_items)
        if self._accept_kw("else"):
            self._parse_generate_branch(gen.else_items)
        return gen

    def _parse_generate_branch(self, items: List[ast.ModuleItem]) -> None:
        if self._accept_kw("begin"):
            if self._accept_op(":"):
                self._expect_ident()
            while not self._tok.is_kw("end"):
                self._parse_generate_item(items)
            self._next()
        else:
            self._parse_generate_item(items)

    def _parse_gate_instances(self, module: ast.Module) -> None:
        gate_kind = self._next().text
        if self._accept_op("#"):
            self._parse_delay_value()
        while True:
            inst_name = ""
            if self._tok.kind is TokenKind.IDENT:
                inst_name = self._next().text
            line = self._tok.line
            self._expect_op("(")
            conns: List[ast.Expr] = []
            while not self._tok.is_op(")"):
                conns.append(self.parse_expression())
                if not self._accept_op(","):
                    break
            self._expect_op(")")
            module.items.append(
                ast.GateInstance(
                    gate_kind=gate_kind, instance_name=inst_name,
                    connections=conns, line=line,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _parse_instantiation(self, module: ast.Module) -> None:
        module_name_tok = self._expect_ident()
        param_overrides: List[ast.PortConnection] = []
        if self._accept_op("#"):
            self._expect_op("(")
            param_overrides = self._parse_connection_list()
            self._expect_op(")")
        while True:
            inst_name = self._expect_ident().text
            if self._tok.is_op("["):
                self._parse_range()  # instance arrays: range parsed, ignored
            self._expect_op("(")
            connections = (
                self._parse_connection_list() if not self._tok.is_op(")") else []
            )
            self._expect_op(")")
            module.items.append(
                ast.Instance(
                    module_name=module_name_tok.text,
                    instance_name=inst_name,
                    param_overrides=param_overrides,
                    connections=connections,
                    line=module_name_tok.line,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(";")

    def _parse_connection_list(self) -> List[ast.PortConnection]:
        conns: List[ast.PortConnection] = []
        while True:
            line = self._tok.line
            if self._accept_op("."):
                name = self._expect_ident().text
                self._expect_op("(")
                expr = None
                if not self._tok.is_op(")"):
                    expr = self.parse_expression()
                self._expect_op(")")
                conns.append(ast.PortConnection(name=name, expr=expr, line=line))
            elif self._tok.is_op(")"):
                break
            else:
                expr = self.parse_expression()
                conns.append(ast.PortConnection(name=None, expr=expr, line=line))
            if not self._accept_op(","):
                break
        return conns

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        """Parse one procedural statement."""
        tok = self._tok
        if tok.is_kw("begin"):
            return self._parse_block()
        if tok.is_kw("if"):
            return self._parse_if()
        if tok.is_kw("case", "casez", "casex"):
            return self._parse_case()
        if tok.is_kw("for"):
            return self._parse_for()
        if tok.is_kw("while"):
            return self._parse_while()
        if tok.is_kw("repeat"):
            return self._parse_repeat()
        if tok.is_kw("forever"):
            self._next()
            return ast.Forever(body=self.parse_statement(), line=tok.line)
        if tok.is_kw("wait"):
            self._next()
            self._expect_op("(")
            cond = self.parse_expression()
            self._expect_op(")")
            inner = (
                ast.NullStmt(line=tok.line)
                if self._accept_op(";")
                else self.parse_statement()
            )
            return ast.Wait(cond=cond, stmt=inner, line=tok.line)
        if tok.is_kw("disable"):
            self._next()
            name = self._expect_ident().text
            self._expect_op(";")
            return ast.Disable(name=name, line=tok.line)
        if tok.is_op("#"):
            self._next()
            amount = self._parse_delay_value()
            if self._accept_op(";"):
                return ast.Delay(amount=amount, stmt=None, line=tok.line)
            return ast.Delay(
                amount=amount, stmt=self.parse_statement(), line=tok.line
            )
        if tok.is_op("@"):
            self._next()
            sens = self._parse_sensitivity()
            if self._accept_op(";"):
                return ast.EventControl(sensitivity=sens, stmt=None, line=tok.line)
            return ast.EventControl(
                sensitivity=sens, stmt=self.parse_statement(), line=tok.line
            )
        if tok.kind is TokenKind.SYSTEM_IDENT:
            return self._parse_system_task()
        if tok.is_op(";"):
            self._next()
            return ast.NullStmt(line=tok.line)
        return self._parse_assignment_or_call()

    def _parse_block(self) -> ast.Block:
        start = self._expect_kw("begin")
        block = ast.Block(line=start.line)
        if self._accept_op(":"):
            block.name = self._expect_ident().text
        while self._tok.is_kw("reg", "integer", "real", "time"):
            kind = self._next().text
            signed = bool(self._accept_kw("signed"))
            rng = self._parse_optional_range()
            while True:
                name = self._expect_ident().text
                dims: List[ast.Range] = []
                while self._tok.is_op("["):
                    dims.append(self._parse_range())
                block.decls.append(
                    ast.Decl(kind=kind, name=name, range=rng,
                             array_dims=dims, signed=signed)
                )
                if not self._accept_op(","):
                    break
            self._expect_op(";")
        while not self._tok.is_kw("end"):
            if self._tok.kind is TokenKind.EOF:
                raise self._error("unexpected EOF inside begin/end block")
            block.stmts.append(self.parse_statement())
        self._next()
        return block

    def _parse_if(self) -> ast.If:
        start = self._expect_kw("if")
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        then_stmt = self.parse_statement()
        else_stmt = None
        if self._accept_kw("else"):
            else_stmt = self.parse_statement()
        return ast.If(
            cond=cond, then_stmt=then_stmt, else_stmt=else_stmt,
            line=start.line,
        )

    def _parse_case(self) -> ast.Case:
        start = self._next()
        kind = start.text
        self._expect_op("(")
        subject = self.parse_expression()
        self._expect_op(")")
        case = ast.Case(kind=kind, subject=subject, line=start.line)
        while not self._tok.is_kw("endcase"):
            if self._tok.kind is TokenKind.EOF:
                raise self._error("unexpected EOF inside case")
            item = ast.CaseItem(line=self._tok.line)
            if self._accept_kw("default"):
                self._accept_op(":")
            else:
                while True:
                    item.exprs.append(self.parse_expression())
                    if not self._accept_op(","):
                        break
                self._expect_op(":")
            item.body = self.parse_statement()
            case.items.append(item)
        self._next()
        return case

    def _parse_for(self) -> ast.For:
        start = self._expect_kw("for")
        self._expect_op("(")
        init = self._parse_simple_assign()
        self._expect_op(";")
        cond = self.parse_expression()
        self._expect_op(";")
        step = self._parse_simple_assign()
        self._expect_op(")")
        body = self.parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body,
                       line=start.line)

    def _parse_simple_assign(self) -> ast.Assign:
        """An assignment without trailing semicolon (for-loop slots)."""
        target = self._parse_lvalue()
        blocking = True
        if self._accept_op("="):
            pass
        elif self._accept_op("<="):
            blocking = False
        else:
            raise self._error("expected assignment in for-loop header")
        value = self.parse_expression()
        return ast.Assign(target=target, value=value, blocking=blocking,
                          line=target.line)

    def _parse_while(self) -> ast.While:
        start = self._expect_kw("while")
        self._expect_op("(")
        cond = self.parse_expression()
        self._expect_op(")")
        body = self.parse_statement()
        return ast.While(cond=cond, body=body, line=start.line)

    def _parse_repeat(self) -> ast.Repeat:
        start = self._expect_kw("repeat")
        self._expect_op("(")
        count = self.parse_expression()
        self._expect_op(")")
        body = self.parse_statement()
        return ast.Repeat(count=count, body=body, line=start.line)

    def _parse_system_task(self) -> ast.SystemTaskCall:
        tok = self._next()
        args: List[ast.Expr] = []
        if self._accept_op("("):
            while not self._tok.is_op(")"):
                args.append(self.parse_expression())
                if not self._accept_op(","):
                    break
            self._expect_op(")")
        self._expect_op(";")
        return ast.SystemTaskCall(name=tok.text, args=args, line=tok.line)

    def _parse_lvalue(self) -> ast.Expr:
        """Parse an assignment target: identifier (with selects),
        hierarchical name, or a concatenation of lvalues.

        Targets must not be parsed with the general expression grammar
        because ``a <= b`` would greedily lex ``<=`` as less-or-equal.
        """
        tok = self._tok
        if tok.is_op("{"):
            start = self._next()
            parts = [self._parse_lvalue()]
            while self._accept_op(","):
                parts.append(self._parse_lvalue())
            self._expect_op("}")
            return ast.Concat(parts=parts, line=start.line)
        if tok.kind is not TokenKind.IDENT:
            raise self._error(
                f"expected assignment target, found {tok.text!r}"
            )
        self._next()
        expr: ast.Expr
        if self._tok.is_op(".") and self._peek(1).kind is TokenKind.IDENT:
            parts_h = [tok.text]
            while self._tok.is_op(".") and self._peek(1).kind is TokenKind.IDENT:
                self._next()
                parts_h.append(self._expect_ident().text)
            expr = ast.HierarchicalId(parts=tuple(parts_h), line=tok.line)
        else:
            expr = ast.Identifier(name=tok.text, line=tok.line)
        return self._parse_postfix_selects(expr)

    def _parse_assignment_or_call(self) -> ast.Stmt:
        line = self._tok.line
        tok = self._tok
        if tok.kind is TokenKind.IDENT and (
            self._peek(1).is_op("(") or self._peek(1).is_op(";")
        ):
            # A bare task call: "my_task;" or "my_task(a, b);"
            name = self._next().text
            args: List[ast.Expr] = []
            if self._accept_op("("):
                while not self._tok.is_op(")"):
                    args.append(self.parse_expression())
                    if not self._accept_op(","):
                        break
                self._expect_op(")")
            self._expect_op(";")
            return ast.TaskCall(name=name, args=args, line=line)
        target = self._parse_lvalue()
        blocking = True
        if self._accept_op("="):
            pass
        elif self._accept_op("<="):
            blocking = False
        else:
            raise self._error(
                f"expected '=' or '<=', found {self._tok.text!r}"
            )
        delay = None
        if self._accept_op("#"):
            delay = self._parse_delay_value()
        if self._tok.is_op("@"):
            self._next()
            self._parse_sensitivity()  # intra-assignment event: ignored
        value = self.parse_expression()
        self._expect_op(";")
        return ast.Assign(
            target=target, value=value, blocking=blocking, delay=delay,
            line=line,
        )

    def _parse_delay_value(self) -> ast.Expr:
        """Parse the expression after ``#`` (number, ident, or parens)."""
        if self._accept_op("("):
            expr = self.parse_expression()
            self._expect_op(")")
            return expr
        return self.parse_primary()

    # -- expressions -----------------------------------------------------------

    #: Binary operator precedence levels, weakest first.
    _BINARY_LEVELS: List[Tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^", "~^", "^~"),
        ("&",),
        ("==", "!=", "===", "!=="),
        ("<", "<=", ">", ">="),
        ("<<", ">>", "<<<", ">>>"),
        ("+", "-"),
        ("*", "/", "%"),
        ("**",),
    ]

    _UNARY_OPS = ("+", "-", "!", "~", "&", "|", "^", "~&", "~|", "~^", "^~")

    def parse_expression(self) -> ast.Expr:
        """Parse a full expression including ``?:``."""
        cond = self._parse_binary(0)
        if self._accept_op("?"):
            if_true = self.parse_expression()
            self._expect_op(":")
            if_false = self.parse_expression()
            return ast.Ternary(
                cond=cond, if_true=if_true, if_false=if_false, line=cond.line
            )
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._tok.is_op(*ops):
            # "<=" in expression position is less-or-equal; assignment
            # contexts consume it before calling parse_expression.
            op = self._next().text
            right = self._parse_binary(level + 1)
            left = ast.Binary(op=op, left=left, right=right, line=left.line)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind is TokenKind.OPERATOR and tok.text in self._UNARY_OPS:
            self._next()
            operand = self._parse_unary()
            return ast.Unary(op=tok.text, operand=operand, line=tok.line)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        """Parse a primary expression with postfix selects."""
        tok = self._tok
        expr: ast.Expr
        if tok.kind is TokenKind.NUMBER:
            self._next()
            if "." in tok.text or (
                "e" in tok.text.lower() and "'" not in tok.text
            ):
                try:
                    expr = ast.RealNumber(
                        line=tok.line,
                        value=float(tok.text.replace("_", "")),
                    )
                except ValueError:
                    expr = parse_number_literal(tok.text, tok.line)
            else:
                expr = parse_number_literal(tok.text, tok.line)
        elif tok.kind is TokenKind.STRING:
            self._next()
            expr = ast.StringLiteral(line=tok.line, value=tok.text)
        elif tok.kind is TokenKind.SYSTEM_IDENT:
            self._next()
            args: List[ast.Expr] = []
            if self._accept_op("("):
                while not self._tok.is_op(")"):
                    args.append(self.parse_expression())
                    if not self._accept_op(","):
                        break
                self._expect_op(")")
            expr = ast.SystemCall(name=tok.text, args=args, line=tok.line)
        elif tok.kind is TokenKind.IDENT:
            expr = self._parse_identifier_expr()
        elif tok.is_op("("):
            self._next()
            expr = self.parse_expression()
            self._expect_op(")")
        elif tok.is_op("{"):
            expr = self._parse_concat()
        else:
            raise self._error(f"unexpected token {tok.text!r} in expression")
        return self._parse_postfix_selects(expr)

    def _parse_identifier_expr(self) -> ast.Expr:
        tok = self._next()
        # Hierarchical name: a.b.c (selects between parts unsupported).
        if self._tok.is_op(".") and self._peek(1).kind is TokenKind.IDENT:
            parts = [tok.text]
            while self._tok.is_op(".") and self._peek(1).kind is TokenKind.IDENT:
                self._next()
                parts.append(self._expect_ident().text)
            return ast.HierarchicalId(parts=tuple(parts), line=tok.line)
        if self._tok.is_op("("):
            self._next()
            args: List[ast.Expr] = []
            while not self._tok.is_op(")"):
                args.append(self.parse_expression())
                if not self._accept_op(","):
                    break
            self._expect_op(")")
            return ast.FunctionCall(name=tok.text, args=args, line=tok.line)
        return ast.Identifier(name=tok.text, line=tok.line)

    def _parse_concat(self) -> ast.Expr:
        start = self._expect_op("{")
        first = self.parse_expression()
        if self._tok.is_op("{"):
            # Replication {N{expr}}.
            self._next()
            value = self.parse_expression()
            parts = [value]
            while self._accept_op(","):
                parts.append(self.parse_expression())
            self._expect_op("}")
            self._expect_op("}")
            inner: ast.Expr
            if len(parts) == 1:
                inner = parts[0]
            else:
                inner = ast.Concat(parts=parts, line=start.line)
            return ast.Replicate(count=first, value=inner, line=start.line)
        parts = [first]
        while self._accept_op(","):
            parts.append(self.parse_expression())
        self._expect_op("}")
        return ast.Concat(parts=parts, line=start.line)

    def _parse_postfix_selects(self, expr: ast.Expr) -> ast.Expr:
        while self._tok.is_op("["):
            self._next()
            left = self.parse_expression()
            if self._accept_op(":"):
                right = self.parse_expression()
                self._expect_op("]")
                expr = ast.Select(base=expr, kind="part", left=left,
                                  right=right, line=expr.line)
            elif self._accept_op("+:"):
                right = self.parse_expression()
                self._expect_op("]")
                expr = ast.Select(base=expr, kind="plus", left=left,
                                  right=right, line=expr.line)
            elif self._accept_op("-:"):
                right = self.parse_expression()
                self._expect_op("]")
                expr = ast.Select(base=expr, kind="minus", left=left,
                                  right=right, line=expr.line)
            else:
                self._expect_op("]")
                expr = ast.Select(base=expr, kind="bit", left=left,
                                  line=expr.line)
        return expr

    # -- ranges ------------------------------------------------------------

    def _parse_optional_range(self) -> Optional[ast.Range]:
        if self._tok.is_op("["):
            return self._parse_range()
        return None

    def _parse_range(self) -> ast.Range:
        self._expect_op("[")
        msb = self.parse_expression()
        self._expect_op(":")
        lsb = self.parse_expression()
        self._expect_op("]")
        return ast.Range(msb=msb, lsb=lsb)


def parse(source: str) -> ast.SourceFile:
    """Parse Verilog source text into a :class:`ast.SourceFile`."""
    return Parser(source).parse_source()


def parse_module(source: str) -> ast.Module:
    """Parse source expected to contain exactly one module."""
    src = parse(source)
    if len(src.modules) != 1:
        raise ParseError(
            f"expected exactly one module, found {len(src.modules)}", 1, 1
        )
    return src.modules[0]
