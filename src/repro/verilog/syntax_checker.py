"""Compile checking with the paper's failure taxonomy.

PyraNet's curation pipeline (Section III-A.2) runs Icarus Verilog over
every candidate file and classifies the outcome:

* **clean** — compiles without errors (Layers 1–5 material);
* **dependency issues** — the file is syntactically well-formed but
  references modules, identifiers, or include files defined elsewhere
  ("missing imports or undefined references", Layer 6 material);
* **syntax error** — rejected outright.

:func:`check` reproduces that decision procedure on the supported
Verilog subset: preprocess, parse, then resolve every name against the
declarations in scope.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

from . import ast_nodes as ast
from .lexer import LexError
from .parser import ParseError, parse
from .preprocessor import PreprocessorError, preprocess

#: Identifiers every Verilog context understands without declaration.
_BUILTIN_SYSTEM_FUNCS = frozenset(
    ["$clog2", "$signed", "$unsigned", "$time", "$stime", "$realtime",
     "$random", "$urandom", "$bits", "$display", "$write", "$strobe",
     "$monitor", "$finish", "$stop", "$readmemh", "$readmemb",
     "$dumpfile", "$dumpvars", "$error", "$warning", "$info", "$fatal",
     "$fopen", "$fclose", "$fwrite", "$fdisplay", "$sformat",
     "$displayb", "$displayh", "$srandom", "$timeformat", "$monitoron",
     "$monitoroff", "$dumpon", "$dumpoff", "$rtoi", "$itor",
     "$realtobits", "$bitstoreal", "$test$plusargs", "$value$plusargs"]
)


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


class Category(enum.Enum):
    """Failure classes from the paper's filtering step."""

    SYNTAX = "syntax"
    DEPENDENCY = "dependency"
    SEMANTIC = "semantic"


@dataclass(frozen=True)
class Diagnostic:
    """One reported problem.

    ``column`` is 1-based where known (lexer/parser errors carry one);
    0 means the producer had no column information.
    """

    severity: Severity
    category: Category
    message: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return (
            f"{self.line}: {self.severity.value}: "
            f"[{self.category.value}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "severity": self.severity.value,
            "category": self.category.value,
            "message": self.message,
            "line": self.line,
            "column": self.column,
        }


@dataclass
class CheckResult:
    """Outcome of :func:`check`.

    ``status`` is one of ``"clean"``, ``"dependency"``, ``"syntax"``.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    modules: List[str] = field(default_factory=list)
    source: Optional[ast.SourceFile] = None

    @property
    def syntax_errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.category is Category.SYNTAX
                and d.severity is Severity.ERROR]

    @property
    def dependency_issues(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.category is Category.DEPENDENCY]

    @property
    def is_syntactically_valid(self) -> bool:
        return not self.syntax_errors

    @property
    def compiles_cleanly(self) -> bool:
        return not self.diagnostics or all(
            d.severity is Severity.WARNING for d in self.diagnostics
        )

    @property
    def status(self) -> str:
        if self.syntax_errors:
            return "syntax"
        if self.dependency_issues:
            return "dependency"
        return "clean"


class _ModuleChecker:
    """Name-resolution walk over one module."""

    def __init__(
        self,
        module: ast.Module,
        known_modules: Set[str],
        diagnostics: List[Diagnostic],
    ) -> None:
        self._module = module
        self._known_modules = known_modules
        self._diags = diagnostics
        self._scopes: List[Set[str]] = []
        self._reported: Set[str] = set()

    # -- scope helpers ----------------------------------------------------------

    def _push(self, names: Set[str]) -> None:
        self._scopes.append(names)

    def _pop(self) -> None:
        self._scopes.pop()

    def _declared(self, name: str) -> bool:
        return any(name in scope for scope in self._scopes)

    def _report_unknown(self, name: str, line: int) -> None:
        if name in self._reported:
            return
        self._reported.add(name)
        self._diags.append(
            Diagnostic(
                Severity.ERROR,
                Category.DEPENDENCY,
                f"undefined reference {name!r} in module "
                f"{self._module.name!r}",
                line,
            )
        )

    # -- entry -----------------------------------------------------------------

    def run(self) -> None:
        module = self._module
        top_names: Set[str] = set()
        for port in module.ports:
            top_names.add(port.name)
            if port.direction is None:
                self._diags.append(
                    Diagnostic(
                        Severity.ERROR, Category.SYNTAX,
                        f"port {port.name!r} of module {module.name!r} "
                        f"has no direction", port.line,
                    )
                )
        for param in module.parameters:
            top_names.add(param.name)
        self._collect_item_decls(module.items, top_names)
        self._push(top_names)
        for param in module.parameters:
            self._check_expr(param.value)
        self._check_items(module.items)
        self._pop()

    def _collect_item_decls(
        self, items: Sequence[ast.ModuleItem], names: Set[str]
    ) -> None:
        for item in items:
            if isinstance(item, ast.Decl):
                names.add(item.name)
            elif isinstance(item, ast.Port):
                names.add(item.name)
            elif isinstance(item, ast.Parameter):
                names.add(item.name)
            elif isinstance(item, (ast.FunctionDecl, ast.TaskDecl)):
                names.add(item.name)
            elif isinstance(item, ast.GenerateFor):
                names.add(item.genvar)
                self._collect_item_decls(item.items, names)
            elif isinstance(item, ast.GenerateIf):
                self._collect_item_decls(item.then_items, names)
                self._collect_item_decls(item.else_items, names)
            elif isinstance(item, ast.Instance):
                # Implicit nets may be created by connection identifiers;
                # Verilog permits them, so do not require declarations
                # here — but we do check the module name elsewhere.
                pass

    # -- items -----------------------------------------------------------------

    def _check_items(self, items: Sequence[ast.ModuleItem]) -> None:
        for item in items:
            self._check_item(item)

    def _check_item(self, item: ast.ModuleItem) -> None:
        if isinstance(item, ast.Decl):
            if item.range is not None:
                self._check_expr(item.range.msb)
                self._check_expr(item.range.lsb)
            if item.init is not None:
                self._check_expr(item.init)
            return
        if isinstance(item, (ast.Port, ast.Parameter)):
            return
        if isinstance(item, ast.ContinuousAssign):
            self._check_expr(item.target)
            self._check_expr(item.value)
            return
        if isinstance(item, ast.Always):
            if item.sensitivity is not None and not item.sensitivity.star:
                for entry in item.sensitivity.items:
                    self._check_expr(entry.expr)
            self._check_stmt(item.body)
            return
        if isinstance(item, ast.Initial):
            self._check_stmt(item.body)
            return
        if isinstance(item, ast.Instance):
            if item.module_name not in self._known_modules:
                self._diags.append(
                    Diagnostic(
                        Severity.ERROR, Category.DEPENDENCY,
                        f"unknown module {item.module_name!r} instantiated "
                        f"as {item.instance_name!r}", item.line,
                    )
                )
            for conn in item.param_overrides + item.connections:
                if conn.expr is not None:
                    self._check_expr(conn.expr, allow_implicit_net=True)
            return
        if isinstance(item, ast.GateInstance):
            for conn in item.connections:
                self._check_expr(conn, allow_implicit_net=True)
            return
        if isinstance(item, ast.FunctionDecl):
            names = {item.name}
            names |= {d.name for d in item.inputs}
            names |= {d.name for d in item.locals}
            self._push(names)
            self._check_stmt(item.body)
            self._pop()
            return
        if isinstance(item, ast.TaskDecl):
            names = {d.name for d in item.inputs + item.outputs + item.locals}
            self._push(names)
            self._check_stmt(item.body)
            self._pop()
            return
        if isinstance(item, ast.GenerateFor):
            self._check_expr(item.init)
            self._check_expr(item.cond)
            self._check_expr(item.step)
            self._check_items(item.items)
            return
        if isinstance(item, ast.GenerateIf):
            self._check_expr(item.cond)
            self._check_items(item.then_items)
            self._check_items(item.else_items)
            return

    # -- statements ------------------------------------------------------------

    def _check_stmt(self, stmt: Optional[ast.Stmt]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            names = {d.name for d in stmt.decls}
            self._push(names)
            for inner in stmt.stmts:
                self._check_stmt(inner)
            self._pop()
            return
        if isinstance(stmt, ast.Assign):
            self._check_expr(stmt.target)
            self._check_expr(stmt.value)
            if stmt.delay is not None:
                self._check_expr(stmt.delay)
            return
        if isinstance(stmt, ast.If):
            self._check_expr(stmt.cond)
            self._check_stmt(stmt.then_stmt)
            self._check_stmt(stmt.else_stmt)
            return
        if isinstance(stmt, ast.Case):
            self._check_expr(stmt.subject)
            for case_item in stmt.items:
                for expr in case_item.exprs:
                    self._check_expr(expr)
                self._check_stmt(case_item.body)
            return
        if isinstance(stmt, ast.For):
            self._check_stmt(stmt.init)
            self._check_expr(stmt.cond)
            self._check_stmt(stmt.step)
            self._check_stmt(stmt.body)
            return
        if isinstance(stmt, (ast.While, ast.Repeat)):
            self._check_expr(
                stmt.cond if isinstance(stmt, ast.While) else stmt.count
            )
            self._check_stmt(stmt.body)
            return
        if isinstance(stmt, ast.Forever):
            self._check_stmt(stmt.body)
            return
        if isinstance(stmt, ast.Delay):
            self._check_expr(stmt.amount)
            self._check_stmt(stmt.stmt)
            return
        if isinstance(stmt, ast.EventControl):
            if not stmt.sensitivity.star:
                for entry in stmt.sensitivity.items:
                    self._check_expr(entry.expr)
            self._check_stmt(stmt.stmt)
            return
        if isinstance(stmt, ast.Wait):
            self._check_expr(stmt.cond)
            self._check_stmt(stmt.stmt)
            return
        if isinstance(stmt, ast.SystemTaskCall):
            for arg in stmt.args:
                self._check_expr(arg)
            return
        if isinstance(stmt, ast.TaskCall):
            if not self._declared(stmt.name):
                self._report_unknown(stmt.name, stmt.line)
            for arg in stmt.args:
                self._check_expr(arg)
            return

    # -- expressions -----------------------------------------------------------

    def _check_expr(
        self, expr: Optional[ast.Expr], allow_implicit_net: bool = False
    ) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Identifier):
            if not self._declared(expr.name) and not allow_implicit_net:
                self._report_unknown(expr.name, expr.line)
            return
        if isinstance(expr, ast.HierarchicalId):
            if not self._declared(expr.parts[0]):
                self._report_unknown(".".join(expr.parts), expr.line)
            return
        if isinstance(expr, ast.Select):
            self._check_expr(expr.base, allow_implicit_net)
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            return
        if isinstance(expr, ast.Concat):
            for part in expr.parts:
                self._check_expr(part, allow_implicit_net)
            return
        if isinstance(expr, ast.Replicate):
            self._check_expr(expr.count)
            self._check_expr(expr.value)
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            return
        if isinstance(expr, ast.Ternary):
            self._check_expr(expr.cond)
            self._check_expr(expr.if_true)
            self._check_expr(expr.if_false)
            return
        if isinstance(expr, ast.FunctionCall):
            if not self._declared(expr.name):
                self._report_unknown(expr.name, expr.line)
            for arg in expr.args:
                self._check_expr(arg)
            return
        if isinstance(expr, ast.SystemCall):
            if expr.name not in _BUILTIN_SYSTEM_FUNCS:
                self._diags.append(
                    Diagnostic(
                        Severity.WARNING, Category.SEMANTIC,
                        f"unknown system function {expr.name!r}", expr.line,
                    )
                )
            for arg in expr.args:
                self._check_expr(arg)
            return


def check(
    source: str,
    include_files: Optional[Mapping[str, str]] = None,
    extra_modules: Optional[Sequence[str]] = None,
) -> CheckResult:
    """Compile-check ``source`` and classify the outcome.

    Args:
        source: raw Verilog text (directives allowed).
        include_files: virtual filesystem for ``\\`include`` resolution.
        extra_modules: module names assumed to exist elsewhere (treated
            as known for instantiation checking).

    Returns:
        A :class:`CheckResult`; inspect ``result.status``.
    """
    result = CheckResult()
    try:
        pre = preprocess(source, include_files)
    except PreprocessorError as exc:
        result.diagnostics.append(
            Diagnostic(Severity.ERROR, Category.SYNTAX, str(exc))
        )
        return result
    for missing in pre.missing_includes:
        result.diagnostics.append(
            Diagnostic(
                Severity.ERROR, Category.DEPENDENCY,
                f"cannot resolve `include \"{missing}\"",
            )
        )
    try:
        tree = parse(pre.text)
    except (ParseError, LexError) as exc:
        line = getattr(exc, "line", 0)
        column = getattr(exc, "col", 0)
        result.diagnostics.append(
            Diagnostic(Severity.ERROR, Category.SYNTAX,
                       getattr(exc, "message", str(exc)), line, column)
        )
        return result
    result.source = tree
    result.modules = tree.module_names()
    if not tree.modules:
        result.diagnostics.append(
            Diagnostic(Severity.ERROR, Category.SYNTAX,
                       "no module declaration found")
        )
        return result
    known = set(result.modules) | set(extra_modules or ())
    for module in tree.modules:
        _ModuleChecker(module, known, result.diagnostics).run()
    return result


def has_module_declaration(source: str) -> bool:
    """Cheap pre-filter: does the text contain a module declaration?

    Mirrors the paper's regex-level "module declaration" filter, which
    runs before the expensive compile check.
    """
    import re

    # Strip comments first so commented-out modules do not count.
    text = re.sub(r"//[^\n]*", "", source)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.search(r"\bmodule\s+[a-zA-Z_\\]", text) is not None
