"""ShardWriter: split a dataset into size-bounded, content-addressed shards.

The writer streams entries — a :class:`~repro.dataset.records.PyraNetDataset`
or any iterable — accumulating encoded JSONL lines until the next line
would push the shard past ``max_shard_bytes`` of raw payload, then
flushes: compress, digest, and write ``shard-<digest>.jsonl.z`` via a
tmp sibling + ``os.replace``.  Entry order is preserved (shards in
manifest order concatenate back to the input order), and only one
shard's worth of entries is ever held in memory.

Because shards are named by content, writing the same data twice is
idempotent: the file already exists and is not rewritten.  The manifest
is written last, atomically, so a crash mid-write never publishes a
partial store.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..dataset.records import DatasetEntry
from ..obs import Observability, resolve
from ..resilience.atomic import atomic_write_bytes
from ..resilience.runtime import Resilience
from ..resilience.runtime import resolve as resolve_resilience
from .manifest import StoreManifest
from .shard import (
    ShardInfo,
    build_families,
    build_histogram,
    build_origins,
    build_verified,
    encode_entry,
    encode_shard,
    shard_name,
)

PathLike = Union[str, Path]

#: Default raw-payload bound per shard (uncompressed JSONL bytes).
DEFAULT_SHARD_BYTES = 256 * 1024


class ShardWriter:
    """Writes a dataset into ``directory`` as shards + manifest.

    Args:
        directory: store directory (created if missing).
        max_shard_bytes: flush a shard once its raw JSONL payload would
            exceed this (a single oversized entry still gets its own
            shard — entries are never split).
        max_entries_per_shard: optional row-count bound on top of the
            byte bound.
        obs: observability handle; the write becomes a ``store.write``
            span with shard/entry/byte counters in the run's report.
        resilience: resilience runtime — shard-blob writes are retried
            under its policy at the ``store.write_shard`` site, so a
            transient filesystem hiccup costs a retry, not the store.
    """

    def __init__(
        self,
        directory: PathLike,
        max_shard_bytes: int = DEFAULT_SHARD_BYTES,
        max_entries_per_shard: Optional[int] = None,
        obs: Optional[Observability] = None,
        resilience: Optional[Resilience] = None,
    ) -> None:
        if max_shard_bytes <= 0:
            raise ValueError("max_shard_bytes must be positive")
        if max_entries_per_shard is not None and max_entries_per_shard <= 0:
            raise ValueError("max_entries_per_shard must be positive")
        self.directory = Path(directory)
        self.max_shard_bytes = max_shard_bytes
        self.max_entries_per_shard = max_entries_per_shard
        self.obs = resolve(obs)
        self.resilience = resolve_resilience(resilience)

    def write(self, entries: Iterable[DatasetEntry],
              meta: Optional[dict] = None) -> StoreManifest:
        """Shard ``entries`` into the store directory; returns the manifest."""
        start = time.perf_counter()
        with self.obs.span("store.write",
                           directory=str(self.directory)) as span:
            manifest = self._write(entries, meta)
            span.meta["n_entries"] = manifest.n_entries
            span.meta["n_shards"] = len(manifest.shards)
            span.meta["wall_s"] = round(time.perf_counter() - start, 6)
        counters = self.obs.registry
        counters.counter("store.write.entries").inc(manifest.n_entries)
        counters.counter("store.write.shards").inc(len(manifest.shards))
        counters.counter("store.write.bytes").inc(manifest.total_bytes)
        return manifest

    def _write(self, entries: Iterable[DatasetEntry],
               meta: Optional[dict] = None) -> StoreManifest:
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = StoreManifest()
        buffer: List[DatasetEntry] = []
        lines: List[bytes] = []
        buffered_bytes = 0

        def flush() -> None:
            nonlocal buffer, lines, buffered_bytes
            if not buffer:
                return
            payload, digest, raw_size = encode_shard(lines)
            name = shard_name(digest)
            self._write_blob(name, payload)
            manifest.shards.append(ShardInfo(
                name=name,
                digest=digest,
                n_entries=len(buffer),
                byte_size=len(payload),
                raw_size=raw_size,
                histogram=build_histogram(buffer),
                origins=build_origins(buffer),
                families=build_families(buffer),
                verified=build_verified(buffer),
            ))
            manifest.n_entries += len(buffer)
            manifest.total_bytes += len(payload)
            manifest.total_raw_bytes += raw_size
            buffer, lines, buffered_bytes = [], [], 0

        for entry in entries:
            line = encode_entry(entry)
            over_bytes = buffered_bytes + len(line) > self.max_shard_bytes
            over_rows = (self.max_entries_per_shard is not None
                         and len(buffer) >= self.max_entries_per_shard)
            if buffer and (over_bytes or over_rows):
                flush()
            buffer.append(entry)
            lines.append(line)
            buffered_bytes += len(line)
        flush()

        # Only deterministic facts may enter the manifest: it is a
        # content artifact, and the same dataset must produce the same
        # manifest bytes in every process (the service's byte-identical
        # job-resume contract rests on this).  Timings live in the
        # ``store.write`` span, not here.
        manifest.meta.update({
            "max_shard_bytes": self.max_shard_bytes,
        })
        if meta:
            manifest.meta.update(meta)
        manifest.save(self.directory)
        return manifest

    def _write_blob(self, name: str, payload: bytes) -> None:
        path = self.directory / name
        if path.exists():
            # Content-addressed: an existing file with this name already
            # holds exactly these bytes.
            return
        self.resilience.call(
            "store.write_shard", lambda: atomic_write_bytes(path, payload))


def write_store(entries: Iterable[DatasetEntry], directory: PathLike,
                max_shard_bytes: int = DEFAULT_SHARD_BYTES,
                meta: Optional[dict] = None,
                obs: Optional[Observability] = None,
                resilience: Optional[Resilience] = None) -> StoreManifest:
    """One-call convenience: shard ``entries`` into ``directory``."""
    return ShardWriter(directory, max_shard_bytes=max_shard_bytes,
                       obs=obs, resilience=resilience).write(entries,
                                                             meta=meta)
