"""Sharded, content-addressed dataset store with layer-aware serving.

The persistence layer for production-scale PyraNet datasets:

* :class:`ShardWriter` / :func:`write_store` — split a dataset into
  size-bounded, zlib-compressed shards named by blake2b content digest,
  indexed by an atomic JSON manifest with per-(layer, complexity)
  histograms;
* :class:`StoreReader` — verified streaming reads (one shard in memory
  at a time); a corrupt shard raises :class:`ShardCorruptionError`
  (strict) or is skipped with a :class:`CorruptionReport` (lenient);
  ``select(layer=…)`` opens only shards the manifest index says can
  match;
* :class:`SamplingService` — deterministic seeded serving (uniform,
  loss-weighted per the paper's layer weights, curriculum-ordered)
  that plugs straight into the fine-tuning recipes.
"""

from .errors import ManifestError, ShardCorruptionError, StoreError
from .manifest import MANIFEST_NAME, StoreManifest
from .reader import CorruptionReport, StoreReader
from .sampling import FamilySplit, SamplingService, SplitView
from .shard import (
    ShardInfo,
    build_families,
    build_histogram,
    build_verified,
    decode_shard,
    encode_shard,
    shard_digest,
    shard_name,
)
from .writer import DEFAULT_SHARD_BYTES, ShardWriter, write_store

__all__ = [
    "CorruptionReport",
    "DEFAULT_SHARD_BYTES",
    "FamilySplit",
    "MANIFEST_NAME",
    "ManifestError",
    "SamplingService",
    "ShardCorruptionError",
    "ShardInfo",
    "ShardWriter",
    "SplitView",
    "StoreError",
    "StoreManifest",
    "StoreReader",
    "build_families",
    "build_histogram",
    "build_verified",
    "decode_shard",
    "encode_shard",
    "shard_digest",
    "shard_name",
    "write_store",
]
