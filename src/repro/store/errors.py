"""Typed failures of the sharded dataset store."""

from __future__ import annotations


class StoreError(Exception):
    """Base class for every store failure."""


class ManifestError(StoreError):
    """The store manifest is missing, unreadable, or malformed."""


class ShardCorruptionError(StoreError):
    """A shard's bytes do not match its recorded content digest.

    Raised by :class:`~repro.store.reader.StoreReader` in strict mode;
    lenient readers record a
    :class:`~repro.store.reader.CorruptionReport` instead and skip the
    shard.
    """

    def __init__(self, shard: str, reason: str,
                 expected: str = "", actual: str = "") -> None:
        self.shard = shard
        self.reason = reason
        self.expected = expected
        self.actual = actual
        detail = f"shard {shard!r}: {reason}"
        if expected or actual:
            detail += f" (expected {expected!r}, got {actual!r})"
        super().__init__(detail)
