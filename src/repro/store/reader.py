"""StoreReader: verified, streaming, layer-aware reads of a sharded store.

Every shard read is verified — the blake2b digest of the bytes on disk
must equal the manifest's recorded digest — before a single entry is
decoded.  A mismatch raises :class:`ShardCorruptionError` in strict
mode (the default); a lenient reader records a
:class:`CorruptionReport` and skips the shard, so one flipped bit
costs at most one shard, not the run.

Reads stream: :meth:`iter_entries` holds at most one decoded shard in
memory at a time.  ``select(layer=…, complexity=…)`` consults the
manifest histogram first and opens only shards that can contain
matching rows — ``opened_shards`` records exactly which, so tests (and
curious operators) can verify the index is doing its job.  Reads are
instrumented with the pipeline's :class:`StageMetrics`, and an optional
:class:`ResultCache` memoises decoded shards by digest for warm
repeat reads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union

from ..dataset.records import DatasetEntry, PyraNetDataset
from ..obs import Observability, resolve
from ..pipeline import PipelineTrace, ResultCache, StageMetrics
from ..resilience.errors import CircuitOpenError
from ..resilience.runtime import Resilience
from ..resilience.runtime import resolve as resolve_resilience
from .errors import ShardCorruptionError
from .manifest import StoreManifest
from .shard import ShardInfo, decode_shard, shard_digest

PathLike = Union[str, Path]


@dataclass
class CorruptionReport:
    """One skipped shard (lenient mode)."""

    shard: str
    reason: str
    expected: str = ""
    actual: str = ""
    n_entries_lost: int = 0


class StoreReader:
    """Reads a store written by :class:`~repro.store.writer.ShardWriter`.

    Args:
        directory: the store directory (must contain ``manifest.json``).
        strict: raise :class:`ShardCorruptionError` on a bad shard
            (default); if False, skip it and append a
            :class:`CorruptionReport` to :attr:`corruption_reports`.
        cache: optional :class:`ResultCache` memoising decoded shards
            by content digest — trades the streaming memory bound for
            fast warm repeat reads (``select`` loops, multi-pass
            sampling).
        obs: observability handle; shard loads become ``store.read_shard``
            spans and ``store.read.*`` counters in the run's report.
        resilience: resilience runtime — transient read failures are
            retried under its policy (counted at the ``store.read_shard``
            site), and each shard gets a circuit breaker
            (``store.shard.<digest>``): a shard that keeps failing trips
            open, later reads are rejected without touching disk, and in
            lenient mode the rejection lands in
            :attr:`corruption_reports` like any other corruption.
    """

    def __init__(self, directory: PathLike, strict: bool = True,
                 cache: Optional[ResultCache] = None,
                 obs: Optional[Observability] = None,
                 resilience: Optional[Resilience] = None) -> None:
        self.directory = Path(directory)
        self.obs = resolve(obs)
        self.resilience = resolve_resilience(resilience)
        with self.obs.span("store.open", directory=str(directory)):
            self.manifest = StoreManifest.load(self.directory)
        self.strict = strict
        self.cache = cache
        #: shard names opened (i.e. read from disk or cache) so far.
        self.opened_shards: List[str] = []
        self.corruption_reports: List[CorruptionReport] = []
        self.metrics = StageMetrics(name="shard-read")

    def __len__(self) -> int:
        return self.manifest.n_entries

    def __iter__(self) -> Iterator[DatasetEntry]:
        return self.iter_entries()

    # -- shard loading -------------------------------------------------

    def _load_shard(self, info: ShardInfo) -> Optional[List[DatasetEntry]]:
        """Verified entries of one shard, or ``None`` if skipped (lenient)."""
        start = time.perf_counter()
        self.opened_shards.append(info.name)
        self.obs.counter("store.read.shards_opened").inc()
        try:
            with self.obs.span("store.read_shard", shard=info.name,
                               n_entries=info.n_entries):
                if self.cache is not None:
                    before = self.cache.misses
                    entries = self.cache.get_or_compute(
                        "store-shard", info.digest,
                        lambda: self._guarded_read(info),
                    )
                    if self.cache.misses == before:
                        self.metrics.cache_hits += 1
                    else:
                        self.metrics.cache_misses += 1
                else:
                    entries = self._guarded_read(info)
        except ShardCorruptionError as exc:
            self.metrics.record_drop(f"corrupt:{info.name}")
            self.obs.counter("store.read.corrupt_shards").inc()
            if self.strict:
                raise
            self._record_skip(info)
            self.corruption_reports.append(CorruptionReport(
                shard=info.name, reason=exc.reason,
                expected=exc.expected, actual=exc.actual,
                n_entries_lost=info.n_entries,
            ))
            return None
        except CircuitOpenError:
            # The shard's breaker tripped on persistent failures; the
            # read was rejected without touching disk at all.
            self.metrics.record_drop(f"circuit-open:{info.name}")
            self.obs.counter("store.read.circuit_open").inc()
            if self.strict:
                raise
            self._record_skip(info)
            self.corruption_reports.append(CorruptionReport(
                shard=info.name, reason="circuit open",
                n_entries_lost=info.n_entries,
            ))
            return None
        finally:
            self.metrics.wall_time_s += time.perf_counter() - start
        self.metrics.n_in += info.n_entries
        self.obs.counter("store.read.entries").inc(info.n_entries)
        return entries

    def _guarded_read(self, info: ShardInfo) -> List[DatasetEntry]:
        """One shard read under the resilience policy: transient faults
        retry; repeated failures feed the shard's circuit breaker."""
        res = self.resilience
        if not res.enabled:
            return self._read_and_verify(info)
        breaker = res.breaker(f"store.shard.{info.digest[:12]}")
        return res.call("store.read_shard",
                        lambda: self._read_and_verify(info),
                        breaker=breaker)

    def _record_skip(self, info: ShardInfo) -> None:
        """Lenient skips leave a per-digest audit trail in the metric
        registry, so a run report names exactly which shards were lost."""
        self.obs.counter("store.read.skipped_shards").inc()
        self.obs.counter(f"store.read.skipped.{info.digest[:12]}").inc()

    def _read_and_verify(self, info: ShardInfo) -> List[DatasetEntry]:
        path = self.directory / info.name
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise ShardCorruptionError(info.name, f"unreadable: {exc}")
        actual = shard_digest(payload)
        if actual != info.digest:
            raise ShardCorruptionError(
                info.name, "checksum mismatch",
                expected=info.digest, actual=actual)
        entries = decode_shard(payload, name=info.name)
        if len(entries) != info.n_entries:
            raise ShardCorruptionError(
                info.name, "entry count mismatch",
                expected=str(info.n_entries), actual=str(len(entries)))
        return entries

    # -- streaming reads -----------------------------------------------

    def iter_entries(self, layer: Optional[int] = None,
                     complexity=None) -> Iterator[DatasetEntry]:
        """Stream matching entries, one shard in memory at a time.

        With filters, only shards whose manifest histogram covers the
        filter are opened at all.
        """
        for info in self.manifest.shards_for(layer=layer,
                                             complexity=complexity):
            entries = self._load_shard(info)
            if entries is None:
                continue
            for entry in entries:
                if layer is not None and entry.layer != layer:
                    continue
                if complexity is not None and entry.complexity != complexity:
                    continue
                self.metrics.n_out += 1
                yield entry

    def iter_batches(self, size: int = 256, layer: Optional[int] = None,
                     complexity=None) -> Iterator[List[DatasetEntry]]:
        """Stream matching entries in fixed-size batches.

        The batched form of :meth:`iter_entries`: at most one decoded
        shard plus one pending batch is in memory, and callers get
        list-at-a-time ergonomics instead of a one-record Python loop.
        The final batch may be short; batch boundaries are independent
        of shard boundaries.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        batch: List[DatasetEntry] = []
        for entry in self.iter_entries(layer=layer, complexity=complexity):
            batch.append(entry)
            if len(batch) >= size:
                yield batch
                batch = []
        if batch:
            yield batch

    def select(self, layer: Optional[int] = None,
               complexity=None) -> List[DatasetEntry]:
        """Matching entries, materialised, in store (= input) order."""
        return list(self.iter_entries(layer=layer, complexity=complexity))

    def read_all(self) -> PyraNetDataset:
        """The whole store as an in-memory :class:`PyraNetDataset`."""
        dataset = PyraNetDataset()
        for entry in self.iter_entries():
            dataset.add(entry)
        return dataset

    # -- inspection ----------------------------------------------------

    def verify(self) -> List[CorruptionReport]:
        """Check every shard's digest; returns the corruption reports.

        Strict readers raise on the first bad shard; lenient readers
        sweep the whole store and report.
        """
        for info in self.manifest.shards:
            self._load_shard(info)
        return list(self.corruption_reports)

    def trace(self) -> PipelineTrace:
        """Read instrumentation as a standard pipeline trace."""
        return PipelineTrace(
            pipeline="store-read",
            stages=[self.metrics],
            wall_time_s=self.metrics.wall_time_s,
            meta={
                "directory": str(self.directory),
                "n_shards": len(self.manifest.shards),
                "shards_opened": len(self.opened_shards),
                "strict": self.strict,
            },
        )
