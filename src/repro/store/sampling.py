"""SamplingService: deterministic seeded batches out of a sharded store.

The service is a *layered source* — it exposes the same
``trainable_layers()`` / ``layer(n)`` / iteration protocol as
:class:`~repro.dataset.records.PyraNetDataset` — so every phase builder
in :mod:`repro.finetune.curriculum` (and therefore every fine-tuning
recipe) consumes it directly in place of an in-memory dataset, reading
shards lazily through the :class:`StoreReader` index.

Three serving modes, all deterministic for a fixed seed:

* :meth:`curriculum_phases` — the paper's order (layers 1→6,
  Basic→Expert inside each), bit-identical to the in-memory
  ``curriculum_phases(dataset, seed)``;
* :meth:`uniform_batches` — a fully shuffled single stream in
  fixed-size batches;
* :meth:`weighted_batches` — samples with replacement with probability
  proportional to the PyraNet layer weights (1.0 … 0.1 by default), so
  Layer-1 rows dominate the served stream the way they dominate the
  loss.

The service is also **family-aware**: :meth:`SamplingService.split`
partitions the store into train/eval sides that never straddle a
design family (see :mod:`repro.dataset.families`) — two near-identical
designs can never land on opposite sides of the split, the leakage
hole a row-level split leaves open.  Each side is served through a
:class:`SplitView`, which implements the same layered-source protocol
plus all three serving modes restricted to its rows, so uniform,
weighted, and curriculum draws are leakage-proof by construction.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..dataset.records import DatasetEntry
from ..finetune.curriculum import Phase, curriculum_phases, random_phases
from ..finetune.weighting import WeightSchedule, paper_schedule
from ..obs.reportable import report_json, strip_schema
from .errors import StoreError
from .reader import StoreReader


@dataclass
class FamilySplit:
    """A family-atomic train/eval partition of one store.

    Every design family's members land entirely on one side, so a
    variant can never leak into eval while its canonical trains.
    Groups (families, plus each family-free entry as its own
    singleton) are shuffled with the seeded RNG and assigned to eval
    until the eval side reaches its target row count; family atomicity
    means the achieved fraction can overshoot the target by at most
    one family.
    """

    schema = "pyranet/family-split/v1"

    seed: int = 0
    eval_fraction: float = 0.1
    n_groups: int = 0
    train_ids: List[str] = field(default_factory=list)
    eval_ids: List[str] = field(default_factory=list)

    @property
    def n_train(self) -> int:
        return len(self.train_ids)

    @property
    def n_eval(self) -> int:
        return len(self.eval_ids)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "seed": self.seed,
            "eval_fraction": self.eval_fraction,
            "n_groups": self.n_groups,
            "n_train": self.n_train,
            "n_eval": self.n_eval,
            "train_ids": list(self.train_ids),
            "eval_ids": list(self.eval_ids),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FamilySplit":
        data = strip_schema(data)
        return cls(
            seed=data.get("seed", 0),
            eval_fraction=data.get("eval_fraction", 0.1),
            n_groups=data.get("n_groups", 0),
            train_ids=list(data.get("train_ids", [])),
            eval_ids=list(data.get("eval_ids", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "FamilySplit":
        return cls.from_dict(json.loads(text))


class SplitView:
    """One side of a :class:`FamilySplit`, as a layered source.

    Wraps the service with an entry-id filter: iteration, per-layer
    reads, and all three serving modes see only this side's rows.
    Every draw a trainer can make through a view stays inside the
    side, so no strategy can straddle the split.
    """

    def __init__(self, service: "SamplingService",
                 entry_ids: Sequence[str], seed: int = 0) -> None:
        self._service = service
        self._ids = frozenset(entry_ids)
        self.seed = seed
        self._layer_cache: Dict[int, List[DatasetEntry]] = {}

    # -- the layered-source protocol -----------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[DatasetEntry]:
        for entry in self._service:
            if entry.entry_id in self._ids:
                yield entry

    def layer(self, number: int) -> List[DatasetEntry]:
        cached = self._layer_cache.get(number)
        if cached is None:
            cached = [entry for entry in self._service.layer(number)
                      if entry.entry_id in self._ids]
            self._layer_cache[number] = cached
        return cached

    def trainable_layers(self) -> List[int]:
        return [number for number in self._service.trainable_layers()
                if self.layer(number)]

    def layer_sizes(self) -> Dict[int, int]:
        return {number: len(self.layer(number))
                for number in self.trainable_layers()}

    # -- serving modes (restricted to this side) -----------------------

    def curriculum_phases(self, shuffle_within: bool = True,
                          seed: Optional[int] = None) -> List[Phase]:
        return curriculum_phases(
            self, shuffle_within=shuffle_within,
            seed=self.seed if seed is None else seed)

    def uniform_batches(self, batch_size: int = 64,
                        seed: Optional[int] = None) -> List[Phase]:
        return random_phases(
            self, seed=self.seed if seed is None else seed,
            batch_size=batch_size)

    def weighted_batches(
        self,
        n_batches: int,
        batch_size: int = 64,
        seed: Optional[int] = None,
        schedule: Optional[WeightSchedule] = None,
    ) -> List[Phase]:
        """Layer-weighted sampling with replacement over this side
        only (same draw discipline as the service-wide mode)."""
        if n_batches <= 0 or batch_size <= 0:
            raise ValueError("n_batches and batch_size must be positive")
        schedule = schedule or paper_schedule()
        sizes = {number: size
                 for number, size in self.layer_sizes().items()
                 if number > 0 and size > 0}
        layers = sorted(sizes)
        masses = [schedule.weight_for(number) * sizes[number]
                  for number in layers]
        if sum(masses) <= 0:
            raise StoreError(
                f"no servable rows on this split side: schedule "
                f"{schedule.name!r} gives zero weight to every "
                f"populated layer {layers}")
        rng = random.Random(self.seed if seed is None else seed)
        n_draws = n_batches * batch_size
        drawn = rng.choices(layers, weights=masses, k=n_draws)
        draws = [(number, rng.randrange(sizes[number]))
                 for number in drawn]
        stream = [self.layer(number)[index] for number, index in draws]
        return [
            Phase(0, None, tuple(stream[start:start + batch_size]))
            for start in range(0, n_draws, batch_size)
        ]


class SamplingService:
    """Serves a sharded store to trainers and evaluators.

    Args:
        reader: the store to serve from; give it a ``ResultCache`` for
            warm multi-pass reads.
        seed: default seed for the serving modes (each method also
            accepts an explicit override).
    """

    def __init__(self, reader: StoreReader, seed: int = 0) -> None:
        self.reader = reader
        self.seed = seed

    # -- the layered-source protocol -----------------------------------

    def __len__(self) -> int:
        return len(self.reader)

    def __iter__(self) -> Iterator[DatasetEntry]:
        return self.reader.iter_entries()

    def trainable_layers(self) -> List[int]:
        """Layer numbers in the store, best first — from the manifest
        alone, no shard reads."""
        return self.reader.manifest.trainable_layers()

    def layer(self, number: int) -> List[DatasetEntry]:
        """One layer's entries in store order (only covering shards
        are opened)."""
        return self.reader.select(layer=number)

    def layer_sizes(self) -> Dict[int, int]:
        return self.reader.manifest.layer_sizes()

    # -- family-aware splitting ----------------------------------------

    def split(self, eval_fraction: float = 0.1,
              seed: Optional[int] = None) -> FamilySplit:
        """Partition the store into train/eval without straddling a
        family.

        Entries sharing a ``family_id`` move as one atomic group;
        entries without one are singleton groups keyed by entry id.
        Group keys are sorted, shuffled with the seeded RNG, and
        assigned whole to the eval side until it holds at least
        ``round(eval_fraction * n_entries)`` rows.  Deterministic for
        a fixed store + seed, regardless of shard layout.
        """
        if not 0.0 <= eval_fraction <= 1.0:
            raise ValueError(
                f"eval_fraction must be in [0, 1], got {eval_fraction}")
        seed = self.seed if seed is None else seed
        with self.reader.obs.span("store.serve.split",
                                  eval_fraction=eval_fraction) as span:
            groups: Dict[str, List[str]] = {}
            total = 0
            for entry in self:
                family = getattr(entry, "family_id", "")
                key = family if family else f"solo::{entry.entry_id}"
                groups.setdefault(key, []).append(entry.entry_id)
                total += 1
            keys = sorted(groups)
            random.Random(seed).shuffle(keys)
            target = round(eval_fraction * total)
            train_ids: List[str] = []
            eval_ids: List[str] = []
            for key in keys:
                side = eval_ids if len(eval_ids) < target else train_ids
                side.extend(groups[key])
            split = FamilySplit(seed=seed, eval_fraction=eval_fraction,
                                n_groups=len(groups),
                                train_ids=train_ids, eval_ids=eval_ids)
            span.meta["n_groups"] = split.n_groups
            span.meta["n_train"] = split.n_train
            span.meta["n_eval"] = split.n_eval
        return split

    def view(self, entry_ids: Sequence[str],
             seed: Optional[int] = None) -> SplitView:
        """A :class:`SplitView` over the given entry ids (typically one
        side of a :class:`FamilySplit`)."""
        return SplitView(self, entry_ids,
                         seed=self.seed if seed is None else seed)

    def train_view(self, split: FamilySplit) -> SplitView:
        return self.view(split.train_ids, seed=split.seed)

    def eval_view(self, split: FamilySplit) -> SplitView:
        return self.view(split.eval_ids, seed=split.seed)

    def stream_batches(self, batch_size: int = 256,
                       layer: Optional[int] = None) -> Iterator[List[DatasetEntry]]:
        """Store-order batches straight off the shards, memory-bounded.

        The streaming analogue of :meth:`layer` / full iteration: backed
        by :meth:`StoreReader.iter_batches`, so at most one shard plus
        one batch is resident — the feed for streaming curation and
        scan-style evaluation passes that don't need shuffling.
        """
        return self.reader.iter_batches(size=batch_size, layer=layer)

    # -- serving modes -------------------------------------------------

    def curriculum_phases(self, shuffle_within: bool = True,
                          seed: Optional[int] = None) -> List[Phase]:
        """The paper's curriculum, straight off the shards."""
        with self.reader.obs.span("store.serve.curriculum") as span:
            phases = curriculum_phases(
                self, shuffle_within=shuffle_within,
                seed=self.seed if seed is None else seed)
            span.meta["n_phases"] = len(phases)
        return phases

    def uniform_batches(self, batch_size: int = 64,
                        seed: Optional[int] = None) -> List[Phase]:
        """A shuffled single stream chunked into batches (layer-blind)."""
        with self.reader.obs.span("store.serve.uniform",
                                  batch_size=batch_size) as span:
            phases = random_phases(
                self, seed=self.seed if seed is None else seed,
                batch_size=batch_size)
            span.meta["n_phases"] = len(phases)
        return phases

    def weighted_batches(
        self,
        n_batches: int,
        batch_size: int = 64,
        seed: Optional[int] = None,
        schedule: Optional[WeightSchedule] = None,
    ) -> List[Phase]:
        """Batches sampled with replacement, ∝ layer weight × layer size.

        With the default paper schedule a Layer-1 row is served 10× as
        often as a Layer-6 row of equal supply.  Zero-weight layers are
        never served.  Draws are made up front from one seeded RNG, so
        the served stream is independent of shard layout and read
        order; shards are then fetched one layer at a time.
        """
        if n_batches <= 0 or batch_size <= 0:
            raise ValueError("n_batches and batch_size must be positive")
        with self.reader.obs.span("store.serve.weighted",
                                  n_batches=n_batches,
                                  batch_size=batch_size):
            return self._weighted_batches(n_batches, batch_size, seed,
                                          schedule)

    def _weighted_batches(
        self,
        n_batches: int,
        batch_size: int,
        seed: Optional[int],
        schedule: Optional[WeightSchedule],
    ) -> List[Phase]:
        schedule = schedule or paper_schedule()
        sizes = {layer: count for layer, count in self.layer_sizes().items()
                 if layer > 0 and count > 0}
        layers = sorted(sizes)
        masses = [schedule.weight_for(layer) * sizes[layer]
                  for layer in layers]
        if sum(masses) <= 0:
            raise ValueError(
                f"no servable rows: schedule {schedule.name!r} gives zero "
                f"weight to every populated layer {layers}")

        rng = random.Random(self.seed if seed is None else seed)
        n_draws = n_batches * batch_size
        drawn_layers = rng.choices(layers, weights=masses, k=n_draws)
        draws = [(layer, rng.randrange(sizes[layer]))
                 for layer in drawn_layers]

        # Fetch each referenced layer once (one layer in memory at a
        # time), then assemble in draw order.
        by_layer: Dict[int, List[DatasetEntry]] = {}
        for layer in sorted({layer for layer, _ in draws}):
            by_layer[layer] = self.layer(layer)
            if len(by_layer[layer]) != sizes[layer]:
                # A lenient reader that skipped a corrupt shard serves
                # fewer rows than the manifest promises; silently
                # re-mapping draw indices would break determinism.
                raise StoreError(
                    f"layer {layer} served {len(by_layer[layer])} rows "
                    f"but the manifest records {sizes[layer]}; weighted "
                    "sampling needs an intact store (repair or re-write "
                    "the corrupt shards)")
        stream = [by_layer[layer][index] for layer, index in draws]

        return [
            Phase(0, None, tuple(stream[start:start + batch_size]))
            for start in range(0, n_draws, batch_size)
        ]
