"""SamplingService: deterministic seeded batches out of a sharded store.

The service is a *layered source* — it exposes the same
``trainable_layers()`` / ``layer(n)`` / iteration protocol as
:class:`~repro.dataset.records.PyraNetDataset` — so every phase builder
in :mod:`repro.finetune.curriculum` (and therefore every fine-tuning
recipe) consumes it directly in place of an in-memory dataset, reading
shards lazily through the :class:`StoreReader` index.

Three serving modes, all deterministic for a fixed seed:

* :meth:`curriculum_phases` — the paper's order (layers 1→6,
  Basic→Expert inside each), bit-identical to the in-memory
  ``curriculum_phases(dataset, seed)``;
* :meth:`uniform_batches` — a fully shuffled single stream in
  fixed-size batches;
* :meth:`weighted_batches` — samples with replacement with probability
  proportional to the PyraNet layer weights (1.0 … 0.1 by default), so
  Layer-1 rows dominate the served stream the way they dominate the
  loss.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from ..dataset.records import DatasetEntry
from ..finetune.curriculum import Phase, curriculum_phases, random_phases
from ..finetune.weighting import WeightSchedule, paper_schedule
from .errors import StoreError
from .reader import StoreReader


class SamplingService:
    """Serves a sharded store to trainers and evaluators.

    Args:
        reader: the store to serve from; give it a ``ResultCache`` for
            warm multi-pass reads.
        seed: default seed for the serving modes (each method also
            accepts an explicit override).
    """

    def __init__(self, reader: StoreReader, seed: int = 0) -> None:
        self.reader = reader
        self.seed = seed

    # -- the layered-source protocol -----------------------------------

    def __len__(self) -> int:
        return len(self.reader)

    def __iter__(self) -> Iterator[DatasetEntry]:
        return self.reader.iter_entries()

    def trainable_layers(self) -> List[int]:
        """Layer numbers in the store, best first — from the manifest
        alone, no shard reads."""
        return self.reader.manifest.trainable_layers()

    def layer(self, number: int) -> List[DatasetEntry]:
        """One layer's entries in store order (only covering shards
        are opened)."""
        return self.reader.select(layer=number)

    def layer_sizes(self) -> Dict[int, int]:
        return self.reader.manifest.layer_sizes()

    def stream_batches(self, batch_size: int = 256,
                       layer: Optional[int] = None) -> Iterator[List[DatasetEntry]]:
        """Store-order batches straight off the shards, memory-bounded.

        The streaming analogue of :meth:`layer` / full iteration: backed
        by :meth:`StoreReader.iter_batches`, so at most one shard plus
        one batch is resident — the feed for streaming curation and
        scan-style evaluation passes that don't need shuffling.
        """
        return self.reader.iter_batches(size=batch_size, layer=layer)

    # -- serving modes -------------------------------------------------

    def curriculum_phases(self, shuffle_within: bool = True,
                          seed: Optional[int] = None) -> List[Phase]:
        """The paper's curriculum, straight off the shards."""
        with self.reader.obs.span("store.serve.curriculum") as span:
            phases = curriculum_phases(
                self, shuffle_within=shuffle_within,
                seed=self.seed if seed is None else seed)
            span.meta["n_phases"] = len(phases)
        return phases

    def uniform_batches(self, batch_size: int = 64,
                        seed: Optional[int] = None) -> List[Phase]:
        """A shuffled single stream chunked into batches (layer-blind)."""
        with self.reader.obs.span("store.serve.uniform",
                                  batch_size=batch_size) as span:
            phases = random_phases(
                self, seed=self.seed if seed is None else seed,
                batch_size=batch_size)
            span.meta["n_phases"] = len(phases)
        return phases

    def weighted_batches(
        self,
        n_batches: int,
        batch_size: int = 64,
        seed: Optional[int] = None,
        schedule: Optional[WeightSchedule] = None,
    ) -> List[Phase]:
        """Batches sampled with replacement, ∝ layer weight × layer size.

        With the default paper schedule a Layer-1 row is served 10× as
        often as a Layer-6 row of equal supply.  Zero-weight layers are
        never served.  Draws are made up front from one seeded RNG, so
        the served stream is independent of shard layout and read
        order; shards are then fetched one layer at a time.
        """
        if n_batches <= 0 or batch_size <= 0:
            raise ValueError("n_batches and batch_size must be positive")
        with self.reader.obs.span("store.serve.weighted",
                                  n_batches=n_batches,
                                  batch_size=batch_size):
            return self._weighted_batches(n_batches, batch_size, seed,
                                          schedule)

    def _weighted_batches(
        self,
        n_batches: int,
        batch_size: int,
        seed: Optional[int],
        schedule: Optional[WeightSchedule],
    ) -> List[Phase]:
        schedule = schedule or paper_schedule()
        sizes = {layer: count for layer, count in self.layer_sizes().items()
                 if layer > 0 and count > 0}
        layers = sorted(sizes)
        masses = [schedule.weight_for(layer) * sizes[layer]
                  for layer in layers]
        if sum(masses) <= 0:
            raise ValueError(
                f"no servable rows: schedule {schedule.name!r} gives zero "
                f"weight to every populated layer {layers}")

        rng = random.Random(self.seed if seed is None else seed)
        n_draws = n_batches * batch_size
        drawn_layers = rng.choices(layers, weights=masses, k=n_draws)
        draws = [(layer, rng.randrange(sizes[layer]))
                 for layer in drawn_layers]

        # Fetch each referenced layer once (one layer in memory at a
        # time), then assemble in draw order.
        by_layer: Dict[int, List[DatasetEntry]] = {}
        for layer in sorted({layer for layer, _ in draws}):
            by_layer[layer] = self.layer(layer)
            if len(by_layer[layer]) != sizes[layer]:
                # A lenient reader that skipped a corrupt shard serves
                # fewer rows than the manifest promises; silently
                # re-mapping draw indices would break determinism.
                raise StoreError(
                    f"layer {layer} served {len(by_layer[layer])} rows "
                    f"but the manifest records {sizes[layer]}; weighted "
                    "sampling needs an intact store (repair or re-write "
                    "the corrupt shards)")
        stream = [by_layer[layer][index] for layer, index in draws]

        return [
            Phase(0, None, tuple(stream[start:start + batch_size]))
            for start in range(0, n_draws, batch_size)
        ]
