"""Shard codec: entry batches <-> compressed, content-addressed blobs.

A shard is a zlib-compressed block of JSONL — the exact per-entry dicts
:func:`~repro.dataset.io.save_jsonl` writes — named by the blake2b
digest of its compressed bytes (``shard-<digest>.jsonl.z``).  Naming by
content makes shards immutable and self-verifying: the reader re-hashes
what it loads and any flipped bit changes the digest.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataset.records import DatasetEntry
from .errors import ShardCorruptionError

#: blake2b hex digest length used for shard names (16 bytes = 32 hex).
DIGEST_SIZE = 16

#: ``shard-<digest>.jsonl.z``
SHARD_SUFFIX = ".jsonl.z"
SHARD_PREFIX = "shard-"


def shard_digest(payload: bytes) -> str:
    """Content digest of a shard's compressed bytes."""
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).hexdigest()


def shard_name(digest: str) -> str:
    return f"{SHARD_PREFIX}{digest}{SHARD_SUFFIX}"


def encode_entry(entry: DatasetEntry) -> bytes:
    """One JSONL line (UTF-8, trailing newline) for ``entry``."""
    return (json.dumps(entry.to_dict(), ensure_ascii=False,
                       sort_keys=True) + "\n").encode("utf-8")


def encode_shard(lines: Sequence[bytes]) -> Tuple[bytes, str, int]:
    """Compress encoded entry ``lines`` into a shard payload.

    Returns ``(payload, digest, raw_size)`` where ``raw_size`` is the
    uncompressed JSONL byte count.
    """
    raw = b"".join(lines)
    payload = zlib.compress(raw, level=6)
    return payload, shard_digest(payload), len(raw)


def decode_shard(payload: bytes, name: str = "<shard>") -> List[DatasetEntry]:
    """Decompress and parse a shard payload back into entries."""
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise ShardCorruptionError(name, f"decompression failed: {exc}")
    entries: List[DatasetEntry] = []
    for number, line in enumerate(raw.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entries.append(DatasetEntry.from_dict(
                json.loads(line.decode("utf-8"))))
        except (ValueError, KeyError) as exc:
            raise ShardCorruptionError(
                name, f"line {number}: undecodable entry: {exc}")
    return entries


@dataclass
class ShardInfo:
    """Manifest record for one shard.

    ``histogram`` maps layer number (as a string, for JSON) to a
    complexity-name -> count mapping; :meth:`covers` answers whether a
    ``select()`` with the given filters could find rows here without
    opening the shard.
    """

    name: str
    digest: str
    n_entries: int
    byte_size: int
    raw_size: int
    histogram: Dict[str, Dict[str, int]] = field(default_factory=dict)
    origins: Dict[str, int] = field(default_factory=dict)
    #: Design-family summary of this shard's rows (see
    #: :func:`build_families`); zeros/empty for family-free shards.
    families: Dict[str, object] = field(default_factory=dict)
    #: Rows carrying a positive formal verdict (the verified tier);
    #: 0 for shards written before the tier existed.
    verified: int = 0

    def covers(self, layer: Optional[int] = None, complexity=None) -> bool:
        """Could this shard contain rows matching the filters?"""
        if layer is None and complexity is None:
            return self.n_entries > 0
        buckets = (
            [self.histogram.get(str(layer), {})] if layer is not None
            else list(self.histogram.values())
        )
        if complexity is None:
            return any(sum(b.values()) > 0 for b in buckets)
        key = complexity.name if hasattr(complexity, "name") else str(complexity)
        return any(b.get(key, 0) > 0 for b in buckets)

    def layer_counts(self) -> Dict[int, int]:
        return {int(layer): sum(counts.values())
                for layer, counts in self.histogram.items()}

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "digest": self.digest,
            "n_entries": self.n_entries,
            "byte_size": self.byte_size,
            "raw_size": self.raw_size,
            "histogram": {layer: dict(counts)
                          for layer, counts in self.histogram.items()},
            "origins": dict(self.origins),
            "families": dict(self.families),
            "verified": self.verified,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ShardInfo":
        return cls(
            name=data["name"],
            digest=data["digest"],
            n_entries=data["n_entries"],
            byte_size=data["byte_size"],
            raw_size=data["raw_size"],
            histogram={layer: dict(counts)
                       for layer, counts in data.get("histogram", {}).items()},
            origins=dict(data.get("origins", {})),
            families=dict(data.get("families", {})),
            verified=data.get("verified", 0),
        )


def build_histogram(entries: Sequence[DatasetEntry]) -> Dict[str, Dict[str, int]]:
    """The per-(layer, complexity) histogram of ``entries``."""
    histogram: Dict[str, Dict[str, int]] = {}
    for entry in entries:
        bucket = histogram.setdefault(str(entry.layer), {})
        key = entry.complexity.name
        bucket[key] = bucket.get(key, 0) + 1
    return histogram


def build_origins(entries: Sequence[DatasetEntry]) -> Dict[str, int]:
    """The per-origin row counts of ``entries`` (``github`` / ``llm``
    / ``generated`` / ``repair`` / ...), name-sorted for stable JSON."""
    origins: Dict[str, int] = {}
    for entry in entries:
        origins[entry.origin] = origins.get(entry.origin, 0) + 1
    return {name: origins[name] for name in sorted(origins)}


def build_verified(entries: Sequence[DatasetEntry]) -> int:
    """Rows with a positive formal verdict in ``entries``."""
    return sum(1 for entry in entries
               if getattr(entry, "verified", False))


def build_families(entries: Sequence[DatasetEntry]) -> Dict[str, object]:
    """The design-family summary of ``entries``.

    ``n_families`` counts canonical rows in this shard; ``n_variants``
    counts the variants those canonicals *declare* (dropped or stored
    elsewhere); ``n_variant_rows`` counts variant rows physically in
    this shard (non-zero only for ``keep_variants`` datasets).
    ``sizes`` histograms family size (canonical + declared variants)
    with numerically ordered keys for stable JSON.
    """
    n_families = 0
    n_variants = 0
    n_variant_rows = 0
    sizes: Dict[int, int] = {}
    for entry in entries:
        role = getattr(entry, "family_role", "")
        if role == "canonical":
            n_families += 1
            declared = getattr(entry, "n_family_variants", 0)
            n_variants += declared
            size = 1 + declared
            sizes[size] = sizes.get(size, 0) + 1
        elif role == "variant":
            n_variant_rows += 1
    return {
        "n_families": n_families,
        "n_variants": n_variants,
        "n_variant_rows": n_variant_rows,
        "sizes": {str(size): sizes[size] for size in sorted(sizes)},
    }
