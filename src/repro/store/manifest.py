"""The store manifest: the one small file that indexes a store.

``manifest.json`` records every shard — name, content digest, entry
count, compressed/raw byte sizes, and a per-(layer, complexity)
histogram — plus store-level totals.  The histogram doubles as the
layer/complexity index: ``shards_for(layer=1)`` answers "which shards
must I open?" from the manifest alone, without touching shard bytes.

The manifest is written atomically (tmp sibling + ``os.replace``) and
last, so a crashed write leaves either the previous complete store or
no manifest at all — never a manifest pointing at half-written shards.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs.reportable import strip_schema, warn_deprecated
from .errors import ManifestError
from .shard import ShardInfo

PathLike = Union[str, Path]

#: File name of the manifest inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Bumped when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

#: Sentinel distinguishing "caller said nothing" from ``indent=None``.
_INDENT_UNSET = object()


@dataclass
class StoreManifest:
    """Index of a sharded store."""

    schema = "pyranet/store-manifest/v1"

    version: int = FORMAT_VERSION
    n_entries: int = 0
    total_bytes: int = 0
    total_raw_bytes: int = 0
    shards: List[ShardInfo] = field(default_factory=list)
    #: free-form provenance (writer settings, source description, …).
    meta: Dict[str, Any] = field(default_factory=dict)

    # -- the layer/complexity index ------------------------------------

    def shards_for(self, layer: Optional[int] = None,
                   complexity=None) -> List[ShardInfo]:
        """Shards whose histogram says they may hold matching rows."""
        return [info for info in self.shards
                if info.covers(layer=layer, complexity=complexity)]

    def layer_sizes(self) -> Dict[int, int]:
        sizes: Dict[int, int] = {}
        for info in self.shards:
            for layer, count in info.layer_counts().items():
                sizes[layer] = sizes.get(layer, 0) + count
        return dict(sorted(sizes.items()))

    def trainable_layers(self) -> List[int]:
        """Layer numbers present in the store, best first (0 excluded)."""
        return sorted(n for n in self.layer_sizes() if n > 0)

    def complexity_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for info in self.shards:
            for counts in info.histogram.values():
                for name, count in counts.items():
                    label = name.capitalize()
                    histogram[label] = histogram.get(label, 0) + count
        return histogram

    def origin_histogram(self) -> Dict[str, int]:
        """Per-origin row counts across all shards, name-sorted —
        stable JSON key order, matching the facet contract."""
        histogram: Dict[str, int] = {}
        for info in self.shards:
            for name, count in getattr(info, "origins", {}).items():
                histogram[name] = histogram.get(name, 0) + count
        return {name: histogram[name] for name in sorted(histogram)}

    def family_summary(self) -> Dict[str, Any]:
        """Design-family totals across all shards: family and variant
        counts plus the family-size histogram, with numerically
        ordered size keys (the facet contract's stable key order)."""
        n_families = 0
        n_variants = 0
        n_variant_rows = 0
        sizes: Dict[int, int] = {}
        for info in self.shards:
            summary = getattr(info, "families", {}) or {}
            n_families += summary.get("n_families", 0)
            n_variants += summary.get("n_variants", 0)
            n_variant_rows += summary.get("n_variant_rows", 0)
            for size, count in summary.get("sizes", {}).items():
                sizes[int(size)] = sizes.get(int(size), 0) + count
        return {
            "n_families": n_families,
            "n_variants": n_variants,
            "n_variant_rows": n_variant_rows,
            "sizes": {str(size): sizes[size] for size in sorted(sizes)},
        }

    def verified_summary(self) -> Dict[str, Any]:
        """The verified-tier totals across all shards: how many rows
        carry a positive formal verdict, and the yield against layer 1
        (the tier it refines).  Zeros materialised for stable JSON."""
        n_verified = sum(getattr(info, "verified", 0)
                         for info in self.shards)
        n_layer_1 = self.layer_sizes().get(1, 0)
        return {
            "n_verified": n_verified,
            "n_layer_1": n_layer_1,
        }

    def facets(self) -> Dict[str, Any]:
        """The full (layer, complexity) histogram as one stable,
        JSON-ready document.

        Key order is part of the contract: layers appear in numeric
        order (as strings, since they are JSON keys) and every
        complexity mapping carries all four labels in canonical
        ``Basic`` -> ``Expert`` order, zeros included — so two stores
        with the same contents facet to byte-identical JSON.
        """
        from ..dataset.records import Complexity

        labels = [member.name.capitalize() for member in Complexity]
        layers: Dict[str, Dict[str, Any]] = {}
        for layer in sorted(self.layer_sizes()):
            merged: Dict[str, int] = {}
            for info in self.shards:
                for name, count in info.histogram.get(str(layer),
                                                      {}).items():
                    label = name.capitalize()
                    merged[label] = merged.get(label, 0) + count
            layers[str(layer)] = {
                "n_entries": sum(merged.values()),
                "complexity": {label: merged.get(label, 0)
                               for label in labels},
            }
        totals = self.complexity_histogram()
        return {
            "n_entries": self.n_entries,
            "layers": layers,
            "complexity": {label: totals.get(label, 0)
                           for label in labels},
            "origins": self.origin_histogram(),
            "families": self.family_summary(),
            "verified": self.verified_summary(),
        }

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "n_entries": self.n_entries,
            "total_bytes": self.total_bytes,
            "total_raw_bytes": self.total_raw_bytes,
            "meta": dict(self.meta),
            "shards": [info.to_dict() for info in self.shards],
        }

    def to_json(self, indent: Any = _INDENT_UNSET) -> str:
        if indent is _INDENT_UNSET:
            # The historical default was indent=2, unlike every other
            # Reportable (compact by default).  Keep emitting the old
            # shape for now so pinned manifest bytes don't change under
            # silent callers, but steer them to say what they mean.
            warn_deprecated(
                "StoreManifest.to_json() without an explicit indent is "
                "deprecated; it currently defaults to indent=2 but will "
                "align with the Reportable contract (compact, "
                "indent=None) in a future release — pass indent=2 to "
                "keep the current output")
            indent = 2
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StoreManifest":
        try:
            data = strip_schema(data)
            version = data.get("version", FORMAT_VERSION)
            if version != FORMAT_VERSION:
                raise ManifestError(
                    f"unsupported manifest version {version!r} "
                    f"(this reader understands {FORMAT_VERSION})")
            return cls(
                version=version,
                n_entries=data["n_entries"],
                total_bytes=data["total_bytes"],
                total_raw_bytes=data.get("total_raw_bytes", 0),
                meta=dict(data.get("meta", {})),
                shards=[ShardInfo.from_dict(item)
                        for item in data.get("shards", [])],
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ManifestError(f"malformed manifest: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "StoreManifest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"manifest is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- disk ----------------------------------------------------------

    def save(self, directory: PathLike) -> Path:
        """Atomically write ``manifest.json`` into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / MANIFEST_NAME
        tmp = path.with_name(path.name + ".tmp")
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                handle.write(self.to_json(indent=2))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    @classmethod
    def load(cls, directory: PathLike) -> "StoreManifest":
        path = Path(directory) / MANIFEST_NAME
        if not path.exists():
            raise ManifestError(f"no manifest at {path}")
        return cls.from_json(path.read_text(encoding="utf-8"))
