"""The PyraNet fine-tuning loop (paper Section III-B, Fig. 1-b).

:class:`Trainer` drives any :class:`~repro.model.interfaces.FineTunable`
through a phase plan: each phase is one (layer, complexity) bucket, the
layer's loss weight scales every sample in it, and phases run in
curriculum order.  Three presets mirror the paper's experiments:

* :func:`finetune_pyranet_architecture` — loss weighting + curriculum
  (the full "PyraNet-Architecture" recipe);
* :func:`finetune_pyranet_dataset` — plain fine-tuning on the same
  data: uniform weights, shuffled order ("PyraNet-Dataset");
* no call at all — the base model ("Baseline").

Every recipe accepts any :class:`~repro.finetune.curriculum.LayeredSource`
— an in-memory :class:`~repro.dataset.records.PyraNetDataset` or a
store-backed :class:`~repro.store.SamplingService` — so fine-tuning can
stream straight off a sharded store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..model.interfaces import FineTunable, TrainStats, TrainingExample
from ..obs import Observability, resolve
from .curriculum import (
    LayeredSource,
    Phase,
    anti_curriculum_phases,
    curriculum_phases,
    layered_random_phases,
    random_phases,
)
from .weighting import WeightSchedule, paper_schedule, uniform_schedule


@dataclass
class PhaseLog:
    """Record of one executed phase."""

    label: str
    layer: int
    loss_weight: float
    stats: TrainStats


@dataclass
class TrainingLog:
    """Full fine-tuning trace (used by the Fig. 1 bench and tests)."""

    phases: List[PhaseLog] = field(default_factory=list)

    @property
    def total(self) -> TrainStats:
        total = TrainStats()
        for phase in self.phases:
            total = total.merge(phase.stats)
        return total

    def phase_labels(self) -> List[str]:
        return [phase.label for phase in self.phases]


@dataclass
class Trainer:
    """Fine-tunes a model over a phase plan with a weight schedule.

    Args:
        schedule: layer → loss weight.
        epochs: passes over the phase plan (the paper trains 1–3).
        obs: observability handle; the run becomes a ``finetune.run``
            span with one ``finetune.phase.<label>`` child per executed
            phase, plus example/phase counters and a per-phase size
            histogram.
    """

    schedule: WeightSchedule
    epochs: int = 1
    obs: Optional[Observability] = None

    def run(self, model: FineTunable,
            phases: Iterable[Phase]) -> TrainingLog:
        phases = list(phases)
        obs = resolve(self.obs)
        log = TrainingLog()
        with obs.span("finetune.run", epochs=self.epochs,
                      n_phases=len(phases),
                      schedule=self.schedule.name) as run_span:
            for _ in range(self.epochs):
                for phase in phases:
                    self._run_phase(model, phase, log, obs)
            run_span.meta["n_examples"] = sum(
                len(phase.entries) for phase in phases) * self.epochs
        return log

    def _run_phase(self, model: FineTunable, phase: Phase,
                   log: TrainingLog, obs: Observability) -> None:
        weight = (
            self.schedule.weight_for(phase.layer)
            if phase.layer > 0 else
            self.schedule.weight_for(1)
        )
        with obs.span(f"finetune.phase.{phase.label}",
                      layer=phase.layer, loss_weight=weight,
                      n_examples=len(phase.entries)):
            examples = [
                TrainingExample(
                    description=entry.description,
                    code=entry.code,
                    layer=entry.layer,
                    complexity=int(entry.complexity),
                    ranking=entry.ranking,
                )
                for entry in phase.entries
            ]
            stats = model.train_batch(examples, weight)
            model.finish_phase()
        obs.counter("finetune.phases_total").inc()
        obs.counter("finetune.examples_total").inc(len(examples))
        obs.histogram("finetune.phase_examples").observe(len(examples))
        log.phases.append(PhaseLog(
            label=phase.label, layer=phase.layer,
            loss_weight=weight, stats=stats,
        ))


def finetune_pyranet_architecture(
    model: FineTunable,
    dataset: LayeredSource,
    epochs: int = 1,
    seed: int = 0,
    schedule: Optional[WeightSchedule] = None,
    obs: Optional[Observability] = None,
) -> TrainingLog:
    """The full PyraNet recipe: loss weighting + curriculum learning."""
    trainer = Trainer(schedule=schedule or paper_schedule(), epochs=epochs,
                      obs=obs)
    phases = curriculum_phases(dataset, seed=seed)
    return trainer.run(model, phases)


def finetune_pyranet_dataset(
    model: FineTunable,
    dataset: LayeredSource,
    epochs: int = 1,
    seed: int = 0,
    obs: Optional[Observability] = None,
) -> TrainingLog:
    """Plain fine-tuning on the PyraNet data (no weighting, shuffled)."""
    trainer = Trainer(schedule=uniform_schedule(), epochs=epochs, obs=obs)
    phases = random_phases(dataset, seed=seed)
    return trainer.run(model, phases)


def finetune_anti_curriculum(
    model: FineTunable,
    dataset: LayeredSource,
    epochs: int = 1,
    seed: int = 0,
    obs: Optional[Observability] = None,
) -> TrainingLog:
    """Ablation: paper weights, Expert→Basic order inside layers."""
    trainer = Trainer(schedule=paper_schedule(), epochs=epochs, obs=obs)
    phases = anti_curriculum_phases(dataset, seed=seed)
    return trainer.run(model, phases)


def finetune_weighting_only(
    model: FineTunable,
    dataset: LayeredSource,
    epochs: int = 1,
    seed: int = 0,
    obs: Optional[Observability] = None,
) -> TrainingLog:
    """Ablation: paper weights, complexity order shuffled inside layers."""
    trainer = Trainer(schedule=paper_schedule(), epochs=epochs, obs=obs)
    phases = layered_random_phases(dataset, seed=seed)
    return trainer.run(model, phases)
