"""Loss-weight schedules over PyraNet layers (paper Section III-B.1).

The paper assigns loss weight 1.0 to Layer 1 and progressively smaller
weights descending the pyramid: 0.8, 0.6, 0.4, 0.2, 0.1 for Layers
2–6.  Alternative schedules (uniform, inverse, truncated) exist for the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: The paper's schedule (Fig. 1-b).
PAPER_WEIGHTS: Dict[int, float] = {
    1: 1.0, 2: 0.8, 3: 0.6, 4: 0.4, 5: 0.2, 6: 0.1,
}


@dataclass(frozen=True)
class WeightSchedule:
    """Layer → loss weight mapping."""

    name: str
    weights: Dict[int, float] = field(default_factory=dict)

    def weight_for(self, layer: int) -> float:
        return self.weights.get(layer, 0.0)

    def as_rows(self) -> List[str]:
        return [f"layer {layer}: {weight:.2f}"
                for layer, weight in sorted(self.weights.items())]


def paper_schedule() -> WeightSchedule:
    """The published 1.0/0.8/0.6/0.4/0.2/0.1 schedule."""
    return WeightSchedule("paper", dict(PAPER_WEIGHTS))


def uniform_schedule(weight: float = 1.0) -> WeightSchedule:
    """All layers weighted equally (PyraNet-Dataset mode)."""
    return WeightSchedule("uniform", {n: weight for n in range(1, 7)})


def inverse_schedule() -> WeightSchedule:
    """The paper's schedule upside down (ablation: reward junk)."""
    inverted = {layer: PAPER_WEIGHTS[7 - layer] for layer in range(1, 7)}
    return WeightSchedule("inverse", inverted)


def top_layers_only(n_layers: int = 3) -> WeightSchedule:
    """Keep the best ``n_layers`` at full weight, drop the rest."""
    weights = {layer: (1.0 if layer <= n_layers else 0.0)
               for layer in range(1, 7)}
    return WeightSchedule(f"top{n_layers}", weights)


def no_layer6_schedule() -> WeightSchedule:
    """The paper's schedule with Layer 6 excluded entirely."""
    weights = dict(PAPER_WEIGHTS)
    weights[6] = 0.0
    return WeightSchedule("no-layer6", weights)
