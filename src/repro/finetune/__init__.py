"""Fine-tuning: loss-weight schedules, curriculum phases, the trainer."""

from .weighting import (
    PAPER_WEIGHTS,
    WeightSchedule,
    inverse_schedule,
    no_layer6_schedule,
    paper_schedule,
    top_layers_only,
    uniform_schedule,
)
from .curriculum import (
    Phase,
    anti_curriculum_phases,
    curriculum_phases,
    layered_random_phases,
    random_phases,
)
from .trainer import (
    PhaseLog,
    Trainer,
    TrainingLog,
    finetune_anti_curriculum,
    finetune_pyranet_architecture,
    finetune_pyranet_dataset,
    finetune_weighting_only,
)

__all__ = [
    "PAPER_WEIGHTS", "WeightSchedule", "paper_schedule",
    "uniform_schedule", "inverse_schedule", "top_layers_only",
    "no_layer6_schedule",
    "Phase", "curriculum_phases", "anti_curriculum_phases",
    "random_phases", "layered_random_phases",
    "Trainer", "TrainingLog", "PhaseLog",
    "finetune_pyranet_architecture", "finetune_pyranet_dataset",
    "finetune_anti_curriculum", "finetune_weighting_only",
]
