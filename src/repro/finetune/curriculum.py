"""Curriculum scheduling (paper Section III-B.2).

PyraNet fine-tuning walks the dataset top layer first; inside each
layer, samples are presented Basic → Intermediate → Advanced → Expert.
Alternative orderings (random, anti-curriculum) support the ablation
benchmarks.

Phase builders consume any :class:`LayeredSource` — an in-memory
:class:`~repro.dataset.records.PyraNetDataset` or a store-backed
:class:`~repro.store.sampling.SamplingService` — so fine-tuning can
stream a sharded store without materialising the whole dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Protocol, Tuple

from ..dataset.records import Complexity, DatasetEntry, PyraNetDataset


class LayeredSource(Protocol):
    """What a phase builder needs from a dataset-like object.

    Satisfied by :class:`PyraNetDataset` and by
    :class:`repro.store.SamplingService`; ``layer(n)`` must return the
    layer's entries in a stable dataset order so phase construction is
    deterministic across backends.
    """

    def trainable_layers(self) -> List[int]: ...

    def layer(self, number: int) -> List[DatasetEntry]: ...

    def __iter__(self) -> Iterator[DatasetEntry]: ...


@dataclass(frozen=True)
class Phase:
    """One fine-tuning phase: a (layer, complexity) bucket."""

    layer: int
    complexity: Optional[Complexity]
    entries: Tuple[DatasetEntry, ...]

    @property
    def label(self) -> str:
        tier = (self.complexity.label if self.complexity is not None
                else "mixed")
        return f"L{self.layer}/{tier}"


def curriculum_phases(
    dataset: LayeredSource,
    shuffle_within: bool = True,
    seed: int = 0,
) -> List[Phase]:
    """The paper's order: layers 1→6, Basic→Expert inside each."""
    rng = random.Random(seed)
    phases: List[Phase] = []
    for layer in dataset.trainable_layers():
        entries = dataset.layer(layer)
        for complexity in Complexity:
            bucket = [e for e in entries if e.complexity == complexity]
            if not bucket:
                continue
            if shuffle_within:
                rng.shuffle(bucket)
            phases.append(Phase(layer, complexity, tuple(bucket)))
    return phases


def anti_curriculum_phases(
    dataset: LayeredSource, seed: int = 0
) -> List[Phase]:
    """Expert → Basic inside each layer (ablation)."""
    phases = curriculum_phases(dataset, seed=seed)
    # Regroup per layer, reversing the complexity order.
    by_layer: dict = {}
    for phase in phases:
        by_layer.setdefault(phase.layer, []).append(phase)
    out: List[Phase] = []
    for layer in sorted(by_layer):
        out.extend(reversed(by_layer[layer]))
    return out


def random_phases(
    dataset: LayeredSource, seed: int = 0, batch_size: int = 64
) -> List[Phase]:
    """Fully shuffled single stream (standard fine-tuning order).

    Batches are emitted as phases with no layer identity (layer 0), so
    the trainer applies whatever uniform weight its schedule gives.
    """
    rng = random.Random(seed)
    entries = list(dataset)
    rng.shuffle(entries)
    phases: List[Phase] = []
    for start in range(0, len(entries), batch_size):
        chunk = tuple(entries[start:start + batch_size])
        if chunk:
            phases.append(Phase(0, None, chunk))
    return phases


def layered_random_phases(
    dataset: LayeredSource, seed: int = 0
) -> List[Phase]:
    """Layers in order, but complexity shuffled inside each layer
    (isolates the curriculum component from the layer walk)."""
    rng = random.Random(seed)
    phases: List[Phase] = []
    for layer in dataset.trainable_layers():
        entries = list(dataset.layer(layer))
        rng.shuffle(entries)
        phases.append(Phase(layer, None, tuple(entries)))
    return phases
