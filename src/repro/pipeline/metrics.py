"""Per-stage instrumentation: where records die and where time goes.

Every engine run produces a :class:`PipelineTrace` — one
:class:`StageMetrics` per stage with wall time, in/out counts, a
drop-reason histogram, and cache hit/miss deltas.  Traces serialise to
JSON (`to_json` / `from_json` round-trip) so a curation or eval run can
be diffed between PRs.

Since the unified observability layer landed, the registry is the
source of record: the engine folds every finished trace into it
(:meth:`repro.obs.Observability.publish_trace`), and
:meth:`PipelineTrace.from_registry` reconstructs the legacy document —
byte-for-byte, golden-tested — from registry gauges and annotations
alone.  The classes below follow the shared
:class:`~repro.obs.Reportable` contract; ``schema`` identifies the
shape on the class without perturbing the committed JSON layout.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.registry import MetricRegistry
from ..obs.reportable import strip_schema


@dataclass
class StageMetrics:
    """What one stage did to the record stream."""

    schema = "pyranet/stage-metrics/v1"

    name: str
    n_in: int = 0
    n_out: int = 0
    wall_time_s: float = 0.0
    #: reason -> count for records dropped at this stage.
    drops: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def n_dropped(self) -> int:
        return self.n_in - self.n_out

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def record_drop(self, reason: str) -> None:
        self.drops[reason] = self.drops.get(reason, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageMetrics":
        return cls(**strip_schema(data))


@dataclass
class PipelineTrace:
    """The run report: stages in execution order plus run-level facts."""

    schema = "pyranet/pipeline-trace/v1"

    pipeline: str = ""
    stages: List[StageMetrics] = field(default_factory=list)
    wall_time_s: float = 0.0
    #: run-level context (executor mode/workers, input sizes, …).
    meta: Dict[str, Any] = field(default_factory=dict)

    def stage(self, name: str) -> Optional[StageMetrics]:
        """The metrics for stage ``name`` (first match), or None."""
        for metrics in self.stages:
            if metrics.name == name:
                return metrics
        return None

    def drop_histogram(self) -> Dict[str, int]:
        """Drop reasons summed across stages."""
        histogram: Dict[str, int] = {}
        for metrics in self.stages:
            for reason, count in metrics.drops.items():
                histogram[reason] = histogram.get(reason, 0) + count
        return histogram

    def summary_lines(self) -> List[str]:
        lines = [f"pipeline {self.pipeline or '<anonymous>'}: "
                 f"{self.wall_time_s * 1000.0:.1f} ms total"]
        for metrics in self.stages:
            cache = ""
            if metrics.cache_hits or metrics.cache_misses:
                cache = (f", cache {metrics.cache_hits}h/"
                         f"{metrics.cache_misses}m")
            lines.append(
                f"  {metrics.name:<14} {metrics.n_in:>6} -> "
                f"{metrics.n_out:<6} ({metrics.wall_time_s * 1000.0:8.1f} ms"
                f"{cache})"
            )
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pipeline": self.pipeline,
            "wall_time_s": self.wall_time_s,
            "meta": dict(self.meta),
            "stages": [metrics.to_dict() for metrics in self.stages],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PipelineTrace":
        return cls(
            pipeline=data.get("pipeline", ""),
            wall_time_s=data.get("wall_time_s", 0.0),
            meta=dict(data.get("meta", {})),
            stages=[StageMetrics.from_dict(item)
                    for item in data.get("stages", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "PipelineTrace":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_registry(cls, registry: MetricRegistry,
                      pipeline: str) -> "PipelineTrace":
        """Rebuild the latest run's trace from the registry alone.

        The engine publishes every finished trace via
        :meth:`repro.obs.Observability.publish_trace`; this is the
        inverse view.  Gauges store values uncoerced and annotations
        hold the dict-shaped parts, so the reconstruction is
        byte-identical to the original ``to_json`` output (golden-
        tested).  Only the *latest* run per pipeline name is
        recoverable — cumulative history lives in the counters.
        """
        prefix = f"pipeline.{pipeline or 'anonymous'}"
        stage_names = registry.annotation(f"{prefix}.stages")
        if stage_names is None:
            raise KeyError(
                f"registry holds no published trace for {pipeline!r}")
        stages = []
        for name in stage_names:
            stage = f"{prefix}.stage.{name}"
            stages.append(StageMetrics(
                name=name,
                n_in=registry.gauge(f"{stage}.n_in").value,
                n_out=registry.gauge(f"{stage}.n_out").value,
                wall_time_s=registry.gauge(f"{stage}.wall_time_s").value,
                drops=dict(registry.annotation(f"{stage}.drops", {})),
                cache_hits=registry.gauge(f"{stage}.cache_hits").value,
                cache_misses=registry.gauge(f"{stage}.cache_misses").value,
            ))
        return cls(
            pipeline=pipeline,
            stages=stages,
            wall_time_s=registry.gauge(f"{prefix}.wall_time_s").value,
            meta=dict(registry.annotation(f"{prefix}.meta", {})),
        )
