"""The stage model: records flowing through named map/filter/batch steps.

A :class:`Record` is one unit of work — a stable ``index`` naming it in
the source population, the current ``value`` payload, and a ``meta``
side-channel for annotations stages attach along the way (provenance,
compile results, labels).

Stages come in two shapes:

* :class:`RecordStage` — a pure per-record function, run through the
  :class:`~repro.pipeline.executor.ParallelExecutor` and optionally
  memoised in a :class:`~repro.pipeline.cache.ResultCache` under a
  content-hash key.  The function sees only ``record.value`` (so it is
  picklable-friendly and cacheable) and returns :class:`Keep`,
  :class:`Drop`, or a plain replacement value.
* :class:`BatchStage` — a whole-population function for work that is
  inherently cross-record (deduplication, layer assignment).  Runs
  serially and reports per-record drops with reasons.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..resilience.runtime import Quarantined
from .cache import ResultCache, content_key
from .executor import ParallelExecutor
from .metrics import StageMetrics

_UNCHANGED = object()


@dataclass
class Record:
    """One unit of pipeline work."""

    index: int
    value: Any
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Drop:
    """Stage outcome: remove the record, with a histogram-able reason."""

    reason: str


class Keep:
    """Stage outcome: keep the record, optionally updating it.

    ``Keep()`` passes the record through untouched; ``Keep(value=v)``
    replaces the payload; ``meta`` entries are merged over the record's
    existing annotations.  (No identity-based sentinel survives a
    process-pool round trip, so "value unchanged" is an explicit flag.)
    """

    __slots__ = ("has_value", "value", "meta")

    def __init__(self, value: Any = _UNCHANGED,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        self.has_value = value is not _UNCHANGED
        self.value = value if self.has_value else None
        self.meta = dict(meta) if meta else {}


class Stage(abc.ABC):
    """A named step transforming the record stream."""

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def run(
        self,
        records: List[Record],
        executor: ParallelExecutor,
        cache: Optional[ResultCache],
        metrics: StageMetrics,
    ) -> List[Record]:
        """Consume ``records``, report drops into ``metrics``, return
        the survivors (order-preserving)."""


class RecordStage(Stage):
    """Per-record map/filter over ``record.value``.

    Args:
        name: stage name (shows up in the trace).
        fn: pure ``value -> Keep | Drop | new_value``.
        parallel: run through the executor (else a plain serial loop —
            right for trivially cheap functions).
        cache_namespace: when set (and the engine has a cache), results
            are memoised under ``content_key(namespace, key_of(value))``
            and identical values are computed only once per run.
        key_of: cache key extractor; defaults to the value itself
            (values must then be strings/bytes or stably ``repr``-able).
        when: optional record predicate; records failing it pass
            through untouched and uncounted by the cache.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Any], Any],
        *,
        parallel: bool = True,
        cache_namespace: Optional[str] = None,
        key_of: Optional[Callable[[Any], Any]] = None,
        when: Optional[Callable[[Record], bool]] = None,
    ) -> None:
        super().__init__(name)
        self.fn = fn
        self.parallel = parallel
        self.cache_namespace = cache_namespace
        self.key_of = key_of or (lambda value: value)
        self.when = when

    def run(self, records, executor, cache, metrics):
        todo = [record for record in records
                if self.when is None or self.when(record)]
        if cache is not None and self.cache_namespace is not None:
            outcomes = self._cached_outcomes(todo, executor, cache)
        elif self.parallel:
            outcomes = executor.map(self.fn, [r.value for r in todo])
        else:
            outcomes = executor.run_serial(self.fn, [r.value for r in todo])

        survivors: List[Record] = []
        position = 0
        for record in records:
            if self.when is not None and not self.when(record):
                survivors.append(record)
                continue
            outcome = outcomes[position]
            position += 1
            updated = self._apply(record, outcome, metrics)
            if updated is not None:
                survivors.append(updated)
        return survivors

    def _cached_outcomes(
        self,
        todo: List[Record],
        executor: ParallelExecutor,
        cache: ResultCache,
    ) -> List[Any]:
        """Outcomes for ``todo``, computing each distinct value once."""
        miss = object()
        keys = [content_key(self.cache_namespace, self.key_of(r.value))
                for r in todo]
        unique_keys: List[str] = []
        values_by_key: Dict[str, Any] = {}
        for key, record in zip(keys, todo):
            if key not in values_by_key:
                unique_keys.append(key)
                values_by_key[key] = record.value
        # One batched lookup: memory under a single lock, then the
        # disk tier probed through the executor's I/O map — on a warm
        # persistent cache those reads *are* the stage, so they fan
        # out instead of running one stat+read at a time.
        looked_up = cache.get_many(
            unique_keys, default=miss,
            mapper=executor.io_map if self.parallel else None)
        by_key: Dict[str, Any] = {}
        missing_keys: List[str] = []
        missing_values: List[Any] = []
        for key, found in zip(unique_keys, looked_up):
            if found is not miss:
                by_key[key] = found
            else:
                by_key[key] = miss  # claimed; computed below
                missing_keys.append(key)
                missing_values.append(values_by_key[key])
        if missing_values:
            if self.parallel:
                computed = executor.map(self.fn, missing_values)
            else:
                computed = executor.run_serial(self.fn, missing_values)
            for key, outcome in zip(missing_keys, computed):
                # A quarantined outcome reflects this run's faults, not
                # the value — caching it would poison later runs.
                if not isinstance(outcome, Quarantined):
                    cache.put(key, outcome)
                by_key[key] = outcome
        return [by_key[key] for key in keys]

    @staticmethod
    def _apply(
        record: Record, outcome: Any, metrics: StageMetrics
    ) -> Optional[Record]:
        if isinstance(outcome, Quarantined):
            metrics.record_drop(f"quarantined:{outcome.error_type}")
            return None
        if isinstance(outcome, Drop):
            metrics.record_drop(outcome.reason)
            return None
        if isinstance(outcome, Keep):
            value = outcome.value if outcome.has_value else record.value
            meta = dict(record.meta)
            meta.update(outcome.meta)
            return Record(record.index, value, meta)
        return Record(record.index, outcome, dict(record.meta))


class BatchStage(Stage):
    """Whole-population step for cross-record work.

    ``fn`` receives the full record list and returns either the kept
    records, or ``(kept_records, dropped)`` where ``dropped`` is a list
    of ``(record, reason)`` pairs feeding the drop histogram.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[List[Record]], Any],
    ) -> None:
        super().__init__(name)
        self.fn = fn

    def run(self, records, executor, cache, metrics):
        result = self.fn(records)
        if isinstance(result, tuple):
            kept, dropped = result
        else:
            kept, dropped = result, []
        for _record, reason in dropped:
            metrics.record_drop(reason)
        return list(kept)
