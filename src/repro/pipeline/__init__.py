"""Staged pipeline engine: stages, parallel execution, metrics, caching.

The generic machinery behind the curation pipeline
(:mod:`repro.dataset.pipeline`) and the evaluation harness
(:mod:`repro.eval.harness`): named map/filter/batch stages over typed
records, a deterministic-order parallel executor with a serial
fallback, per-stage wall-time/drop/cache instrumentation, and a
content-hash result cache for expensive pure per-file work.
"""

from .cache import ResultCache, content_key
from .diskcache import DiskCache
from .engine import PipelineResult, StagedPipeline
from .executor import ParallelExecutor
from .metrics import PipelineTrace, StageMetrics
from .stage import BatchStage, Drop, Keep, Record, RecordStage, Stage

__all__ = [
    "BatchStage",
    "DiskCache",
    "Drop",
    "Keep",
    "ParallelExecutor",
    "PipelineResult",
    "PipelineTrace",
    "Record",
    "RecordStage",
    "ResultCache",
    "Stage",
    "StagedPipeline",
    "StageMetrics",
    "content_key",
]
