"""Deterministic parallel map over per-record stage work.

:class:`ParallelExecutor` is the one place the pipeline touches
concurrency.  It maps a function over items in **deterministic input
order** regardless of mode, so a pipeline run is bit-identical whether
it executes serially, on a thread pool, or on a process pool:

* ``serial``  — a plain loop; the fallback everything degrades to;
* ``thread``  — ``ThreadPoolExecutor`` over deterministic-order chunks
  (our per-file work is pure Python, so threads buy safety and overlap
  with any native work rather than raw speedup);
* ``process`` — ``ProcessPoolExecutor`` for picklable module-level
  functions; anything unpicklable (closures, lambdas) falls back to
  serial instead of failing the run.

Mode and worker count can be forced via ``REPRO_PIPELINE_MODE`` /
``REPRO_PIPELINE_WORKERS`` for operational tuning without code changes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

MODES = ("serial", "thread", "process")


class ParallelExecutor:
    """Order-preserving map with a serial fallback.

    Args:
        mode: one of ``serial``, ``thread``, ``process``.
        max_workers: pool size (ignored in serial mode); defaults to
            ``os.cpu_count()`` capped at 8.
        chunk_size: items per submitted task; ``None`` picks a chunk
            count of roughly 4 tasks per worker.
    """

    def __init__(
        self,
        mode: str = "thread",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode={mode!r}; choose from {MODES}")
        self.mode = mode
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        self.chunk_size = chunk_size
        #: True when the last map degraded to serial (pool failure or
        #: unpicklable work in process mode).
        self.fell_back = False

    @classmethod
    def from_env(cls, default_mode: str = "thread") -> "ParallelExecutor":
        """Build from ``REPRO_PIPELINE_MODE`` / ``REPRO_PIPELINE_WORKERS``."""
        mode = os.environ.get("REPRO_PIPELINE_MODE", default_mode)
        workers = os.environ.get("REPRO_PIPELINE_WORKERS")
        return cls(mode=mode, max_workers=int(workers) if workers else None)

    @classmethod
    def serial(cls) -> "ParallelExecutor":
        return cls(mode="serial")

    def describe(self) -> dict:
        return {"mode": self.mode, "max_workers": self.max_workers}

    def _chunks(self, items: Sequence[Any]) -> List[Sequence[Any]]:
        size = self.chunk_size
        if size is None:
            size = max(1, len(items) // (self.max_workers * 4) or 1)
        return [items[i:i + size] for i in range(0, len(items), size)]

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """``[fn(x) for x in items]``, possibly in parallel.

        Results always come back in input order.  Exceptions raised by
        ``fn`` propagate; infrastructure failures (pool creation,
        pickling) degrade to the serial path.
        """
        self.fell_back = False
        items = list(items)
        if self.mode == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        try:
            return self._pool_map(fn, items)
        except Exception as exc:
            # Process pools fail on unpicklable work (closures, local
            # functions) in mode-specific ways — PicklingError,
            # AttributeError, BrokenProcessPool — and either pool can
            # hit resource limits at creation.  Degrade to serial for
            # those; let genuine errors raised by ``fn`` propagate
            # (thread pools add no serialisation failure modes, so in
            # thread mode only infrastructure errors are swallowed).
            if self.mode == "thread" and not isinstance(
                    exc, (OSError, RuntimeError)):
                raise
            self.fell_back = True
            return [fn(item) for item in items]

    def _pool_map(
        self, fn: Callable[[Any], Any], items: List[Any]
    ) -> List[Any]:
        pool_cls = (ThreadPoolExecutor if self.mode == "thread"
                    else ProcessPoolExecutor)
        chunks = self._chunks(items)
        workers = min(self.max_workers, len(chunks))
        with pool_cls(max_workers=workers) as pool:
            chunk_results = list(pool.map(_run_chunk,
                                          [(fn, chunk) for chunk in chunks]))
        return [result for chunk in chunk_results for result in chunk]


def _run_chunk(payload: tuple) -> List[Any]:
    """Apply ``fn`` over one chunk (module-level so processes can pickle
    the dispatcher; ``fn`` itself must be picklable in process mode)."""
    fn, chunk = payload
    return [fn(item) for item in chunk]
