"""Deterministic parallel map over per-record stage work.

:class:`ParallelExecutor` is the one place the pipeline touches
concurrency.  It maps a function over items in **deterministic input
order** regardless of mode, so a pipeline run is bit-identical whether
it executes serially, on a thread pool, or on a process pool:

* ``serial``  — a plain loop; the fallback everything degrades to;
* ``thread``  — ``ThreadPoolExecutor`` over deterministic-order chunks
  (our per-file work is pure Python, so threads buy safety and overlap
  with any native work rather than raw speedup);
* ``process`` — ``ProcessPoolExecutor`` for picklable module-level
  functions; anything unpicklable (closures, lambdas) falls back to
  serial instead of failing the run.

Mode and worker count can be forced via ``REPRO_PIPELINE_MODE`` /
``REPRO_PIPELINE_WORKERS`` for operational tuning without code changes.

When a :class:`~repro.obs.tracing.Tracer` is attached (the staged
engine does this while a pipeline with observability runs), every pool
chunk is wrapped in a ``worker[i]`` span parented under the caller's
innermost open span.  Thread chunks record straight into the shared
tracer; process chunks get a picklable :class:`~repro.obs.SpanContext`,
record into a worker-local tracer, and ship their spans back with the
results for the parent to absorb — so one merged trace sees inside the
pool whatever the mode.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..obs.tracing import SpanContext, Tracer, worker_tracer

MODES = ("serial", "thread", "process")


class ParallelExecutor:
    """Order-preserving map with a serial fallback.

    Args:
        mode: one of ``serial``, ``thread``, ``process``.
        max_workers: pool size (ignored in serial mode); defaults to
            ``os.cpu_count()`` capped at 8.
        chunk_size: items per submitted task; ``None`` picks a chunk
            count of roughly 4 tasks per worker.
    """

    def __init__(
        self,
        mode: str = "thread",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode={mode!r}; choose from {MODES}")
        self.mode = mode
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        self.chunk_size = chunk_size
        #: True when the last map degraded to serial (pool failure or
        #: unpicklable work in process mode).
        self.fell_back = False
        #: When set, pool chunks run inside ``worker[i]`` spans (the
        #: engine attaches the run's tracer for the duration of a run).
        self.tracer: Optional[Tracer] = None
        #: When set (a ``repro.resilience.StageShield``, attached by the
        #: engine per stage), mapped functions are wrapped with retry +
        #: quarantine guards and the results settled in the parent.
        self.shield: Optional[Any] = None

    @classmethod
    def from_env(cls, default_mode: str = "thread") -> "ParallelExecutor":
        """Build from ``REPRO_PIPELINE_MODE`` / ``REPRO_PIPELINE_WORKERS``."""
        mode = os.environ.get("REPRO_PIPELINE_MODE", default_mode)
        workers = os.environ.get("REPRO_PIPELINE_WORKERS")
        return cls(mode=mode, max_workers=int(workers) if workers else None)

    @classmethod
    def serial(cls) -> "ParallelExecutor":
        return cls(mode="serial")

    def describe(self) -> dict:
        return {"mode": self.mode, "max_workers": self.max_workers}

    def _chunks(self, items: Sequence[Any]) -> List[Sequence[Any]]:
        size = self.chunk_size
        if size is None:
            size = max(1, len(items) // (self.max_workers * 4) or 1)
        return [items[i:i + size] for i in range(0, len(items), size)]

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """``[fn(x) for x in items]``, possibly in parallel.

        Results always come back in input order.  Exceptions raised by
        ``fn`` propagate; infrastructure failures (pool creation,
        pickling) degrade to the serial path.
        """
        self.fell_back = False
        items = list(items)
        shield = self.shield
        if shield is not None:
            fn = shield.wrap(fn)
        if self.mode == "serial" or len(items) <= 1:
            results = [fn(item) for item in items]
            return shield.settle(results) if shield is not None else results
        try:
            results = self._pool_map(fn, items)
        except Exception as exc:
            # Process pools fail on unpicklable work (closures, local
            # functions) in mode-specific ways — PicklingError,
            # AttributeError, BrokenProcessPool — and either pool can
            # hit resource limits at creation.  Degrade to serial for
            # those; let genuine errors raised by ``fn`` propagate
            # (thread pools add no serialisation failure modes, so in
            # thread mode only infrastructure errors are swallowed).
            # Note a SimulatedCrash from fault injection is a
            # BaseException and tears straight through this handler.
            if self.mode == "thread" and not isinstance(
                    exc, (OSError, RuntimeError)):
                raise
            self.fell_back = True
            results = [fn(item) for item in items]
        return shield.settle(results) if shield is not None else results

    def io_map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Order-preserving map for I/O side work (disk-cache probes).

        A thread pool when this executor is parallel, a plain loop
        otherwise — never the attached shield, tracer, or a process
        pool: the work is not record computation, so it must not be
        retried, quarantined, traced as worker spans, or pickled to
        another process.  Pool failures degrade to the serial loop.
        """
        items = list(items)
        if self.mode == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        chunks = self._chunks(items)
        try:
            with ThreadPoolExecutor(
                    max_workers=min(self.max_workers, len(chunks))) as pool:
                chunk_results = list(pool.map(
                    lambda chunk: [fn(item) for item in chunk], chunks))
        except (OSError, RuntimeError):
            return [fn(item) for item in items]
        return [result for chunk in chunk_results for result in chunk]

    def stream_map(
        self,
        fn: Callable[[Any], Any],
        iterable: Iterable[Any],
        window: Optional[int] = None,
    ) -> Iterator[Any]:
        """Ordered streaming map: a generator with bounded look-ahead.

        Unlike :meth:`map`, the input is never materialised — at most
        ``window`` items (default ``max_workers * 2``) are in flight or
        buffered at once, so mapping over a million-record source holds
        a constant number of items in memory.  Items are submitted one
        per task (streaming callers pass whole batches as items, so
        chunking would only add latency).  Results come back strictly
        in input order.

        Failure semantics mirror :meth:`map`: exceptions raised by
        ``fn`` propagate in thread mode; infrastructure failures (pool
        creation, pickling, a broken process pool) flip
        :attr:`fell_back` and the remainder of the stream is computed
        serially in this process.  The attached :attr:`shield` is *not*
        honoured — streaming stages do their own guarding — but the
        attached :attr:`tracer` is: each in-pool item runs inside a
        ``worker[i]`` span exactly like pooled chunks in :meth:`map`.
        """
        self.fell_back = False
        iterator = iter(iterable)
        if self.mode == "serial":
            for item in iterator:
                yield fn(item)
            return
        if window is None:
            window = self.max_workers * 2
        window = max(1, window)
        pool_cls = (ThreadPoolExecutor if self.mode == "thread"
                    else ProcessPoolExecutor)
        tracer = self.tracer
        parent = tracer.current_context() if tracer is not None else None
        try:
            pool = pool_cls(max_workers=self.max_workers)
        except (OSError, RuntimeError):
            self.fell_back = True
            for item in iterator:
                yield fn(item)
            return

        def submit(item: Any, index: int):
            if tracer is None:
                return pool.submit(_run_chunk, (fn, [item]))
            if self.mode == "thread":
                return pool.submit(_run_chunk_thread_traced,
                                   (fn, [item], tracer, parent, index))
            return pool.submit(_run_chunk_process_traced,
                               (fn, [item], parent, index))

        def resolve(future: Any) -> Any:
            out = future.result()
            if tracer is not None and self.mode == "process":
                results, spans = out
                tracer.absorb(spans)
                return results[0]
            return out[0]

        def infra_failure(exc: Exception) -> bool:
            # Same split as map(): thread pools add no serialisation
            # failure modes, so in thread mode only OSError/RuntimeError
            # count as infrastructure; process-mode failures (pickling,
            # BrokenProcessPool) all degrade to serial recompute.
            return self.mode != "thread" or isinstance(
                exc, (OSError, RuntimeError))

        pending: "deque" = deque()
        index = 0
        exhausted = False
        try:
            while True:
                while not exhausted and len(pending) < window:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.append((item, submit(item, index)))
                    index += 1
                if not pending:
                    return
                item, future = pending.popleft()
                try:
                    result = resolve(future)
                except Exception as exc:
                    if not infra_failure(exc):
                        raise
                    # The pool is suspect: recompute this item here,
                    # settle whatever is already in flight, then finish
                    # the stream serially.
                    self.fell_back = True
                    yield fn(item)
                    while pending:
                        flight_item, flight_future = pending.popleft()
                        try:
                            yield resolve(flight_future)
                        except Exception as flight_exc:
                            if not infra_failure(flight_exc):
                                raise
                            yield fn(flight_item)
                    for item in iterator:
                        yield fn(item)
                    return
                yield result
        finally:
            pool.shutdown(wait=False)

    def run_serial(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """A plain in-order loop over ``items`` that still honours the
        attached shield — the path non-parallel stages use, so trivially
        cheap stage functions get retry/quarantine protection without
        pool overhead."""
        shield = self.shield
        if shield is not None:
            fn = shield.wrap(fn)
        results = [fn(item) for item in items]
        return shield.settle(results) if shield is not None else results

    def _pool_map(
        self, fn: Callable[[Any], Any], items: List[Any]
    ) -> List[Any]:
        pool_cls = (ThreadPoolExecutor if self.mode == "thread"
                    else ProcessPoolExecutor)
        chunks = self._chunks(items)
        workers = min(self.max_workers, len(chunks))
        tracer = self.tracer
        if tracer is None:
            runner: Callable[[tuple], Any] = _run_chunk
            payloads: List[tuple] = [(fn, chunk) for chunk in chunks]
        elif self.mode == "thread":
            # Pool threads share the tracer; the ambient span stack is
            # thread-local, so the parent is passed explicitly.
            parent = tracer.current_context()
            runner = _run_chunk_thread_traced
            payloads = [(fn, chunk, tracer, parent, index)
                        for index, chunk in enumerate(chunks)]
        else:
            # Workers can't share the tracer object: ship a picklable
            # context, collect the spans with the results.
            parent = tracer.current_context()
            runner = _run_chunk_process_traced
            payloads = [(fn, chunk, parent, index)
                        for index, chunk in enumerate(chunks)]
        with pool_cls(max_workers=workers) as pool:
            chunk_results = list(pool.map(runner, payloads))
        if tracer is not None and self.mode == "process":
            unwrapped = []
            for results, spans in chunk_results:
                tracer.absorb(spans)
                unwrapped.append(results)
            chunk_results = unwrapped
        return [result for chunk in chunk_results for result in chunk]


def _run_chunk(payload: tuple) -> List[Any]:
    """Apply ``fn`` over one chunk (module-level so processes can pickle
    the dispatcher; ``fn`` itself must be picklable in process mode)."""
    fn, chunk = payload
    return [fn(item) for item in chunk]


def _run_chunk_thread_traced(payload: tuple) -> List[Any]:
    """One chunk inside a ``worker[i]`` span on the shared tracer."""
    fn, chunk, tracer, parent, index = payload
    with tracer.span(f"worker[{index}]", parent=parent,
                     n_items=len(chunk), mode="thread"):
        return [fn(item) for item in chunk]


def _run_chunk_process_traced(
    payload: tuple,
) -> Tuple[List[Any], List[dict]]:
    """One chunk in a worker process: record spans into a local tracer
    parented under the shipped context; return them with the results."""
    fn, chunk, parent, index = payload
    tracer = worker_tracer(parent)
    with tracer.span(f"worker[{index}]", parent=parent,
                     n_items=len(chunk), mode="process",
                     pid=os.getpid()):
        results = [fn(item) for item in chunk]
    return results, tracer.export()
