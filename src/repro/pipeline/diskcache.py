"""Persistent spill tier for :class:`~repro.pipeline.cache.ResultCache`.

The in-memory result cache dies with the process, so every curation or
evaluation run starts cold and repays the full syntax-check / ranking /
simulation bill even when the corpus has not changed.  :class:`DiskCache`
is the content-addressed tier underneath: one file per cache key (keys
are already blake2b hex digests from :func:`~repro.pipeline.cache
.content_key`), each entry written atomically (unique tmp sibling +
``os.replace``) and verified on the way back in.

Entry layout — schema line, payload digest, payload::

    pyranet-diskcache/v1\\n   <- bumped whenever the layout changes
    blake2b(payload, 16)      <- 16 raw digest bytes
    pickle(value, protocol=4)

A read re-hashes the payload and compares digests, so a torn, truncated
or bit-flipped entry is *detected and discarded* (the file is unlinked
and the caller recomputes) — a corrupted entry is never served.  An
entry from a different schema version is discarded the same way.

Writes skip the per-entry ``fsync`` (``durable=False``): thousands of
small syncs would dominate a cold run.  The engine instead calls
:meth:`sync` once when a pipeline run finishes, flushing the directory
so the whole run's entries become durable together (see
:func:`repro.resilience.atomic.fsync_dir` for why the directory needs
the sync, not just the files).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from ..obs import Observability, resolve
from ..resilience.atomic import fsync_dir

#: First line of every entry file; bump when the layout changes so old
#: entries read as stale and are recomputed, never misparsed.
SCHEMA = b"pyranet-diskcache/v1"

_DIGEST_SIZE = 16
_SUFFIX = ".entry"

#: ``get`` statuses.
HIT, MISS, CORRUPT = "hit", "miss", "corrupt"


class DiskCache:
    """One-file-per-key persistent cache with digest-verified reads.

    Args:
        directory: where entries live; created on first use.
        max_entries: evict least-recently-used entries beyond this
            count (``None`` keeps everything).  Recency is file mtime,
            refreshed on every hit.
        durable: fsync every entry write.  Off by default — the engine
            makes a run's entries durable in one :meth:`sync` at the
            end instead of thousands of per-entry syncs.
        obs: observability handle for ``cache.disk.*`` spans; counters
            live in the owning :class:`ResultCache` (``cache.<name>.
            disk.{hits,misses,corrupt,evictions}``).
    """

    def __init__(self, directory: Union[str, Path],
                 max_entries: Optional[int] = None,
                 durable: bool = False,
                 obs: Optional[Observability] = None) -> None:
        self.directory = Path(directory)
        self.max_entries = max_entries
        self.durable = durable
        self.obs = resolve(obs)
        self._lock = threading.Lock()
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.obs.span("cache.disk.open", directory=str(directory)) as span:
            self._count = sum(1 for _ in self.directory.glob("*" + _SUFFIX))
            span.meta["entries"] = self._count

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def path_for(self, key: str) -> Path:
        return self.directory / (key + _SUFFIX)

    # -- read ----------------------------------------------------------

    def get(self, key: str) -> Tuple[str, Any]:
        """Look up ``key``: ``(HIT, value)``, ``(MISS, None)``, or —
        when the entry exists but fails schema/digest/unpickle
        verification — ``(CORRUPT, None)`` after unlinking it."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return MISS, None
        except OSError:
            return CORRUPT, self._discard(path)
        header = SCHEMA + b"\n"
        payload = raw[len(header) + _DIGEST_SIZE:]
        if (not raw.startswith(header)
                or hashlib.blake2b(payload, digest_size=_DIGEST_SIZE)
                .digest() != raw[len(header):len(header) + _DIGEST_SIZE]):
            return CORRUPT, self._discard(path)
        try:
            value = pickle.loads(payload)
        except Exception:
            return CORRUPT, self._discard(path)
        try:
            os.utime(path)  # refresh recency for LRU eviction
        except OSError:
            pass
        return HIT, value

    def _discard(self, path: Path) -> None:
        """Unlink a bad entry so it is recomputed, not re-served."""
        try:
            path.unlink()
        except OSError:
            return None
        with self._lock:
            self._count = max(0, self._count - 1)
        return None

    # -- write ---------------------------------------------------------

    def put(self, key: str, value: Any) -> int:
        """Persist ``value`` under ``key``; returns entries evicted to
        stay within ``max_entries``.  Unpicklable values are skipped —
        the memory tier still holds them for this run."""
        try:
            payload = pickle.dumps(value, protocol=4)
        except Exception:
            return 0
        digest = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
        path = self.path_for(key)
        # A unique tmp sibling (pid + thread), unlike a fixed ``.tmp``
        # name, lets concurrent writers of the same key race safely:
        # both renames are atomic and last-write-wins.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            with tmp.open("wb") as handle:
                handle.write(SCHEMA + b"\n")
                handle.write(digest)
                handle.write(payload)
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
            existed = path.exists()
            os.replace(tmp, path)
        except OSError:
            return 0
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        with self._lock:
            if not existed:
                self._count += 1
            over = (self.max_entries is not None
                    and self._count > self.max_entries)
        return self._sweep() if over else 0

    def _sweep(self) -> int:
        """Drop least-recently-used entries until within bounds."""
        with self.obs.span("cache.disk.sweep") as span:
            entries = []
            for path in self.directory.glob("*" + _SUFFIX):
                try:
                    entries.append((path.stat().st_mtime_ns, path))
                except OSError:
                    continue
            # Stable tie-breaker: coarse-mtime filesystems can stamp a
            # whole batch with one st_mtime_ns, and glob order is
            # platform-dependent — sort on (mtime, path) so eviction
            # picks the same survivors everywhere.
            entries.sort(key=lambda entry: (entry[0], str(entry[1])))
            evicted = 0
            assert self.max_entries is not None
            for _, path in entries[:max(0, len(entries) - self.max_entries)]:
                try:
                    path.unlink()
                    evicted += 1
                except OSError:
                    continue
            with self._lock:
                self._count = max(0, self._count - evicted)
            span.meta["evicted"] = evicted
        return evicted

    def sync(self) -> None:
        """Make this run's (atomically written, unsynced) entries
        durable with one directory flush."""
        with self.obs.span("cache.disk.sync",
                           directory=str(self.directory)):
            fsync_dir(self.directory)
