"""Content-hash result cache for expensive pure per-file work.

Curation and evaluation both repeat expensive pure computations on
identical inputs: the syntax check and ranking judge see duplicate
files, and pass@k sampling regenerates the same completion many times.
:class:`ResultCache` memoises any pure ``content -> result`` function
under a (namespace, blake2b(content)) key, so one cache instance can be
shared across stages — and across whole runs — without collisions.

Two tiers.  The memory tier is a true LRU ``OrderedDict`` (lookups
refresh recency, so under ``max_entries`` pressure hot entries survive
and stale ones go).  Optionally a :class:`~repro.pipeline.diskcache
.DiskCache` spill tier persists entries across processes: a memory miss
probes the disk, promotes hits back into memory, and every ``put``
writes through — which is what lets a re-run over an unchanged corpus
skip recomputation entirely.

The cache is thread-safe (stages may compute from a thread pool).  Hit
and miss counters are :class:`~repro.obs.registry.Counter` instruments
— each locks its own updates, so the counts stay consistent even on
paths that touch them outside the entry lock — and can live in a shared
:class:`~repro.obs.registry.MetricRegistry` (``cache.<name>.hits`` /
``cache.<name>.misses``, plus ``cache.<name>.disk.{hits,misses,corrupt,
evictions}`` when a disk tier is attached) so every cache in a run
reports into the same :class:`~repro.obs.RunReport`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs.registry import Counter, MetricRegistry, NullRegistry
from .diskcache import CORRUPT, HIT, DiskCache


def content_key(namespace: str, *parts: Any) -> str:
    """A stable key for ``parts`` under ``namespace``.

    Strings hash by their UTF-8 bytes; everything else by ``repr``.
    The namespace and every part are length-prefixed, so neither
    ``("ab", "c")`` / ``("a", "bc")`` nor a namespace that happens to
    end with another key's encoded first part can collide.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in (namespace,) + parts:
        if isinstance(part, str):
            raw = part.encode("utf-8", "replace")
        elif isinstance(part, bytes):
            raw = part
        else:
            raw = repr(part).encode("utf-8", "replace")
        digest.update(len(raw).to_bytes(8, "little"))
        digest.update(raw)
    return digest.hexdigest()


class ResultCache:
    """Memoisation keyed on content hashes.

    Args:
        max_entries: evict the *least recently used* entries beyond
            this count (``None`` keeps everything — fine for in-process
            runs at our scale).
        name: cache name used in metric names (``cache.<name>.hits``).
        registry: optional shared :class:`MetricRegistry` to own the
            hit/miss counters; private counters otherwise.
        disk: optional persistent spill tier (:class:`DiskCache`).
            Probed on memory misses, written through on every ``put``;
            corrupted or stale entries are discarded and recomputed,
            never served.
    """

    def __init__(self, max_entries: Optional[int] = None,
                 name: str = "default",
                 registry: Optional[MetricRegistry] = None,
                 disk: Optional[DiskCache] = None) -> None:
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.name = name
        self.disk = disk
        if registry is not None and not isinstance(registry, NullRegistry):
            make = registry.counter
        else:
            # A null registry would swallow the counts the engine's
            # trace relies on — fall back to private counters.
            make = Counter
        self._hits = make(f"cache.{name}.hits")
        self._misses = make(f"cache.{name}.misses")
        if disk is not None:
            # Created only alongside a disk tier so disk-less caches
            # add no counter names to existing run reports.
            self._disk_hits = make(f"cache.{name}.disk.hits")
            self._disk_misses = make(f"cache.{name}.disk.misses")
            self._disk_corrupt = make(f"cache.{name}.disk.corrupt")
            self._disk_evictions = make(f"cache.{name}.disk.evictions")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _remember(self, key: str, value: Any) -> None:
        """Insert into the memory tier, evicting LRU entries."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if (self.max_entries is not None
                    and len(self._entries) > self.max_entries):
                self._entries.popitem(last=False)

    def _disk_probe(self, key: str, default: Any) -> Any:
        """Second-tier lookup; promotes hits into memory.  Counts the
        overall hit/miss too — a disk hit still means "served without
        recomputing"."""
        status, value = self.disk.get(key)
        if status == HIT:
            self._remember(key, value)
            self._hits.inc()
            self._disk_hits.inc()
            return value
        if status == CORRUPT:
            self._disk_corrupt.inc()
        else:
            self._disk_misses.inc()
        self._misses.inc()
        return default

    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key``, counting the hit/miss."""
        with self._lock:
            found = key in self._entries
            if found:
                value = self._entries[key]
                # The lookup is a *use*: refresh recency so eviction
                # under max_entries is LRU, not FIFO.
                self._entries.move_to_end(key)
        # Counters lock themselves; bumping outside the entry lock
        # keeps the hot path short and the counts exact.
        if found:
            self._hits.inc()
            return value
        if self.disk is not None:
            return self._disk_probe(key, default)
        self._misses.inc()
        return default

    def get_many(
        self,
        keys: Sequence[str],
        default: Any = None,
        mapper: Optional[Callable[[Callable[[str], Any], Sequence[str]],
                                  List[Any]]] = None,
    ) -> List[Any]:
        """Batched :meth:`get` over distinct ``keys``.

        One pass over the memory tier under a single lock, then one
        batched probe of the disk tier for the remainder — optionally
        fanned out through ``mapper`` (e.g. ``executor.io_map``), since
        a warm run's latency is dominated by those reads.  Counter
        semantics match per-key :meth:`get` calls exactly.
        """
        found: Dict[str, Any] = {}
        missing: List[str] = []
        with self._lock:
            for key in keys:
                if key in found or key in missing:
                    continue
                if key in self._entries:
                    found[key] = self._entries[key]
                    self._entries.move_to_end(key)
                else:
                    missing.append(key)
        if found:
            self._hits.inc(len(found))
        if missing:
            if self.disk is not None:
                probes = (mapper(self.disk.get, missing) if mapper
                          else [self.disk.get(key) for key in missing])
                n_hits = 0
                for key, (status, value) in zip(missing, probes):
                    if status == HIT:
                        self._remember(key, value)
                        found[key] = value
                        n_hits += 1
                        self._disk_hits.inc()
                    elif status == CORRUPT:
                        self._disk_corrupt.inc()
                    else:
                        self._disk_misses.inc()
                self._hits.inc(n_hits)
                self._misses.inc(len(missing) - n_hits)
            else:
                self._misses.inc(len(missing))
        return [found[key] if key in found else default for key in keys]

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def put(self, key: str, value: Any) -> None:
        self._remember(key, value)
        if self.disk is not None:
            evicted = self.disk.put(key, value)
            if evicted:
                self._disk_evictions.inc(evicted)

    def get_or_compute(
        self,
        namespace: str,
        content: Any,
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached result for ``content`` or compute it.

        ``compute`` runs outside the lock, so concurrent misses on the
        same key may compute twice — harmless for pure functions, and
        it avoids serialising unrelated computations.
        """
        key = content_key(namespace, content)
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = compute()
        self.put(key, value)
        return value

    def sync_disk(self) -> None:
        """Flush the disk tier's directory once (the engine calls this
        at the end of a run, making the run's entries durable without
        per-entry fsyncs)."""
        if self.disk is not None:
            self.disk.sync()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            entries = len(self._entries)
        hits, misses = self._hits.value, self._misses.value
        total = hits + misses
        stats: Dict[str, Any] = {
            "entries": entries,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }
        if self.disk is not None:
            stats["disk"] = {
                "entries": len(self.disk),
                "hits": self._disk_hits.value,
                "misses": self._disk_misses.value,
                "corrupt": self._disk_corrupt.value,
                "evictions": self._disk_evictions.value,
            }
        return stats

    def clear(self) -> None:
        """Drop the memory tier and reset counters; the disk tier (when
        present) is deliberately left intact — it outlives runs."""
        with self._lock:
            self._entries.clear()
        self._hits.reset()
        self._misses.reset()
