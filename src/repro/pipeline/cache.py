"""Content-hash result cache for expensive pure per-file work.

Curation and evaluation both repeat expensive pure computations on
identical inputs: the syntax check and ranking judge see duplicate
files, and pass@k sampling regenerates the same completion many times.
:class:`ResultCache` memoises any pure ``content -> result`` function
under a (namespace, blake2b(content)) key, so one cache instance can be
shared across stages — and across whole runs — without collisions.

The cache is thread-safe (stages may compute from a thread pool).  Hit
and miss counters are :class:`~repro.obs.registry.Counter` instruments
— each locks its own updates, so the counts stay consistent even on
paths that touch them outside the entry lock — and can live in a shared
:class:`~repro.obs.registry.MetricRegistry` (``cache.<name>.hits`` /
``cache.<name>.misses``) so every cache in a run reports into the same
:class:`~repro.obs.RunReport`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from ..obs.registry import Counter, MetricRegistry, NullRegistry


def content_key(namespace: str, *parts: Any) -> str:
    """A stable key for ``parts`` under ``namespace``.

    Strings hash by their UTF-8 bytes; everything else by ``repr``.
    Parts are length-prefixed so ``("ab", "c")`` and ``("a", "bc")``
    cannot collide.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(namespace.encode("utf-8", "replace"))
    for part in parts:
        if isinstance(part, str):
            raw = part.encode("utf-8", "replace")
        elif isinstance(part, bytes):
            raw = part
        else:
            raw = repr(part).encode("utf-8", "replace")
        digest.update(len(raw).to_bytes(8, "little"))
        digest.update(raw)
    return digest.hexdigest()


class ResultCache:
    """Memoisation keyed on content hashes.

    Args:
        max_entries: evict oldest entries beyond this count (``None``
            keeps everything — fine for in-process runs at our scale).
        name: cache name used in metric names (``cache.<name>.hits``).
        registry: optional shared :class:`MetricRegistry` to own the
            hit/miss counters; private counters otherwise.
    """

    def __init__(self, max_entries: Optional[int] = None,
                 name: str = "default",
                 registry: Optional[MetricRegistry] = None) -> None:
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.name = name
        if registry is not None and not isinstance(registry, NullRegistry):
            self._hits = registry.counter(f"cache.{name}.hits")
            self._misses = registry.counter(f"cache.{name}.misses")
        else:
            # A null registry would swallow the counts the engine's
            # trace relies on — fall back to private counters.
            self._hits = Counter(f"cache.{name}.hits")
            self._misses = Counter(f"cache.{name}.misses")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key``, counting the hit/miss."""
        with self._lock:
            found = key in self._entries
            value = self._entries[key] if found else default
        # Counters lock themselves; bumping outside the entry lock
        # keeps the hot path short and the counts exact.
        if found:
            self._hits.inc()
            return value
        self._misses.inc()
        return value

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            if (self.max_entries is not None
                    and len(self._entries) > self.max_entries):
                self._entries.popitem(last=False)

    def get_or_compute(
        self,
        namespace: str,
        content: Any,
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached result for ``content`` or compute it.

        ``compute`` runs outside the lock, so concurrent misses on the
        same key may compute twice — harmless for pure functions, and
        it avoids serialising unrelated computations.
        """
        key = content_key(namespace, content)
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = compute()
        self.put(key, value)
        return value

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            entries = len(self._entries)
        hits, misses = self._hits.value, self._misses.value
        total = hits + misses
        return {
            "entries": entries,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        self._hits.reset()
        self._misses.reset()
