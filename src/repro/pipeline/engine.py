"""The staged pipeline engine: compose stages, run, get a trace.

:class:`StagedPipeline` threads a record stream through an ordered
stage list, timing every stage and attributing cache traffic to the
stage that caused it.  The result carries both the surviving records
and the full :class:`~repro.pipeline.metrics.PipelineTrace`.

With an :class:`~repro.obs.Observability` attached, a run additionally
records spans — ``pipeline.<name>`` wrapping the run, ``<name>.<stage>``
per stage, ``worker[i]`` inside executor pools (thread *and* process
workers, via serialisable span contexts) — and folds the finished trace
into the metric registry (:meth:`~repro.obs.Observability.publish_trace`),
making the legacy trace a view over the registry.  Without one, the
shared no-op observability keeps the code path identical at near-zero
cost.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from ..obs import Observability, resolve
from ..resilience.checkpoint import Checkpointer, ResumeState, run_signature
from ..resilience.runtime import Resilience
from ..resilience.runtime import resolve as resolve_resilience
from .cache import ResultCache
from .executor import ParallelExecutor
from .metrics import PipelineTrace, StageMetrics
from .stage import Record, RecordStage, Stage


@dataclass
class PipelineResult:
    """Survivor records plus the run trace."""

    records: List[Record]
    trace: PipelineTrace


@dataclass
class StagedPipeline:
    """An ordered stage composition.

    Args:
        name: pipeline name recorded in the trace.
        stages: the stage list, run in order.
        executor: shared per-record work executor (serial by default —
            parallelism is opt-in so callers control determinism risk).
        cache: shared result cache for stages that declare a
            ``cache_namespace``; also usable directly by stage closures.
        obs: observability handle collecting spans and metrics for the
            run; ``None`` uses the shared no-op instance.
        resilience: resilience runtime for the run — retry/quarantine
            shields around per-record work, retry around batch stages,
            and (when its checkpointer is set) batch-granular journaling
            that makes a killed run resumable byte-identically.  ``None``
            uses the shared disabled instance (original code path).
        checkpoint_extra: extra parameters folded into the checkpoint
            run signature (seeds, thresholds) so a journal can only
            resume the run configuration that wrote it.
    """

    name: str
    stages: List[Stage] = field(default_factory=list)
    executor: ParallelExecutor = field(default_factory=ParallelExecutor.serial)
    cache: Optional[ResultCache] = None
    obs: Optional[Observability] = None
    resilience: Optional[Resilience] = None
    checkpoint_extra: Any = None

    def add(self, stage: Stage) -> "StagedPipeline":
        self.stages.append(stage)
        return self

    def run(self, values: Sequence[Any] = (),
            records: Optional[List[Record]] = None) -> PipelineResult:
        """Run every stage over ``values`` (or pre-built ``records``)."""
        if records is None:
            records = [Record(index, value)
                       for index, value in enumerate(values)]
        obs = resolve(self.obs)
        res = resolve_resilience(self.resilience)
        trace = PipelineTrace(pipeline=self.name)
        trace.meta["executor"] = self.executor.describe()
        trace.meta["n_input"] = len(records)
        # Attach the run's tracer so pool chunks record worker spans;
        # restored afterwards because executors are shared between
        # pipelines (curation and eval reuse one instance).  The
        # resilience runtime is bound to the run's observability the
        # same way, so retry/trip/resume counters land in this run's
        # registry.
        previous_tracer = self.executor.tracer
        if obs.enabled:
            self.executor.tracer = obs.tracer
        previous_res_obs = res.obs
        if res.enabled and res.obs is None:
            res.obs = obs
        ckpt = res.checkpointer if res.enabled else None
        state: Optional[ResumeState] = None
        if ckpt is not None:
            signature = run_signature(
                [(r.index, r.value, r.meta) for r in records],
                [stage.name for stage in self.stages],
                extra=(self.name, self.checkpoint_extra))
            state = ckpt.begin(signature)
            if state.fresh:
                state = None
        started = time.perf_counter()
        try:
            with obs.span(f"pipeline.{self.name}",
                          n_input=len(records)) as span:
                for index, stage in enumerate(self.stages):
                    records = self._run_stage(
                        stage, index, records, trace, obs, res, ckpt, state)
                span.meta["n_output"] = len(records)
        finally:
            self.executor.tracer = previous_tracer
            res.obs = previous_res_obs
        trace.wall_time_s = time.perf_counter() - started
        if self.cache is not None:
            trace.meta["cache"] = self.cache.stats()
            # Disk-tier entries are written atomically but unsynced
            # during the run; one directory flush here makes the whole
            # run's entries durable without per-entry fsyncs.
            self.cache.sync_disk()
        if res.enabled:
            trace.meta["resilience"] = res.summary()
        obs.publish_trace(trace)
        if ckpt is not None:
            ckpt.finish({"n_output": len(records)})
        return PipelineResult(records=records, trace=trace)

    def _run_stage(
        self, stage: Stage, stage_index: int, records: List[Record],
        trace: PipelineTrace, obs: Observability, res: Resilience,
        ckpt: Optional[Checkpointer], state: Optional[ResumeState],
    ) -> List[Record]:
        metrics = StageMetrics(name=stage.name, n_in=len(records))
        hits_before = self.cache.hits if self.cache else 0
        misses_before = self.cache.misses if self.cache else 0
        site = f"stage.{stage.name}"
        retries_before = res.retries_for(site) if res.enabled else 0
        quarantined_before = res.quarantined_for(site) if res.enabled else 0
        started = time.perf_counter()
        with obs.span(f"{self.name}.{stage.name}",
                      n_in=len(records)) as span:
            restored = (state.stage_result(stage_index)
                        if state is not None else None)
            if restored is not None:
                records = list(restored["records"])
                _merge_drops(metrics, restored["drops"])
                res.record_resumed(stages=1)
                span.meta["resumed"] = True
            elif isinstance(stage, RecordStage):
                records, resumed = self._run_record_stage(
                    stage, stage_index, records, metrics, res, ckpt,
                    state, site)
                if resumed:
                    span.meta["resumed_batches"] = resumed
            else:
                records = self._run_batch_stage(
                    stage, stage_index, records, metrics, res, ckpt, site)
            span.meta["n_out"] = len(records)
            if res.enabled:
                retries = res.retries_for(site) - retries_before
                quarantined = (res.quarantined_for(site)
                               - quarantined_before)
                if retries:
                    span.meta["retries"] = retries
                if quarantined:
                    span.meta["quarantined"] = quarantined
        metrics.wall_time_s = time.perf_counter() - started
        metrics.n_out = len(records)
        if self.cache is not None:
            metrics.cache_hits = self.cache.hits - hits_before
            metrics.cache_misses = self.cache.misses - misses_before
        trace.stages.append(metrics)
        return records

    def _run_record_stage(
        self, stage: RecordStage, stage_index: int, records: List[Record],
        metrics: StageMetrics, res: Resilience,
        ckpt: Optional[Checkpointer], state: Optional[ResumeState],
        site: str,
    ) -> Tuple[List[Record], int]:
        """Per-record stage under a shield, optionally batch-journaled.

        Without a checkpointer the stage runs exactly as before (one
        call, shared metrics).  With one, records run in journal-sized
        batches: already-journaled batches are replayed from the
        checkpoint (records and drop reasons alike), the rest run live
        and commit as they finish — so a kill between batches loses at
        most one batch of work.
        """
        previous_shield = self.executor.shield
        self.executor.shield = (res.shield(site, self.executor.mode)
                                if res.enabled else None)
        try:
            if ckpt is None:
                return (stage.run(records, self.executor, self.cache,
                                  metrics), 0)
            interval = max(1, ckpt.interval)
            batches = [records[start:start + interval]
                       for start in range(0, len(records), interval)]
            completed = (state.completed_batches(stage_index)
                         if state is not None else 0)
            survivors: List[Record] = []
            resumed = 0
            for batch_index, chunk in enumerate(batches):
                if batch_index < completed:
                    payload = state.batch_result(stage_index, batch_index)
                    out = list(payload["survivors"])
                    drops = payload["drops"]
                    resumed += 1
                else:
                    batch_metrics = StageMetrics(name=stage.name,
                                                 n_in=len(chunk))
                    out = stage.run(list(chunk), self.executor,
                                    self.cache, batch_metrics)
                    drops = batch_metrics.drops
                    ckpt.record_batch(stage_index, batch_index, stage.name, {
                        "survivors": list(out),
                        "drops": dict(drops),
                        "digest": _records_digest(out),
                        "cache_namespace": stage.cache_namespace,
                    })
                _merge_drops(metrics, drops)
                survivors.extend(out)
            if resumed:
                res.record_resumed(batches=resumed)
            ckpt.record_stage(stage_index, stage.name, {
                "records": list(survivors),
                "drops": dict(metrics.drops),
                "digest": _records_digest(survivors),
            })
            return survivors, resumed
        finally:
            self.executor.shield = previous_shield

    def _run_batch_stage(
        self, stage: Stage, stage_index: int, records: List[Record],
        metrics: StageMetrics, res: Resilience,
        ckpt: Optional[Checkpointer], site: str,
    ) -> List[Record]:
        """Whole-population stage under the retry policy.

        Each attempt gets fresh metrics so a retried stage cannot
        double-count drops; batch stages are atomic from the journal's
        point of view (one entry on success)."""

        def attempt() -> Tuple[List[Record], StageMetrics]:
            attempt_metrics = StageMetrics(name=stage.name,
                                           n_in=len(records))
            out = stage.run(records, self.executor, self.cache,
                            attempt_metrics)
            return out, attempt_metrics

        if res.enabled:
            out, attempt_metrics = res.call(site, attempt)
        else:
            out, attempt_metrics = attempt()
        _merge_drops(metrics, attempt_metrics.drops)
        if ckpt is not None:
            ckpt.record_stage(stage_index, stage.name, {
                "records": list(out),
                "drops": dict(attempt_metrics.drops),
                "digest": _records_digest(out),
            })
        return out


def _merge_drops(metrics: StageMetrics, drops: Any) -> None:
    for reason, count in dict(drops).items():
        metrics.drops[reason] = metrics.drops.get(reason, 0) + count


def _records_digest(records: Sequence[Record]) -> str:
    """Content digest of a record batch, journaled alongside it so a
    resumed run can assert it is replaying exactly what was committed."""
    blob = pickle.dumps([(r.index, r.value, r.meta) for r in records],
                        protocol=4)
    return hashlib.blake2b(blob, digest_size=16).hexdigest()
