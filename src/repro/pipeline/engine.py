"""The staged pipeline engine: compose stages, run, get a trace.

:class:`StagedPipeline` threads a record stream through an ordered
stage list, timing every stage and attributing cache traffic to the
stage that caused it.  The result carries both the surviving records
and the full :class:`~repro.pipeline.metrics.PipelineTrace`.

With an :class:`~repro.obs.Observability` attached, a run additionally
records spans — ``pipeline.<name>`` wrapping the run, ``<name>.<stage>``
per stage, ``worker[i]`` inside executor pools (thread *and* process
workers, via serialisable span contexts) — and folds the finished trace
into the metric registry (:meth:`~repro.obs.Observability.publish_trace`),
making the legacy trace a view over the registry.  Without one, the
shared no-op observability keeps the code path identical at near-zero
cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from ..obs import Observability, resolve
from .cache import ResultCache
from .executor import ParallelExecutor
from .metrics import PipelineTrace, StageMetrics
from .stage import Record, Stage


@dataclass
class PipelineResult:
    """Survivor records plus the run trace."""

    records: List[Record]
    trace: PipelineTrace


@dataclass
class StagedPipeline:
    """An ordered stage composition.

    Args:
        name: pipeline name recorded in the trace.
        stages: the stage list, run in order.
        executor: shared per-record work executor (serial by default —
            parallelism is opt-in so callers control determinism risk).
        cache: shared result cache for stages that declare a
            ``cache_namespace``; also usable directly by stage closures.
        obs: observability handle collecting spans and metrics for the
            run; ``None`` uses the shared no-op instance.
    """

    name: str
    stages: List[Stage] = field(default_factory=list)
    executor: ParallelExecutor = field(default_factory=ParallelExecutor.serial)
    cache: Optional[ResultCache] = None
    obs: Optional[Observability] = None

    def add(self, stage: Stage) -> "StagedPipeline":
        self.stages.append(stage)
        return self

    def run(self, values: Sequence[Any] = (),
            records: Optional[List[Record]] = None) -> PipelineResult:
        """Run every stage over ``values`` (or pre-built ``records``)."""
        if records is None:
            records = [Record(index, value)
                       for index, value in enumerate(values)]
        obs = resolve(self.obs)
        trace = PipelineTrace(pipeline=self.name)
        trace.meta["executor"] = self.executor.describe()
        trace.meta["n_input"] = len(records)
        # Attach the run's tracer so pool chunks record worker spans;
        # restored afterwards because executors are shared between
        # pipelines (curation and eval reuse one instance).
        previous_tracer = self.executor.tracer
        if obs.enabled:
            self.executor.tracer = obs.tracer
        started = time.perf_counter()
        try:
            with obs.span(f"pipeline.{self.name}",
                          n_input=len(records)) as span:
                for stage in self.stages:
                    records = self._run_stage(stage, records, trace, obs)
                span.meta["n_output"] = len(records)
        finally:
            self.executor.tracer = previous_tracer
        trace.wall_time_s = time.perf_counter() - started
        if self.cache is not None:
            trace.meta["cache"] = self.cache.stats()
        obs.publish_trace(trace)
        return PipelineResult(records=records, trace=trace)

    def _run_stage(
        self, stage: Stage, records: List[Record], trace: PipelineTrace,
        obs: Observability,
    ) -> List[Record]:
        metrics = StageMetrics(name=stage.name, n_in=len(records))
        hits_before = self.cache.hits if self.cache else 0
        misses_before = self.cache.misses if self.cache else 0
        started = time.perf_counter()
        with obs.span(f"{self.name}.{stage.name}",
                      n_in=len(records)) as span:
            records = stage.run(records, self.executor, self.cache, metrics)
            span.meta["n_out"] = len(records)
        metrics.wall_time_s = time.perf_counter() - started
        metrics.n_out = len(records)
        if self.cache is not None:
            metrics.cache_hits = self.cache.hits - hits_before
            metrics.cache_misses = self.cache.misses - misses_before
        trace.stages.append(metrics)
        return records
