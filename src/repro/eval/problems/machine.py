"""VerilogEval-Machine style problems.

VerilogEval-Machine descriptions were *machine generated* (by an LLM
reading the reference solution), so their wording closely matches how
training descriptions are phrased.  We reproduce that regime: each
problem's description comes from the same family describer the corpus
uses, with a held-out RNG stream, over a spread of parameter points.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ...corpus.templates import generate_design
from ..harness import EvalProblem

#: (family, params or None for family default sampling)
_MACHINE_POINTS: List[Tuple[str, Optional[Dict[str, int]]]] = [
    ("half_adder", None),
    ("full_adder", None),
    ("ripple_carry_adder", {"WIDTH": 4}),
    ("ripple_carry_adder", {"WIDTH": 8}),
    ("ripple_carry_adder", {"WIDTH": 16}),
    ("adder_subtractor", {"WIDTH": 8}),
    ("comparator", {"WIDTH": 4}),
    ("comparator", {"WIDTH": 8}),
    ("mux", {"WIDTH": 8, "INPUTS": 2}),
    ("mux", {"WIDTH": 8, "INPUTS": 4}),
    ("mux", {"WIDTH": 16, "INPUTS": 8}),
    ("demux", {"OUTPUTS": 4}),
    ("decoder", {"IN_WIDTH": 2}),
    ("decoder", {"IN_WIDTH": 3}),
    ("priority_encoder", {"IN_WIDTH": 4}),
    ("priority_encoder", {"IN_WIDTH": 8}),
    ("parity", {"WIDTH": 8}),
    ("gray_converter", {"WIDTH": 4}),
    ("alu", {"WIDTH": 8}),
    ("alu", {"WIDTH": 16}),
    ("barrel_shifter", {"WIDTH": 8}),
    ("popcount", {"WIDTH": 8}),
    ("absolute_value", {"WIDTH": 8}),
    ("min_max", {"WIDTH": 8}),
    ("multiplier", {"WIDTH": 4}),
    ("bcd_to_7seg", None),
    ("sign_extender", {"IN_WIDTH": 4, "OUT_WIDTH": 8}),
    ("d_flip_flop", None),
    ("t_flip_flop", None),
    ("register", {"WIDTH": 8}),
    ("up_counter", {"WIDTH": 4}),
    ("up_counter", {"WIDTH": 8}),
    ("down_counter", {"WIDTH": 8}),
    ("updown_counter", {"WIDTH": 4}),
    ("mod_n_counter", {"MODULO": 10}),
    ("mod_n_counter", {"MODULO": 12}),
    ("shift_register", {"WIDTH": 8}),
    ("ring_counter", {"WIDTH": 4}),
    ("johnson_counter", {"WIDTH": 4}),
    ("gray_counter", {"WIDTH": 4}),
    ("lfsr", {"WIDTH": 8}),
    ("edge_detector", None),
    ("sequence_detector", {"PATTERN": 0b1011, "LENGTH": 4}),
    ("pwm", {"WIDTH": 8}),
    ("accumulator", {"WIDTH": 8}),
    ("sync_fifo", {"DEPTH": 4, "WIDTH": 8}),
    ("traffic_light", None),
    ("clock_divider", {"DIVIDE_BY": 4}),
]


def build_machine_problems(seed: int = 20240) -> List[EvalProblem]:
    """The Machine suite: auto-phrased descriptions, held-out RNG."""
    rng = random.Random(seed)
    problems: List[EvalProblem] = []
    for index, (family, params) in enumerate(_MACHINE_POINTS):
        design = generate_design(
            family, rng, params=params, module_name="top_module"
        )
        problems.append(EvalProblem(
            problem_id=f"machine_{index:03d}_{family}",
            suite="machine",
            spec=design.spec,
            description=design.description,
            module_header=design.spec.port_header(),
        ))
    return problems
