"""VerilogEval-Human style problems.

VerilogEval-Human descriptions were written *by people*: they
paraphrase, use informal vocabulary, and rarely echo the canonical
design-family terminology.  Retrieval-style models (and real LLMs)
find them measurably harder than machine phrasing, which is exactly
the Machine/Human gap visible in the paper's Table I.  Every
description below is hand-authored to avoid the corpus describer's
wording while still specifying the same behavioural contract.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ...corpus.templates import generate_design
from ..harness import EvalProblem

#: (family, params, hand-written description)
_HUMAN_POINTS: List[Tuple[str, Optional[Dict[str, int]], str]] = [
    ("half_adder", None,
     "I need a tiny piece of combinational logic: two wires a and b "
     "come in, and I want 'sum' to tell me if exactly one of them is "
     "high, and 'cout' to tell me if both are high."),
    ("full_adder", None,
     "Build the classic one-bit adding cell. Three single-bit inputs "
     "a, b, cin. 'sum' is their XOR; 'cout' goes high whenever at "
     "least two of the three are high."),
    ("ripple_carry_adder", {"WIDTH": 8},
     "Add two unsigned 8-bit numbers a and b together with an extra "
     "carry-in bit cin. Give me the 8-bit result on 'sum' and the "
     "overflow bit on 'cout'."),
    ("adder_subtractor", {"WIDTH": 8},
     "One 8-bit datapath, two operations: if the control wire sub is "
     "low, result gets a plus b; if it is high, result gets a minus b "
     "(two's complement). Also expose the internal adder's carry-out "
     "on 'carry'."),
    ("comparator", {"WIDTH": 8},
     "Compare two unsigned bytes a and b. Drive three flags: eq when "
     "they match, gt when the first is bigger, lt when the second is "
     "bigger."),
    ("mux", {"WIDTH": 8, "INPUTS": 4},
     "Four byte-wide buses d0, d1, d2, d3 feed one output y. A 2-bit "
     "control 'sel' picks which bus gets through."),
    ("decoder", {"IN_WIDTH": 3},
     "Take a 3-bit code 'a' and light up exactly one of the 8 wires of "
     "y — the one whose position equals the code — but only while en "
     "is high; otherwise keep everything low."),
    ("priority_encoder", {"IN_WIDTH": 8},
     "Eight request lines arrive on req. Tell me the position of the "
     "most significant line that is asserted (on idx) and raise valid "
     "if anything is asserted at all. With no requests, idx should "
     "read zero."),
    ("parity", {"WIDTH": 8},
     "For a byte of data, compute the XOR of all its bits on "
     "even_parity, and the opposite on odd_parity."),
    ("alu", {"WIDTH": 8},
     "A small 8-bit math unit with operands a and b and a 3-bit "
     "operation code: 0 adds, 1 subtracts, 2 ANDs, 3 ORs, 4 XORs, 5 "
     "does signed less-than (result 1 or 0), 6 shifts a left by "
     "b[2:0], 7 shifts a right by b[2:0]. Raise 'zero' when the "
     "result is all zeros."),
    ("barrel_shifter", {"WIDTH": 8},
     "Rotate — not shift — the 8 bits of 'data' by 'amount' places. "
     "Direction wire 'left' high means rotate toward the MSB, low "
     "means toward the LSB. Result on 'out'."),
    ("popcount", {"WIDTH": 8},
     "Count how many ones appear in the byte 'data' and put that "
     "number on 'count'."),
    ("min_max", {"WIDTH": 8},
     "Given two unsigned bytes, route the smaller one to min_val and "
     "the larger one to max_val."),
    ("multiplier", {"WIDTH": 4},
     "Multiply two unsigned 4-bit values a and b and give the full "
     "8-bit result on 'product'. Pure combinational logic."),
    ("bcd_to_7seg", None,
     "Drive a seven-segment display from a decimal digit. Input "
     "'digit' is 4 bits; output 'segments' is 7 bits, active high, "
     "segment a in bit 0 up to segment g in bit 6 (so 0 shows as "
     "7'h3f). Anything above 9 blanks the display."),
    ("d_flip_flop", None,
     "A single storage bit: every rising edge of clk, q captures d. "
     "A synchronous rst wire forces q low. Also give me qn, the "
     "inverted copy of q."),
    ("register", {"WIDTH": 8},
     "A byte-wide storage element. On the clock's rising edge it "
     "loads d, but only while en is high; otherwise it keeps its "
     "value. rst clears it synchronously."),
    ("up_counter", {"WIDTH": 8},
     "Keep a running tally on 'count': each rising clock edge with en "
     "high bumps it by one, rolling over past the top. Pulling rst_n "
     "low at any time (asynchronously) zeroes it."),
    ("updown_counter", {"WIDTH": 4},
     "A 4-bit counter that can go both ways: while en is high, each "
     "clock edge moves count up when 'up' is high and down when it is "
     "low, wrapping at both ends. rst synchronously clears it."),
    ("mod_n_counter", {"MODULO": 10},
     "A decade counter: count 0 through 9 and wrap back to 0, "
     "advancing only while en is high. Pulse 'tick' during the 9 "
     "state. rst synchronously restarts from 0."),
    ("shift_register", {"WIDTH": 8},
     "Serial data arrives on 'sin', one bit per clock edge, entering "
     "at the low end of an 8-bit register q whose old contents slide "
     "up. The bit falling off the top appears on sout. rst clears "
     "everything."),
    ("ring_counter", {"WIDTH": 4},
     "Four flip-flops in a circle: after reset exactly one of them "
     "(q[0]) holds a one, and each clock edge passes that one token "
     "to the next position, wrapping around forever."),
    ("johnson_counter", {"WIDTH": 4},
     "A twisted ring of four bits: each clock edge shifts q left and "
     "feeds the complement of the old top bit back into the bottom. "
     "Reset empties the register."),
    ("edge_detector", None,
     "Watch the wire 'sig'. One clock after it climbs from low to "
     "high, pulse 'rise' for a single cycle; one clock after it drops "
     "from high to low, pulse 'fall'. rst clears the state."),
    ("sequence_detector", {"PATTERN": 0b1011, "LENGTH": 4},
     "Scan a serial bit stream on din for the pattern one-zero-one-"
     "one (oldest bit first), overlaps included. The cycle after the "
     "pattern completes, raise 'found' for one clock. rst restarts "
     "the search."),
    ("pwm", {"WIDTH": 8},
     "Pulse-width modulation: run a free 8-bit counter off the clock "
     "and keep pwm_out high exactly while the counter is below the "
     "programmed 'duty' level."),
    ("accumulator", {"WIDTH": 8},
     "A running 8-bit total named acc. Each clock edge with 'add' "
     "high folds din into the total (wrap on overflow). 'clear' (or "
     "rst) empties it and wins over add."),
    ("sync_fifo", {"DEPTH": 4, "WIDTH": 8},
     "A four-slot byte queue with one clock. Assert wr to push din "
     "when there is room; assert rd to pop when something is stored; "
     "dout always shows the oldest byte. Flags full and empty track "
     "occupancy, and rst wipes the queue."),
    ("traffic_light", None,
     "Control a three-lamp signal: after reset show red for three "
     "clock ticks, then green for three, then yellow for one, and "
     "loop. Exactly one of the outputs red, yellow, green is high at "
     "any time."),
    ("gray_counter", {"WIDTH": 4},
     "A counter whose output 'gray' only ever changes one bit per "
     "step: internally count in binary while en is high and expose "
     "the Gray-coded value. rst zeroes it."),
]


def build_human_problems() -> List[EvalProblem]:
    """The Human suite: hand-authored paraphrased descriptions."""
    rng = random.Random(991)
    problems: List[EvalProblem] = []
    for index, (family, params, description) in enumerate(_HUMAN_POINTS):
        design = generate_design(
            family, rng, params=params, module_name="top_module"
        )
        problems.append(EvalProblem(
            problem_id=f"human_{index:03d}_{family}",
            suite="human",
            spec=design.spec,
            description=description,
            module_header=design.spec.port_header(),
        ))
    return problems
