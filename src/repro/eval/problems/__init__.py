"""Benchmark problem suites (VerilogEval-Machine / -Human analogues)."""

from .machine import build_machine_problems
from .human import build_human_problems

__all__ = ["build_machine_problems", "build_human_problems"]
