"""The VerilogEval-style evaluation loop.

For every problem, sample *n* completions from the model at a fixed
temperature, run each against the problem's hidden functional
testbench, and estimate pass@k from the per-problem pass counts —
VerilogEval's protocol end to end.

The loop runs on the staged pipeline engine
(:mod:`repro.pipeline`): each problem's sampling + simulation is one
record fanned out across a :class:`~repro.pipeline.ParallelExecutor`
(threads by default — ``generate`` and the simulator only read shared
state), and functional-test outcomes are memoised in a shared
:class:`~repro.pipeline.ResultCache` keyed on the completion text, so
identical completions — within a run or across models evaluated
against the same suite — simulate once.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..corpus.spec import DesignSpec
from ..model.interfaces import FineTunable
from ..obs import Observability, resolve
from ..obs.reportable import strip_schema
from ..pipeline import (
    ParallelExecutor,
    PipelineTrace,
    RecordStage,
    ResultCache,
    StagedPipeline,
)
from ..obs.reportable import warn_deprecated
from ..resilience.runtime import Resilience
from .config import EvalConfig
from .functional import TestOutcome, run_functional_test
from .passk import mean_pass_at_k, pass_at_k


@dataclass
class EvalProblem:
    """One benchmark problem."""

    problem_id: str
    suite: str
    spec: DesignSpec
    description: str
    module_header: str


@dataclass
class ProblemResult:
    """Per-problem sampling outcome."""

    problem_id: str
    n_samples: int
    n_passed: int
    failure_kinds: Dict[str, int] = field(default_factory=dict)

    def pass_at(self, k: int) -> float:
        """pass@k, with k clamped to the sample count."""
        return pass_at_k(self.n_samples, self.n_passed,
                         min(k, self.n_samples))

    def to_dict(self) -> Dict:
        return {
            "problem_id": self.problem_id,
            "n_samples": self.n_samples,
            "n_passed": self.n_passed,
            "failure_kinds": dict(self.failure_kinds),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ProblemResult":
        return cls(
            problem_id=data["problem_id"],
            n_samples=data["n_samples"],
            n_passed=data["n_passed"],
            failure_kinds=dict(data.get("failure_kinds", {})),
        )


@dataclass
class EvalReport:
    """Suite-level results."""

    schema = "pyranet/eval-report/v1"

    suite: str
    model_name: str
    results: List[ProblemResult] = field(default_factory=list)
    trace: Optional[PipelineTrace] = None

    def pass_at(self, k: int) -> float:
        """Mean pass@k over problems, as a percentage.

        k is clamped per problem to its sample count, so asking for
        pass@10 after a 5-sample run degrades gracefully to pass@5.
        """
        if not self.results:
            return 0.0
        return 100.0 * sum(
            result.pass_at(k) for result in self.results
        ) / len(self.results)

    def summary(self, ks: Sequence[int] = (1, 5, 10)) -> Dict[str, float]:
        return {f"pass@{k}": round(self.pass_at(k), 1) for k in ks}

    def failure_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for result in self.results:
            for kind, count in result.failure_kinds.items():
                histogram[kind] = histogram.get(kind, 0) + count
        return histogram

    def to_dict(self) -> Dict:
        return {
            "suite": self.suite,
            "model_name": self.model_name,
            "results": [result.to_dict() for result in self.results],
            "trace": self.trace.to_dict() if self.trace else None,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "EvalReport":
        data = strip_schema(data)
        trace = data.get("trace")
        return cls(
            suite=data["suite"],
            model_name=data["model_name"],
            results=[ProblemResult.from_dict(item)
                     for item in data.get("results", [])],
            trace=PipelineTrace.from_dict(trace) if trace else None,
        )

    @classmethod
    def from_json(cls, text: str) -> "EvalReport":
        return cls.from_dict(json.loads(text))


def sample_seed(seed: int, problem_index: int, sample_index: int) -> int:
    """Stable 64-bit RNG seed for one (run, problem, sample) triple.

    An explicit blake2b mix — unlike tuple ``__hash__``, the derivation
    is documented, collision-resistant, and independent of interpreter
    hashing details.
    """
    digest = hashlib.blake2b(
        f"{seed}:{problem_index}:{sample_index}".encode("ascii"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little")


#: Legacy declarative kwargs and the EvalConfig field each maps onto.
_LEGACY_CONFIG_KWARGS = ("n_samples", "temperature", "seed",
                         "n_test_vectors", "model_name")


def resolve_config(config: Optional[EvalConfig],
                   legacy: Dict[str, object],
                   caller: str = "evaluate_model") -> EvalConfig:
    """Fold a possibly-legacy call surface into one :class:`EvalConfig`.

    ``legacy`` holds declarative kwargs from the pre-config signature
    (``n_samples=...``, ``seed=...``); each maps 1:1 onto a config
    field and emits a :class:`DeprecationWarning`.  Mixing them with an
    explicit ``config`` is a :class:`TypeError` — one source of truth.
    """
    unknown = set(legacy) - set(_LEGACY_CONFIG_KWARGS)
    if unknown:
        raise TypeError(
            f"{caller}() got unexpected keyword arguments "
            f"{sorted(unknown)}")
    if legacy:
        if config is not None:
            raise TypeError(
                f"{caller}() takes either a config or legacy keyword "
                f"arguments, not both (got config plus "
                f"{sorted(legacy)})")
        warn_deprecated(
            f"passing {sorted(legacy)} to {caller}() is deprecated; "
            "build an EvalConfig and pass it as the config argument")
        return EvalConfig(**legacy)  # type: ignore[arg-type]
    return config if config is not None else EvalConfig()


def evaluate_model(
    model: FineTunable,
    problems: Iterable[EvalProblem],
    config: Optional[EvalConfig] = None,
    *,
    executor: Optional[ParallelExecutor] = None,
    cache: Optional[ResultCache] = None,
    obs: Optional[Observability] = None,
    resilience: Optional[Resilience] = None,
    **legacy,
) -> EvalReport:
    """Run the full sampling + functional-check loop.

    Args:
        model: any :class:`FineTunable`.
        problems: the benchmark suite — any iterable (a list, or a
            lazy stream such as a generator over a problem store);
            drained once before fan-out.
        config: the declarative parameters as one frozen
            :class:`EvalConfig` (sample count, temperature, seed,
            vectors, report label); ``None`` means defaults.  The old
            per-kwarg spelling (``n_samples=...``, ``seed=...``) still
            works through a deprecation shim that maps 1:1 onto a
            config.
        executor: per-problem fan-out; defaults to a thread pool
            (override with ``REPRO_PIPELINE_MODE=serial``).
        cache: functional-test outcome cache; pass a shared instance to
            reuse simulations across models/suites.
        obs: observability handle; the run becomes an ``eval.run`` span
            enclosing the engine's stage/worker spans, with problem and
            sample counters in the run's report.
        resilience: resilience runtime — per-problem work retries and
            quarantines under its policy, and with a checkpointer set
            the run journals per-problem batches and resumes a killed
            evaluation without re-sampling finished problems.
    """
    config = resolve_config(config, legacy)
    n_samples = config.n_samples
    temperature = config.temperature
    seed = config.seed
    n_test_vectors = config.n_test_vectors
    problems = list(problems)
    obs = resolve(obs)
    suite = problems[0].suite if problems else "empty"
    name = config.model_name or getattr(
        getattr(model, "profile", None), "name", type(model).__name__
    )
    outcome_cache = cache if cache is not None else ResultCache()

    def _run_problem(indexed) -> ProblemResult:
        p_index, problem = indexed
        result = ProblemResult(
            problem_id=problem.problem_id, n_samples=n_samples, n_passed=0
        )
        # Identical completions share one functional-test run; sampling
        # repeats exemplars often, so this cuts simulation cost a lot
        # without changing any outcome.
        namespace = f"functional/{problem.problem_id}/{n_test_vectors}"
        for s_index in range(n_samples):
            rng = random.Random(sample_seed(seed, p_index, s_index))
            code = model.generate(
                problem.description,
                temperature=temperature,
                rng=rng,
                module_header=problem.module_header,
            )
            outcome = outcome_cache.get_or_compute(
                namespace, code,
                lambda: run_functional_test(
                    code, problem.spec, n_vectors=n_test_vectors,
                    seed=1000,
                ),
            )
            if outcome.passed:
                result.n_passed += 1
            else:
                kind = outcome.failure_kind or "unknown"
                result.failure_kinds[kind] = (
                    result.failure_kinds.get(kind, 0) + 1
                )
        return result

    engine = StagedPipeline(
        name="evaluation",
        stages=[RecordStage("sample+simulate", _run_problem)],
        executor=executor or ParallelExecutor.from_env(default_mode="thread"),
        cache=outcome_cache,
        obs=obs,
        resilience=resilience,
        checkpoint_extra=(name, n_samples, temperature, seed,
                          n_test_vectors),
    )
    with obs.span("eval.run", suite=suite, model=name,
                  n_problems=len(problems), n_samples=n_samples) as span:
        outcome = engine.run(values=list(enumerate(problems)))
        report = EvalReport(
            suite=suite,
            model_name=name,
            results=[record.value for record in outcome.records],
            trace=outcome.trace,
        )
        span.meta["pass_at_1"] = round(report.pass_at(1), 1)
    outcome.trace.meta["model"] = name
    outcome.trace.meta["suite"] = suite
    outcome.trace.meta["n_samples"] = n_samples
    obs.counter("eval.problems").inc(len(problems))
    obs.counter("eval.samples").inc(len(problems) * n_samples)
    obs.counter("eval.passed").inc(
        sum(result.n_passed for result in report.results))
    return report
