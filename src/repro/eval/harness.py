"""The VerilogEval-style evaluation loop.

For every problem, sample *n* completions from the model at a fixed
temperature, run each against the problem's hidden functional
testbench, and estimate pass@k from the per-problem pass counts —
VerilogEval's protocol end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..corpus.spec import DesignSpec
from ..model.interfaces import FineTunable
from .functional import TestOutcome, run_functional_test
from .passk import mean_pass_at_k, pass_at_k


@dataclass
class EvalProblem:
    """One benchmark problem."""

    problem_id: str
    suite: str
    spec: DesignSpec
    description: str
    module_header: str


@dataclass
class ProblemResult:
    """Per-problem sampling outcome."""

    problem_id: str
    n_samples: int
    n_passed: int
    failure_kinds: Dict[str, int] = field(default_factory=dict)

    def pass_at(self, k: int) -> float:
        """pass@k, with k clamped to the sample count."""
        return pass_at_k(self.n_samples, self.n_passed,
                         min(k, self.n_samples))


@dataclass
class EvalReport:
    """Suite-level results."""

    suite: str
    model_name: str
    results: List[ProblemResult] = field(default_factory=list)

    def pass_at(self, k: int) -> float:
        """Mean pass@k over problems, as a percentage.

        k is clamped per problem to its sample count, so asking for
        pass@10 after a 5-sample run degrades gracefully to pass@5.
        """
        if not self.results:
            return 0.0
        return 100.0 * sum(
            result.pass_at(k) for result in self.results
        ) / len(self.results)

    def summary(self, ks: Sequence[int] = (1, 5, 10)) -> Dict[str, float]:
        return {f"pass@{k}": round(self.pass_at(k), 1) for k in ks}

    def failure_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for result in self.results:
            for kind, count in result.failure_kinds.items():
                histogram[kind] = histogram.get(kind, 0) + count
        return histogram


def evaluate_model(
    model: FineTunable,
    problems: Sequence[EvalProblem],
    n_samples: int = 10,
    temperature: float = 0.8,
    seed: int = 0,
    n_test_vectors: int = 32,
    model_name: Optional[str] = None,
) -> EvalReport:
    """Run the full sampling + functional-check loop.

    Args:
        model: any :class:`FineTunable`.
        problems: the benchmark suite.
        n_samples: completions per problem (n of the pass@k estimator).
        temperature: sampling temperature.
        seed: master seed; per-sample seeds derive deterministically.
        n_test_vectors: stimulus vectors/cycles per functional test.
    """
    suite = problems[0].suite if problems else "empty"
    name = model_name or getattr(
        getattr(model, "profile", None), "name", type(model).__name__
    )
    report = EvalReport(suite=suite, model_name=name)
    for p_index, problem in enumerate(problems):
        result = ProblemResult(
            problem_id=problem.problem_id, n_samples=n_samples, n_passed=0
        )
        # Identical completions share one functional-test run; sampling
        # repeats exemplars often, so this cuts simulation cost a lot
        # without changing any outcome.
        outcome_cache: Dict[str, TestOutcome] = {}
        for s_index in range(n_samples):
            rng = random.Random((seed, p_index, s_index).__hash__())
            code = model.generate(
                problem.description,
                temperature=temperature,
                rng=rng,
                module_header=problem.module_header,
            )
            outcome = outcome_cache.get(code)
            if outcome is None:
                outcome = run_functional_test(
                    code, problem.spec, n_vectors=n_test_vectors,
                    seed=1000,
                )
                outcome_cache[code] = outcome
            if outcome.passed:
                result.n_passed += 1
            else:
                kind = outcome.failure_kind or "unknown"
                result.failure_kinds[kind] = (
                    result.failure_kinds.get(kind, 0) + 1
                )
        report.results.append(result)
    return report
