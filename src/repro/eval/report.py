"""Table renderers for the benchmark harness.

Prints the same row/column structure the paper's tables use, so a
bench run is directly comparable against the published numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_COLUMNS = ["pass@1", "pass@5", "pass@10"]


def render_table(
    title: str,
    rows: Sequence,
    label_width: int = 52,
) -> str:
    """Render Table I/IV-shaped results.

    ``rows`` are objects with ``label`` and ``cells()`` (six floats:
    Machine pass@{1,5,10} then Human pass@{1,5,10}).
    """
    header_1 = (
        f"{'Model':<{label_width}} | {'Verilog-Machine':^23} | "
        f"{'Verilog-Human':^23}"
    )
    header_2 = (
        f"{'':<{label_width}} | "
        + " ".join(f"{c:>7}" for c in _COLUMNS) + " | "
        + " ".join(f"{c:>7}" for c in _COLUMNS)
    )
    rule = "-" * len(header_2)
    lines = [title, rule, header_1, header_2, rule]
    for row in rows:
        cells = row.cells()
        machine = " ".join(f"{value:7.1f}" for value in cells[:3])
        human = " ".join(f"{value:7.1f}" for value in cells[3:])
        lines.append(f"{row.label:<{label_width}} | {machine} | {human}")
    lines.append(rule)
    return "\n".join(lines)


def render_gains_table(
    title: str,
    entries: Sequence,  # (label, vs_label, deltas[6])
    label_width: int = 40,
) -> str:
    """Render Table III-shaped gains."""
    header = (
        f"{'Model':<{label_width}} {'vs':<24} "
        + " ".join(f"{c:>7}" for c in _COLUMNS) + "  | "
        + " ".join(f"{c:>7}" for c in _COLUMNS)
    )
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for label, vs_label, deltas in entries:
        machine = " ".join(f"{value:+7.1f}" for value in deltas[:3])
        human = " ".join(f"{value:+7.1f}" for value in deltas[3:])
        lines.append(
            f"{label:<{label_width}} {vs_label:<24} {machine}  | {human}"
        )
    lines.append(rule)
    return "\n".join(lines)


def render_pyramid(title: str, sizes: Dict[int, int]) -> str:
    """Render the Fig. 1-a layer pyramid as ASCII art."""
    total = max(sum(sizes.values()), 1)
    biggest = max(sizes.values()) if sizes else 1
    lines = [title, "-" * 64]
    for layer in range(1, 7):
        size = sizes.get(layer, 0)
        bar = "#" * max(1, round(40 * size / biggest)) if size else ""
        share = 100.0 * size / total
        lines.append(f"Layer {layer}: {size:>8}  ({share:5.1f}%)  {bar}")
    lines.append("-" * 64)
    return "\n".join(lines)
