"""Functional equivalence checking against golden models.

VerilogEval judges a completion *functionally*: the candidate module is
simulated against the problem's hidden testbench.  Here the testbench
is generated from the problem's :class:`~repro.corpus.spec.DesignSpec`:
random (seeded) stimulus is driven into the candidate via
:class:`~repro.verilog.Simulator`, and every output is compared with
the golden Python model after each vector/cycle.

Failure taxonomy mirrors what an EDA flow reports: parse errors,
elaboration errors, interface mismatches (missing/mis-sized ports),
runtime errors (combinational loops, unsupported constructs), X-valued
outputs, and plain mismatches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..corpus.spec import DesignSpec, PortDef
from ..obs.reportable import report_json, strip_schema
from ..verilog import (
    ElaborationError,
    ParseError,
    SimulationError,
    Simulator,
    StopSimulation,
)
from ..verilog.parser import parse
from ..verilog.preprocessor import PreprocessorError
from ..verilog.sim.eval import EvalError
from ..verilog.sim.values import Vec4


@dataclass
class Mismatch:
    """One observed output disagreement."""

    vector_index: int
    output: str
    expected: int
    actual: str
    inputs: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vector_index": self.vector_index,
            "output": self.output,
            "expected": self.expected,
            "actual": self.actual,
            "inputs": dict(self.inputs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Mismatch":
        return cls(
            vector_index=data["vector_index"],
            output=data["output"],
            expected=data["expected"],
            actual=data["actual"],
            inputs=dict(data.get("inputs", {})),
        )


@dataclass
class TestOutcome:
    """Result of one functional test run (:class:`~repro.obs.Reportable`)."""

    schema = "pyranet/test-outcome/v1"

    passed: bool
    failure_kind: Optional[str] = None
    detail: str = ""
    vectors_run: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "failure_kind": self.failure_kind,
            "detail": self.detail,
            "vectors_run": self.vectors_run,
            "mismatches": [m.to_dict() for m in self.mismatches],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TestOutcome":
        data = strip_schema(data)
        return cls(
            passed=data["passed"],
            failure_kind=data.get("failure_kind"),
            detail=data.get("detail", ""),
            vectors_run=data.get("vectors_run", 0),
            mismatches=[Mismatch.from_dict(item)
                        for item in data.get("mismatches", [])],
        )


def _find_candidate_module(source: str, spec: DesignSpec) -> Optional[str]:
    """Pick the module in ``source`` to test.

    Preference order: exact name match with the spec, then any module
    whose port names cover the spec's ports, then the last module.
    """
    from ..verilog.preprocessor import PreprocessorError, preprocess

    try:
        if "`" in source:
            source = preprocess(source).text
        tree = parse(source)
    except (ParseError, PreprocessorError):
        return None
    if not tree.modules:
        return None
    wanted = {p.name for p in spec.inputs} | {p.name for p in spec.outputs}
    for module in tree.modules:
        if module.name == spec.module_name:
            return module.name
    for module in tree.modules:
        if wanted.issubset(set(module.port_names())):
            return module.name
    return tree.modules[-1].name


def _check_interface(sim: Simulator, spec: DesignSpec) -> Optional[str]:
    """Return an error string when the candidate's ports do not match."""
    for port in spec.inputs:
        if port.name not in sim.design.signals:
            return f"missing input port {port.name!r}"
        width = sim.design.signals[port.name].width
        if width != port.width:
            return (
                f"input {port.name!r} is {width} bits, expected "
                f"{port.width}"
            )
    for port in spec.outputs:
        if port.name not in sim.design.signals:
            return f"missing output port {port.name!r}"
        width = sim.design.signals[port.name].width
        if width != port.width:
            return (
                f"output {port.name!r} is {width} bits, expected "
                f"{port.width}"
            )
    return None


def _random_inputs(
    spec: DesignSpec, rng: random.Random
) -> Dict[str, int]:
    values: Dict[str, int] = {}
    for port in spec.inputs:
        if port.role != "data":
            continue
        if port.width == 1:
            values[port.name] = rng.randint(0, 1)
        else:
            # Mix extremes and uniform values for better coverage.
            choice = rng.random()
            if choice < 0.1:
                values[port.name] = 0
            elif choice < 0.2:
                values[port.name] = port.mask
            else:
                values[port.name] = rng.randint(0, port.mask)
    return values


def _compare_outputs(
    sim: Simulator,
    spec: DesignSpec,
    expected: Dict[str, int],
    inputs: Dict[str, int],
    index: int,
    outcome: TestOutcome,
) -> bool:
    """Compare every expected output; record mismatches.  Returns
    True when all match."""
    ok = True
    for name, want in expected.items():
        if want is None:
            continue  # golden marks this output as don't-care
        port = spec.find_output(name)
        if port is None:
            continue
        actual = sim.peek(name)
        actual_int = actual.to_int_or_none()
        if actual_int is None or actual_int != (want & port.mask):
            ok = False
            outcome.mismatches.append(Mismatch(
                vector_index=index, output=name,
                expected=want & port.mask,
                actual=actual.to_bit_string(), inputs=dict(inputs),
            ))
    return ok


def run_functional_test(
    source: str,
    spec: DesignSpec,
    n_vectors: int = 48,
    seed: int = 1234,
    max_mismatches: int = 4,
) -> TestOutcome:
    """Simulate ``source`` against ``spec``'s golden model.

    Args:
        source: candidate Verilog text (any number of modules).
        spec: interface + golden behaviour to check against.
        n_vectors: number of random vectors (comb) or cycles (seq).
        seed: stimulus RNG seed — fixed so results are reproducible.
        max_mismatches: stop after this many disagreements.

    Returns:
        A :class:`TestOutcome`.
    """
    outcome = TestOutcome(passed=False)
    golden = spec.golden
    if golden is None:
        outcome.failure_kind = "no-golden"
        outcome.detail = "spec has no golden model"
        return outcome
    top = _find_candidate_module(source, spec)
    if top is None:
        outcome.failure_kind = "parse"
        outcome.detail = "candidate source does not parse"
        return outcome
    try:
        sim = Simulator(source, top=top)
    except ParseError as exc:
        outcome.failure_kind = "parse"
        outcome.detail = str(exc)
        return outcome
    except PreprocessorError as exc:
        outcome.failure_kind = "parse"
        outcome.detail = str(exc)
        return outcome
    except (ElaborationError, SimulationError, EvalError) as exc:
        outcome.failure_kind = "elaborate"
        outcome.detail = str(exc)
        return outcome
    interface_error = _check_interface(sim, spec)
    if interface_error:
        outcome.failure_kind = "interface"
        outcome.detail = interface_error
        return outcome
    rng = random.Random(seed)
    try:
        if golden.is_sequential:
            _run_sequential(sim, spec, rng, n_vectors, max_mismatches,
                            outcome)
        else:
            _run_combinational(sim, spec, rng, n_vectors, max_mismatches,
                               outcome)
    except (SimulationError, StopSimulation, EvalError) as exc:
        outcome.failure_kind = "runtime"
        outcome.detail = str(exc)
        return outcome
    except (ValueError, KeyError) as exc:
        outcome.failure_kind = "runtime"
        outcome.detail = f"{type(exc).__name__}: {exc}"
        return outcome
    if outcome.mismatches:
        outcome.failure_kind = "mismatch"
        first = outcome.mismatches[0]
        outcome.detail = (
            f"output {first.output!r}: expected {first.expected}, got "
            f"{first.actual} (vector {first.vector_index})"
        )
        return outcome
    outcome.passed = True
    return outcome


def _run_combinational(
    sim: Simulator,
    spec: DesignSpec,
    rng: random.Random,
    n_vectors: int,
    max_mismatches: int,
    outcome: TestOutcome,
) -> None:
    for index in range(n_vectors):
        inputs = _random_inputs(spec, rng)
        for name, value in inputs.items():
            sim.poke(name, value)
        expected = spec.golden.comb(dict(inputs))
        outcome.vectors_run += 1
        _compare_outputs(sim, spec, expected, inputs, index, outcome)
        if len(outcome.mismatches) >= max_mismatches:
            return


def _run_sequential(
    sim: Simulator,
    spec: DesignSpec,
    rng: random.Random,
    n_cycles: int,
    max_mismatches: int,
    outcome: TestOutcome,
) -> None:
    clock = spec.clock_name or "clk"
    reset = spec.reset_name
    active = 0 if spec.reset_active_low else 1
    sim.poke(clock, 0)
    # Reset sequence: hold reset active across two rising edges so both
    # synchronous and asynchronous candidate implementations settle.
    if reset is not None:
        for port in spec.inputs:
            if port.role == "data":
                sim.poke(port.name, 0)
        sim.poke(reset, active)
        sim.clock(clock, 2)
        sim.poke(reset, 1 - active)
    state = spec.golden.reset()
    for index in range(n_cycles):
        inputs = _random_inputs(spec, rng)
        for name, value in inputs.items():
            sim.poke(name, value)
        sim.clock(clock, 1)
        state, expected = spec.golden.step(state, dict(inputs))
        outcome.vectors_run += 1
        _compare_outputs(sim, spec, expected, inputs, index, outcome)
        if len(outcome.mismatches) >= max_mismatches:
            return
