"""The ``pass@k(repair_budget=r)`` evaluation scenario.

OriGen's argument: a completion that fails its testbench is not dead —
it deserves feedback-driven retries.  This module reruns the classic
VerilogEval protocol (:mod:`repro.eval.harness`, same seed derivation,
same outcome cache, same functional testbench) and then hands every
failed sample to the :mod:`repro.repairloop` with a budget of ``r``
iterations, tracking *at which iteration* each sample first passes.

The result is a :class:`RepairEvalReport` whose per-problem records
carry the cumulative pass count after 0..r repair iterations — so
``pass@k(repair_budget=r)`` is monotone non-decreasing in ``r`` by
construction, and the ``r=0`` column is byte-identical to
:func:`~repro.eval.harness.evaluate_model`'s results.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..model.interfaces import FineTunable
from ..obs import Observability, resolve
from ..obs.reportable import report_json, strip_schema
from ..pipeline import (
    ParallelExecutor,
    PipelineTrace,
    RecordStage,
    ResultCache,
    StagedPipeline,
)
from ..repairloop import ModelRepairer, Repairer, RepairLoop
from ..resilience.runtime import Resilience
from .config import EvalConfig
from .functional import run_functional_test
from .harness import EvalProblem, ProblemResult, resolve_config, sample_seed
from .passk import pass_at_k


@dataclass
class RepairProblemResult:
    """Per-problem outcome with its repair curve.

    ``passed_at`` holds the cumulative pass count after 0..budget
    repair iterations — ``passed_at[0]`` is the classic single-shot
    count, ``passed_at[r]`` counts samples that passed within ``r``
    repair iterations.  The list is non-decreasing by construction.
    """

    problem_id: str
    n_samples: int
    passed_at: List[int] = field(default_factory=list)
    failure_kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def n_passed(self) -> int:
        """Single-shot pass count (the classic protocol's number)."""
        return self.passed_at[0] if self.passed_at else 0

    @property
    def n_repaired(self) -> int:
        """Samples rescued by the repair loop."""
        if not self.passed_at:
            return 0
        return self.passed_at[-1] - self.passed_at[0]

    def base_result(self) -> ProblemResult:
        """The classic :class:`ProblemResult` this record extends —
        byte-identical to what ``evaluate_model`` reports."""
        return ProblemResult(
            problem_id=self.problem_id, n_samples=self.n_samples,
            n_passed=self.n_passed,
            failure_kinds=dict(self.failure_kinds))

    def pass_at(self, k: int, budget: Optional[int] = None) -> float:
        """pass@k after ``budget`` repair iterations (default: all)."""
        if not self.passed_at:
            return 0.0
        index = len(self.passed_at) - 1 if budget is None \
            else min(budget, len(self.passed_at) - 1)
        return pass_at_k(self.n_samples, self.passed_at[index],
                         min(k, self.n_samples))

    def to_dict(self) -> Dict:
        return {
            "problem_id": self.problem_id,
            "n_samples": self.n_samples,
            "passed_at": list(self.passed_at),
            "failure_kinds": dict(self.failure_kinds),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RepairProblemResult":
        return cls(
            problem_id=data["problem_id"],
            n_samples=data["n_samples"],
            passed_at=list(data.get("passed_at", [])),
            failure_kinds=dict(data.get("failure_kinds", {})),
        )


@dataclass
class RepairEvalReport:
    """Suite-level repair-budget results
    (:class:`~repro.obs.Reportable`)."""

    schema = "pyranet/repair-eval-report/v1"

    suite: str
    model_name: str
    repair_budget: int
    config: Dict = field(default_factory=dict)
    results: List[RepairProblemResult] = field(default_factory=list)
    trace: Optional[PipelineTrace] = None

    def pass_at(self, k: int, budget: Optional[int] = None) -> float:
        """Mean pass@k over problems after ``budget`` repair
        iterations, as a percentage."""
        if not self.results:
            return 0.0
        return 100.0 * sum(
            result.pass_at(k, budget) for result in self.results
        ) / len(self.results)

    def summary(self, ks: Sequence[int] = (1, 5, 10),
                budget: Optional[int] = None) -> Dict[str, float]:
        return {f"pass@{k}": round(self.pass_at(k, budget), 1)
                for k in ks}

    def fix_rate_curve(self) -> List[float]:
        """Fraction of initially-failed samples fixed within 0..r
        iterations (index r of the returned list)."""
        length = self.repair_budget + 1
        failed = sum(result.n_samples - result.n_passed
                     for result in self.results)
        curve: List[float] = []
        for index in range(length):
            fixed = sum(
                (result.passed_at[min(index, len(result.passed_at) - 1)]
                 - result.n_passed)
                for result in self.results if result.passed_at)
            curve.append(fixed / failed if failed else 0.0)
        return curve

    def base_results(self) -> List[ProblemResult]:
        """The classic single-shot results (the ``r=0`` column)."""
        return [result.base_result() for result in self.results]

    def to_dict(self) -> Dict:
        return {
            "suite": self.suite,
            "model_name": self.model_name,
            "repair_budget": self.repair_budget,
            "config": dict(self.config),
            "results": [result.to_dict() for result in self.results],
            "trace": self.trace.to_dict() if self.trace else None,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict) -> "RepairEvalReport":
        data = strip_schema(data)
        trace = data.get("trace")
        return cls(
            suite=data["suite"],
            model_name=data["model_name"],
            repair_budget=data.get("repair_budget", 0),
            config=dict(data.get("config", {})),
            results=[RepairProblemResult.from_dict(item)
                     for item in data.get("results", [])],
            trace=PipelineTrace.from_dict(trace) if trace else None,
        )

    @classmethod
    def from_json(cls, text: str) -> "RepairEvalReport":
        return cls.from_dict(json.loads(text))


def evaluate_with_repair(
    model: FineTunable,
    problems: Iterable[EvalProblem],
    config: Optional[EvalConfig] = None,
    repairer: Optional[Repairer] = None,
    *,
    executor: Optional[ParallelExecutor] = None,
    cache: Optional[ResultCache] = None,
    obs: Optional[Observability] = None,
    resilience: Optional[Resilience] = None,
    **legacy,
) -> RepairEvalReport:
    """The sampling + functional-check loop with repair retries.

    Sampling, seeding, and the first functional check are *identical*
    to :func:`~repro.eval.harness.evaluate_model` — same
    :func:`~repro.eval.harness.sample_seed` derivation, same outcome
    cache namespace, same stimulus seed — so ``passed_at[0]`` (and
    everything derived from it) matches the classic report bit for
    bit.  Failed samples then run through a
    :class:`~repro.repairloop.RepairLoop` with
    ``config.repair_budget`` iterations; each pass is credited to the
    iteration that produced it.

    Args:
        model: any :class:`FineTunable`.
        problems: the benchmark suite.
        config: the :class:`EvalConfig`; ``repair_budget`` is the new
            axis (0 = classic protocol, no loop constructed).
        repairer: the fix proposer; defaults to
            :class:`~repro.repairloop.ModelRepairer` around ``model``
            (rule-based syntax fixes, feedback-augmented regeneration
            for everything else).
        executor / cache / obs / resilience: as in ``evaluate_model``.
    """
    config = resolve_config(config, legacy, caller="evaluate_with_repair")
    budget = config.repair_budget
    problems = list(problems)
    obs = resolve(obs)
    suite = problems[0].suite if problems else "empty"
    name = config.model_name or getattr(
        getattr(model, "profile", None), "name", type(model).__name__
    )
    outcome_cache = cache if cache is not None else ResultCache()
    fixer = repairer if repairer is not None else ModelRepairer(model)

    def _run_problem(indexed) -> RepairProblemResult:
        p_index, problem = indexed
        result = RepairProblemResult(
            problem_id=problem.problem_id, n_samples=config.n_samples,
            passed_at=[0] * (budget + 1))
        namespace = (
            f"functional/{problem.problem_id}/{config.n_test_vectors}")
        for s_index in range(config.n_samples):
            rng = random.Random(sample_seed(config.seed, p_index,
                                            s_index))
            code = model.generate(
                problem.description,
                temperature=config.temperature,
                rng=rng,
                module_header=problem.module_header,
            )
            outcome = outcome_cache.get_or_compute(
                namespace, code,
                lambda: run_functional_test(
                    code, problem.spec,
                    n_vectors=config.n_test_vectors, seed=1000,
                ),
            )
            if outcome.passed:
                for index in range(budget + 1):
                    result.passed_at[index] += 1
                continue
            kind = outcome.failure_kind or "unknown"
            result.failure_kinds[kind] = (
                result.failure_kinds.get(kind, 0) + 1)
            if budget == 0:
                continue
            loop = RepairLoop(
                budget=budget, n_test_vectors=config.n_test_vectors,
                seed=config.seed, repairer=fixer,
                temperature=config.temperature, obs=obs)
            transcript = loop.run(
                code, spec=problem.spec,
                candidate_id=f"{problem.problem_id}/{s_index}",
                description=problem.description,
                module_header=problem.module_header)
            if transcript.fixed and transcript.fixed_at:
                for index in range(transcript.fixed_at, budget + 1):
                    result.passed_at[index] += 1
        return result

    engine = StagedPipeline(
        name="repair-evaluation",
        stages=[RecordStage("sample+simulate+repair", _run_problem)],
        executor=executor or ParallelExecutor.from_env(
            default_mode="thread"),
        cache=outcome_cache,
        obs=obs,
        resilience=resilience,
        checkpoint_extra=(name, config.n_samples, config.temperature,
                          config.seed, config.n_test_vectors, budget),
    )
    with obs.span("eval.repair_run", suite=suite, model=name,
                  n_problems=len(problems),
                  n_samples=config.n_samples,
                  repair_budget=budget) as span:
        outcome = engine.run(values=list(enumerate(problems)))
        report = RepairEvalReport(
            suite=suite,
            model_name=name,
            repair_budget=budget,
            config=config.to_dict(),
            results=[record.value for record in outcome.records],
            trace=outcome.trace,
        )
        span.meta["pass_at_1"] = round(report.pass_at(1, 0), 1)
        span.meta["pass_at_1_repaired"] = round(report.pass_at(1), 1)
    outcome.trace.meta["model"] = name
    outcome.trace.meta["suite"] = suite
    outcome.trace.meta["repair_budget"] = budget
    obs.counter("eval.repair.problems").inc(len(problems))
    obs.counter("eval.repair.rescued").inc(
        sum(result.n_repaired for result in report.results))
    return report
