"""The unbiased pass@k estimator.

pass@k is estimated per problem from n samples with c functionally
correct, using the combinatorial estimator of Chen et al. (2021),
the standard VerilogEval metric::

    pass@k = 1 - C(n - c, k) / C(n, k)

and averaged across problems.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased pass@k for one problem.

    Args:
        n: samples drawn.
        c: samples that passed.
        k: the k of pass@k (requires ``k <= n``).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= c <= n:
        raise ValueError(f"c={c} out of range for n={n}")
    if k <= 0:
        raise ValueError("k must be positive")
    if k > n:
        raise ValueError(f"k={k} exceeds n={n}")
    if c == 0:
        return 0.0
    if n - c < k:
        return 1.0
    # 1 - prod_{i=n-c+1..n} (1 - k / i), the stable product form.
    result = 1.0
    for i in range(n - c + 1, n + 1):
        result *= 1.0 - k / i
    return 1.0 - result


def mean_pass_at_k(
    outcomes: Sequence[Tuple[int, int]], k: int
) -> float:
    """Average pass@k over per-problem (n, c) outcomes."""
    if not outcomes:
        return 0.0
    return sum(pass_at_k(n, c, k) for n, c in outcomes) / len(outcomes)
