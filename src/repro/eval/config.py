"""The one configuration object the evaluation loop runs from.

:func:`~repro.eval.harness.evaluate_model` grew a kwarg per release —
sampling knobs, seeds, executor/cache/obs/resilience handles — until
every caller threaded a different subset.  :class:`EvalConfig` freezes
the *declarative* part of that surface into one schema-versioned,
JSON-able record (what a service job payload, a benchmark manifest, or
a report header can carry verbatim), while the *runtime* handles that
cannot serialize — executor, cache, observability, resilience — stay
explicit keyword arguments on the entry points.

``repair_budget`` is the new axis: the number of feedback-driven repair
iterations each failed sample may consume
(:mod:`repro.repairloop`); ``0`` reproduces the classic
single-shot protocol byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..obs.reportable import report_json, strip_schema

#: pass@k columns reports default to (VerilogEval's protocol).
DEFAULT_KS: Tuple[int, ...] = (1, 5, 10)


@dataclass(frozen=True)
class EvalConfig:
    """Declarative evaluation parameters (:class:`~repro.obs.Reportable`).

    Attributes:
        n_samples: completions per problem (n of the pass@k estimator).
        temperature: sampling temperature.
        seed: master seed; per-sample seeds derive via
            :func:`~repro.eval.harness.sample_seed`.
        n_test_vectors: stimulus vectors/cycles per functional test.
        ks: the pass@k columns summaries report.
        repair_budget: feedback-driven repair iterations per failed
            sample (0 = classic single-shot evaluation).
        model_name: report label override; ``None`` derives it from the
            model's profile.
    """

    n_samples: int = 10
    temperature: float = 0.8
    seed: int = 0
    n_test_vectors: int = 32
    ks: Tuple[int, ...] = DEFAULT_KS
    repair_budget: int = 0
    model_name: Optional[str] = None

    schema = "pyranet/eval-config/v1"

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        if self.n_test_vectors < 1:
            raise ValueError("n_test_vectors must be at least 1")
        if self.repair_budget < 0:
            raise ValueError("repair_budget must be >= 0")
        # Tolerate list input (JSON round-trips tuples as lists).
        object.__setattr__(self, "ks", tuple(self.ks))

    def with_overrides(self, **changes: Any) -> "EvalConfig":
        """A copy with ``changes`` applied (frozen-safe)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_samples": self.n_samples,
            "temperature": self.temperature,
            "seed": self.seed,
            "n_test_vectors": self.n_test_vectors,
            "ks": list(self.ks),
            "repair_budget": self.repair_budget,
            "model_name": self.model_name,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EvalConfig":
        data = strip_schema(data)
        known = {
            "n_samples", "temperature", "seed", "n_test_vectors",
            "ks", "repair_budget", "model_name",
        }
        return cls(**{key: value for key, value in data.items()
                      if key in known})

    @classmethod
    def from_json(cls, text: str) -> "EvalConfig":
        return cls.from_dict(json.loads(text))
