"""Evaluation: functional testing, pass@k, problem suites, reports."""

from .config import DEFAULT_KS, EvalConfig
from .functional import Mismatch, TestOutcome, run_functional_test
from .passk import mean_pass_at_k, pass_at_k
from .harness import (
    EvalProblem,
    EvalReport,
    ProblemResult,
    evaluate_model,
    resolve_config,
    sample_seed,
)
from .repair_eval import (
    RepairEvalReport,
    RepairProblemResult,
    evaluate_with_repair,
)
from .report import render_gains_table, render_pyramid, render_table

__all__ = [
    "DEFAULT_KS", "EvalConfig",
    "Mismatch", "TestOutcome", "run_functional_test",
    "mean_pass_at_k", "pass_at_k",
    "EvalProblem", "EvalReport", "ProblemResult", "evaluate_model",
    "resolve_config", "sample_seed",
    "RepairEvalReport", "RepairProblemResult", "evaluate_with_repair",
    "render_table", "render_gains_table", "render_pyramid",
]
