"""Evaluation: functional testing, pass@k, problem suites, reports."""

from .functional import Mismatch, TestOutcome, run_functional_test
from .passk import mean_pass_at_k, pass_at_k
from .harness import (
    EvalProblem,
    EvalReport,
    ProblemResult,
    evaluate_model,
    sample_seed,
)
from .report import render_gains_table, render_pyramid, render_table

__all__ = [
    "Mismatch", "TestOutcome", "run_functional_test",
    "mean_pass_at_k", "pass_at_k",
    "EvalProblem", "EvalReport", "ProblemResult", "evaluate_model",
    "sample_seed",
    "render_table", "render_gains_table", "render_pyramid",
]
