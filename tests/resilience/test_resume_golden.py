"""Golden-equivalence drills: kill, resume, and fault-absorption runs
must produce byte-identical datasets and drop histograms.

These are the acceptance tests for the resilience subsystem — marked
``faults`` so CI can run them as a dedicated smoke job
(``pytest -m faults``).
"""

import json

import pytest

from repro.corpus.github_sim import GitHubScrapeSimulator
from repro.dataset.pipeline import CurationPipeline
from repro.eval.config import EvalConfig
from repro.eval.harness import evaluate_model
from repro.eval.problems.machine import build_machine_problems
from repro.model.interfaces import FineTunable, TrainStats
from repro.obs import Observability
from repro.pipeline import ParallelExecutor
from repro.resilience import (
    Checkpointer,
    FaultPlan,
    FaultRule,
    Resilience,
    RetryPolicy,
    SimulatedCrash,
)

pytestmark = pytest.mark.faults

SEED = 3
N_FILES = 60


def make_inputs():
    return GitHubScrapeSimulator(seed=SEED).scrape(N_FILES)


def run_curation(resilience=None, obs=None):
    pipeline = CurationPipeline(
        seed=SEED,
        executor=ParallelExecutor.serial(),
        obs=obs,
        resilience=resilience,
    )
    return pipeline.run(make_inputs())


def dataset_bytes(dataset) -> bytes:
    """The run's output as one canonical byte string."""
    return "\n".join(
        json.dumps(entry.to_dict(), sort_keys=True)
        for entry in dataset
    ).encode("utf-8")


def drop_histograms(result):
    """stage name -> drop-reason histogram, across the whole trace."""
    return {stage.name: dict(stage.drops)
            for stage in result.report.trace.stages}


@pytest.fixture(scope="module")
def golden():
    """One uninterrupted reference run."""
    result = run_curation()
    return dataset_bytes(result.dataset), drop_histograms(result)


class TestKillAndResume:
    @pytest.mark.parametrize("crash_ordinal", [3, 10, 17])
    def test_resumed_run_is_byte_identical(self, tmp_path, golden,
                                           crash_ordinal):
        golden_bytes, golden_drops = golden
        journal = tmp_path / "journal"

        # 1. The run dies at an exact record boundary: SimulatedCrash
        #    is a BaseException, so nothing absorbs it.
        plan = FaultPlan([FaultRule(site="stage.syntax_check",
                                    kind="crash",
                                    ordinals=(crash_ordinal,))])
        doomed = Resilience(
            checkpointer=Checkpointer(journal, interval=4),
            fault_plan=plan,
        )
        with pytest.raises(SimulatedCrash):
            run_curation(resilience=doomed)

        # 2. A fresh process resumes from the journal alone.
        revived = Resilience(checkpointer=Checkpointer(journal, interval=4))
        result = run_curation(resilience=revived)

        assert dataset_bytes(result.dataset) == golden_bytes
        assert drop_histograms(result) == golden_drops
        summary = revived.summary()
        assert summary["resumed_stages"] + summary["resumed_batches"] > 0

    def test_finished_journal_reruns_from_scratch(self, tmp_path, golden):
        golden_bytes, _ = golden
        journal = tmp_path / "journal"
        first = Resilience(checkpointer=Checkpointer(journal, interval=4))
        run_curation(resilience=first)

        again = Resilience(checkpointer=Checkpointer(journal, interval=4))
        result = run_curation(resilience=again)
        assert dataset_bytes(result.dataset) == golden_bytes
        assert again.summary()["resumed_stages"] == 0


class TestTransientAbsorption:
    def test_faults_absorbed_with_identical_output(self, golden):
        golden_bytes, golden_drops = golden
        plan = FaultPlan([FaultRule(site="stage.rank_label",
                                    ordinals=(0, 5, 9))])
        obs = Observability()
        res = Resilience(
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
            fault_plan=plan,
            obs=obs,
        )
        result = run_curation(resilience=res, obs=obs)

        assert dataset_bytes(result.dataset) == golden_bytes
        assert drop_histograms(result) == golden_drops
        assert res.total_retries == 3
        assert res.total_quarantined == 0
        # The retries are visible in the observability layer too.
        assert obs.registry.counter("resilience.retries").value == 3

    def test_persistent_fault_quarantines_not_crashes(self, golden):
        golden_bytes, _ = golden
        # Ordinals 0..9 all fault: retries exhaust and the record is
        # quarantined to the dead-letter report, not raised.
        plan = FaultPlan([FaultRule(site="stage.rank_label",
                                    ordinals=tuple(range(10)))])
        res = Resilience(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            fault_plan=plan,
        )
        result = run_curation(resilience=res)

        assert res.total_quarantined > 0
        assert len(res.dead_letter) == res.total_quarantined
        assert dataset_bytes(result.dataset) != golden_bytes  # rows lost
        drops = drop_histograms(result)["rank_label"]
        assert any(reason.startswith("quarantined:")
                   for reason in drops)


class _JunkModel(FineTunable):
    def train_batch(self, examples, loss_weight):
        return TrainStats()

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None):
        return f"junk {rng.random() if rng else 0}"


class TestEvalResume:
    def test_killed_eval_resumes_identically(self, tmp_path):
        problems = build_machine_problems()[:4]
        model = _JunkModel()
        config = EvalConfig(n_samples=3, seed=11, n_test_vectors=8)
        kwargs = dict(executor=ParallelExecutor.serial())

        golden = evaluate_model(model, problems, config, **kwargs)

        journal = tmp_path / "journal"
        plan = FaultPlan([FaultRule(site="stage.sample+simulate",
                                    kind="crash", ordinals=(2,))])
        doomed = Resilience(checkpointer=Checkpointer(journal, interval=1),
                            fault_plan=plan)
        with pytest.raises(SimulatedCrash):
            evaluate_model(model, problems, config, resilience=doomed,
                           **kwargs)

        revived = Resilience(checkpointer=Checkpointer(journal, interval=1))
        resumed = evaluate_model(model, problems, config,
                                 resilience=revived, **kwargs)

        golden_rows = [r.to_dict() for r in golden.results]
        resumed_rows = [r.to_dict() for r in resumed.results]
        assert resumed_rows == golden_rows
        assert revived.summary()["resumed_batches"] > 0
