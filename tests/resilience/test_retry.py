"""RetryPolicy and CircuitBreaker unit tests."""

import pytest

from repro.resilience import (
    BreakerConfig,
    CircuitBreaker,
    DeadlineExceeded,
    NO_RETRY,
    NullBreaker,
    RetryPolicy,
)
from repro.resilience.retry import CLOSED, HALF_OPEN, OPEN


def _sleepless():
    """Collects requested delays instead of sleeping."""
    delays = []
    return delays, delays.append


class TestRetryPolicy:
    def test_succeeds_first_try(self):
        policy = RetryPolicy(max_attempts=3)
        result, attempts = policy.run(lambda: 42, site="s",
                                      sleep=lambda _: None)
        assert (result, attempts) == (42, 1)

    def test_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        delays, sleep = _sleepless()
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01, jitter=0.0)
        result, attempts = policy.run(flaky, site="s", sleep=sleep)
        assert (result, attempts) == ("ok", 3)
        assert len(delays) == 2

    def test_exhaustion_reraises_last_exception(self):
        def always():
            raise ValueError("boom")

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        with pytest.raises(ValueError, match="boom"):
            policy.run(always, site="s", sleep=lambda _: None)

    def test_give_up_on_wins_over_retry_on(self):
        policy = RetryPolicy(max_attempts=5, retry_on=(Exception,),
                             give_up_on=(KeyError,))
        assert policy.classify(KeyError("k")) == "fatal"
        assert policy.classify(RuntimeError("r")) == "retry"
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise KeyError("k")

        with pytest.raises(KeyError):
            policy.run(fatal, site="s", sleep=lambda _: None)
        assert calls["n"] == 1  # no retries for a fatal class

    def test_non_retryable_class_is_fatal(self):
        policy = RetryPolicy(retry_on=(OSError,))
        assert policy.classify(ValueError("v")) == "fatal"

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=0.3, jitter=0.0)
        assert policy.delay_s("s", 1) == pytest.approx(0.1)
        assert policy.delay_s("s", 2) == pytest.approx(0.2)
        assert policy.delay_s("s", 3) == pytest.approx(0.3)  # capped
        assert policy.delay_s("s", 9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_per_seed_and_site(self):
        a = RetryPolicy(base_delay_s=1.0, jitter=0.5, seed=1)
        b = RetryPolicy(base_delay_s=1.0, jitter=0.5, seed=1)
        c = RetryPolicy(base_delay_s=1.0, jitter=0.5, seed=2)
        assert a.delay_s("site", 1) == b.delay_s("site", 1)
        assert a.delay_s("site", 1) != c.delay_s("site", 1)
        assert a.delay_s("site", 1) != a.delay_s("other", 1)
        # Jitter only ever shortens the nominal delay.
        assert 0.5 <= a.delay_s("site", 1) <= 1.0

    def test_deadline_exceeded(self):
        # A zero deadline dooms every attempt: the result returned after
        # the cut-off is discarded as DeadlineExceeded and retried.
        calls = {"n": 0}

        def slow():
            calls["n"] += 1
            return "late"

        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                             deadline_s=0.0)
        with pytest.raises(DeadlineExceeded):
            policy.run(slow, site="s", sleep=lambda _: None)
        assert calls["n"] == 2

    def test_with_override(self):
        policy = RetryPolicy(max_attempts=3)
        bumped = policy.with_(max_attempts=7)
        assert bumped.max_attempts == 7
        assert policy.max_attempts == 3  # frozen original untouched

    def test_no_retry_constant(self):
        calls = {"n": 0}

        def once():
            calls["n"] += 1
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            NO_RETRY.run(once, site="s", sleep=lambda _: None)
        assert calls["n"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker("s", BreakerConfig())
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_at_threshold(self):
        trips = []
        breaker = CircuitBreaker(
            "s", BreakerConfig(trip_threshold=3, cooldown_attempts=2),
            on_trip=lambda b: trips.append(b.site))
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert trips == ["s"]
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker("s", BreakerConfig(trip_threshold=3))
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_measured_in_attempts(self):
        config = BreakerConfig(trip_threshold=1, cooldown_attempts=3)
        breaker = CircuitBreaker("s", config)
        breaker.record_failure()
        assert breaker.state == OPEN
        # Rejected attempts count toward the cooldown; the attempt that
        # crosses it probes in half-open.
        rejected = 0
        while not breaker.allow():
            rejected += 1
            assert rejected <= 10
        assert breaker.state == HALF_OPEN

    def test_half_open_success_closes(self):
        config = BreakerConfig(trip_threshold=1, cooldown_attempts=1,
                               half_open_successes=1)
        breaker = CircuitBreaker("s", config)
        breaker.record_failure()
        while not breaker.allow():
            pass
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_retrips(self):
        config = BreakerConfig(trip_threshold=1, cooldown_attempts=1)
        breaker = CircuitBreaker("s", config)
        breaker.record_failure()
        while not breaker.allow():
            pass
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_snapshot(self):
        breaker = CircuitBreaker("site-x", BreakerConfig(trip_threshold=2))
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["site"] == "site-x"
        assert snap["state"] == CLOSED
        assert snap["consecutive_failures"] == 1

    def test_null_breaker_never_trips(self):
        breaker = NullBreaker("s")
        for _ in range(100):
            breaker.record_failure()
        assert breaker.allow()
        assert breaker.state == CLOSED

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(trip_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_attempts=0)
