"""Checkpointer journal tests: atomicity, resume, signature binding."""

import pytest

from repro.resilience import CheckpointError, Checkpointer, run_signature


class TestRunSignature:
    def test_stable_for_identical_runs(self):
        a = run_signature([1, 2, 3], ["s1", "s2"], extra=(7,))
        b = run_signature([1, 2, 3], ["s1", "s2"], extra=(7,))
        assert a == b
        assert len(a) == 32  # blake2b-16 hex

    def test_sensitive_to_every_component(self):
        base = run_signature([1, 2], ["s1"], extra=None)
        assert run_signature([1, 3], ["s1"], extra=None) != base
        assert run_signature([1, 2], ["s2"], extra=None) != base
        assert run_signature([1, 2], ["s1"], extra="x") != base


class TestCheckpointer:
    def test_begin_fresh(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "j")
        state = ckpt.begin("sig-a")
        assert state.fresh
        assert state.signature == "sig-a"
        # The begin entry is on disk already.
        entries = ckpt.entries()
        assert [e["kind"] for e in entries] == ["begin"]

    def test_record_and_resume(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "j")
        ckpt.begin("sig")
        ckpt.record_batch(0, 0, "stage-a", {"survivors": [1, 2]})
        ckpt.record_batch(0, 1, "stage-a", {"survivors": [3]})
        ckpt.record_stage(1, "stage-b", {"records": [9]})

        state = Checkpointer(tmp_path / "j").resume_run()
        assert not state.fresh
        assert not state.finished
        assert state.completed_batches(0) == 2
        assert state.batch_result(0, 1) == {"survivors": [3]}
        assert state.stage_result(1) == {"records": [9]}
        assert state.stage_result(0) is None

    def test_begin_resumes_unfinished_same_signature(self, tmp_path):
        first = Checkpointer(tmp_path / "j")
        first.begin("sig")
        first.record_batch(0, 0, "s", "payload")

        second = Checkpointer(tmp_path / "j")
        state = second.begin("sig")
        assert not state.fresh
        assert state.batch_result(0, 0) == "payload"
        # New entries continue the sequence rather than clobbering.
        second.record_batch(0, 1, "s", "more")
        assert second.begin("sig").completed_batches(0) == 2

    def test_begin_wipes_on_signature_mismatch(self, tmp_path):
        first = Checkpointer(tmp_path / "j")
        first.begin("sig-a")
        first.record_batch(0, 0, "s", "stale")

        state = Checkpointer(tmp_path / "j").begin("sig-b")
        assert state.fresh
        assert state.batch_result(0, 0) is None

    def test_begin_wipes_finished_journal(self, tmp_path):
        first = Checkpointer(tmp_path / "j")
        first.begin("sig")
        first.record_stage(0, "s", "done")
        first.finish({"n_output": 1})

        state = Checkpointer(tmp_path / "j").begin("sig")
        assert state.fresh  # a finished run re-runs from scratch

    def test_completed_batches_stops_at_gap(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "j")
        ckpt.begin("sig")
        ckpt.record_batch(0, 0, "s", "a")
        ckpt.record_batch(0, 2, "s", "c")  # batch 1 missing
        state = Checkpointer(tmp_path / "j").resume_run()
        assert state.completed_batches(0) == 1

    def test_corrupt_entry_truncates_journal(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "j")
        ckpt.begin("sig")
        ckpt.record_batch(0, 0, "s", "kept")
        ckpt.record_batch(0, 1, "s", "torn")
        ckpt.record_batch(0, 2, "s", "after")

        # Corrupt the *middle* entry; everything from it on is untrusted.
        paths = sorted((tmp_path / "j").glob("journal-*.ckpt"))
        blob = bytearray(paths[2].read_bytes())
        blob[-1] ^= 0xFF
        paths[2].write_bytes(bytes(blob))

        state = Checkpointer(tmp_path / "j").resume_run()
        assert state.completed_batches(0) == 1
        assert state.batch_result(0, 0) == "kept"
        assert state.batch_result(0, 2) is None

    def test_resume_run_raises_when_nothing_there(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpointer(tmp_path / "missing").resume_run()

    def test_clear_removes_entries_and_tmp(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "j")
        ckpt.begin("sig")
        ckpt.record_stage(0, "s", "x")
        (tmp_path / "j" / "journal-000099.ckpt.tmp").write_bytes(b"junk")
        ckpt.clear()
        assert list((tmp_path / "j").iterdir()) == []

    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(tmp_path, interval=0)

    def test_no_tmp_files_left_behind(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "j")
        ckpt.begin("sig")
        for i in range(5):
            ckpt.record_batch(0, i, "s", i)
        leftovers = [p for p in (tmp_path / "j").iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []
