"""FaultPlan / FaultRule / flip_shard_byte unit tests."""

import pickle

import pytest

from repro.resilience import (
    FaultPlan,
    FaultRule,
    SimulatedCrash,
    TransientFault,
    flip_shard_byte,
    register_fault_exception,
)


class TestFaultRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="explode")
        with pytest.raises(ValueError):
            FaultRule(site="s", kind="raise", exception="NoSuchError")

    def test_ordinal_matching(self):
        rule = FaultRule(site="s", ordinals=(0, 3))
        assert rule.matches(0)
        assert not rule.matches(1)
        assert rule.matches(3)

    def test_dict_round_trip(self):
        rule = FaultRule(site="s", kind="delay", ordinals=(2,), delay_s=0.5)
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_inactive_site_passthrough(self):
        plan = FaultPlan([FaultRule(site="watched", ordinals=(0,))])

        def fn():
            return "x"

        assert plan.wrap("unwatched", fn) is fn  # literally untouched
        assert plan.wrap("watched", fn) is not fn

    def test_raise_at_scheduled_ordinals_only(self):
        plan = FaultPlan([FaultRule(site="s", ordinals=(1, 2))])
        wrapped = plan.wrap("s", lambda: "ok")
        assert wrapped() == "ok"            # ordinal 0: clean
        with pytest.raises(TransientFault):
            wrapped()                       # ordinal 1
        with pytest.raises(TransientFault):
            wrapped()                       # ordinal 2
        assert wrapped() == "ok"            # ordinal 3: clean again
        assert plan.calls("s") == 4
        assert plan.report() == {"s": {"raise": 2}}

    def test_named_exception(self):
        plan = FaultPlan([FaultRule(site="s", ordinals=(0,),
                                    exception="OSError", message="disk")])
        with pytest.raises(OSError, match="disk"):
            plan.wrap("s", lambda: None)()

    def test_registered_exception(self):
        class Custom(Exception):
            pass

        register_fault_exception("CustomTestError", Custom)
        plan = FaultPlan([FaultRule(site="s", ordinals=(0,),
                                    exception="CustomTestError")])
        with pytest.raises(Custom):
            plan.wrap("s", lambda: None)()

    def test_delay_uses_injected_sleep(self):
        slept = []
        plan = FaultPlan(
            [FaultRule(site="s", kind="delay", ordinals=(0,), delay_s=1.5)],
            sleep=slept.append)
        assert plan.wrap("s", lambda: "done")() == "done"
        assert slept == [1.5]

    def test_crash_is_base_exception(self):
        plan = FaultPlan([FaultRule(site="s", kind="crash", ordinals=(0,))])
        wrapped = plan.wrap("s", lambda: None)
        with pytest.raises(SimulatedCrash) as info:
            wrapped()
        assert not isinstance(info.value, Exception)
        assert (info.value.site, info.value.ordinal) == ("s", 0)

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(5, ["x", "y"], n_faults=3, max_ordinal=20)
        b = FaultPlan.seeded(5, ["x", "y"], n_faults=3, max_ordinal=20)
        c = FaultPlan.seeded(6, ["x", "y"], n_faults=3, max_ordinal=20)
        assert a.to_dict() == b.to_dict()
        assert a.to_dict() != c.to_dict()
        for rule in a.rules:
            assert len(rule.ordinals) == 3
            assert all(0 <= o < 20 for o in rule.ordinals)

    def test_json_round_trip(self):
        plan = FaultPlan([
            FaultRule(site="a", ordinals=(1,)),
            FaultRule(site="b", kind="crash", ordinals=(0, 7)),
        ])
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.to_dict() == plan.to_dict()
        assert restored.sites() == ["a", "b"]

    def test_wrapped_callable_is_unpicklable(self):
        # By design: plan counters must stay shared, so the wrapper
        # refuses to cross a process boundary and the executor falls
        # back to serial.
        plan = FaultPlan([FaultRule(site="s", ordinals=(0,))])
        wrapped = plan.wrap("s", len)
        with pytest.raises(TypeError, match="process boundary"):
            pickle.dumps(wrapped)


class TestFlipShardByte:
    def test_flips_exactly_one_byte(self, tmp_path):
        path = tmp_path / "blob"
        original = bytes(range(64))
        path.write_bytes(original)
        offset = flip_shard_byte(path, seed=3)
        mutated = path.read_bytes()
        assert mutated != original
        diffs = [i for i, (a, b) in enumerate(zip(original, mutated))
                 if a != b]
        assert diffs == [offset]
        assert mutated[offset] == original[offset] ^ 0xFF

    def test_seed_determinism_and_explicit_offset(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(bytes(100))
        b.write_bytes(bytes(100))
        assert flip_shard_byte(a, seed=9) == flip_shard_byte(b, seed=9)
        assert flip_shard_byte(a, offset=5) == 5

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            flip_shard_byte(path)
