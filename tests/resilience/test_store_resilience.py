"""Store I/O under the resilience runtime: retried reads, per-shard
breakers feeding CorruptionReport, skipped-shard audit counters, and
retried writes."""

import random

import pytest

from repro.dataset.records import (
    CompileStatus,
    Complexity,
    DatasetEntry,
    PyraNetDataset,
)
from repro.obs import Observability
from repro.resilience import (
    BreakerConfig,
    CircuitOpenError,
    FaultPlan,
    FaultRule,
    Resilience,
    RetryPolicy,
    flip_shard_byte,
)
from repro.store import ShardCorruptionError, ShardWriter, StoreReader


def make_dataset(n=40, seed=0):
    rng = random.Random(seed)
    dataset = PyraNetDataset()
    for i in range(n):
        dataset.add(DatasetEntry(
            entry_id=f"e{i}",
            code=f"module m{i}(input a, output y);\n"
                 f"  assign y = ~a; // unit {i}\nendmodule",
            description=f"inverter variant {i}",
            ranking=rng.randrange(21),
            complexity=Complexity(rng.randrange(4)),
            compile_status=CompileStatus.CLEAN,
            layer=rng.randrange(1, 7),
        ))
    return dataset


def entry_dicts(entries):
    return [e.to_dict() for e in entries]


NO_SLEEP = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
ONE_SHOT = RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0)


class TestRetriedReads:
    def test_transient_read_fault_is_absorbed(self, tmp_path):
        dataset = make_dataset()
        ShardWriter(tmp_path, max_shard_bytes=2048).write(dataset)

        plan = FaultPlan([FaultRule(site="store.read_shard",
                                    ordinals=(0, 2),
                                    exception="OSError")])
        obs = Observability()
        res = Resilience(retry=NO_SLEEP, fault_plan=plan, obs=obs)
        reader = StoreReader(tmp_path, resilience=res, obs=obs)

        assert entry_dicts(reader.read_all()) == entry_dicts(dataset)
        assert reader.corruption_reports == []
        assert res.retries_for("store.read_shard") == 2
        assert obs.registry.counter("resilience.retries").value == 2

    def test_injected_corruption_error_is_retried_too(self, tmp_path):
        # An injected ShardCorruptionError takes the exact path a real
        # checksum mismatch would — and a transient one is absorbed.
        dataset = make_dataset(n=10)
        ShardWriter(tmp_path).write(dataset)
        plan = FaultPlan([FaultRule(site="store.read_shard", ordinals=(0,),
                                    exception="ShardCorruptionError")])
        res = Resilience(retry=NO_SLEEP, fault_plan=plan)
        reader = StoreReader(tmp_path, resilience=res)
        assert len(reader.read_all()) == len(dataset)
        assert res.retries_for("store.read_shard") == 1


class TestShardBreaker:
    def _corrupt_store(self, tmp_path):
        dataset = make_dataset()
        manifest = ShardWriter(tmp_path, max_shard_bytes=2048).write(dataset)
        assert len(manifest.shards) > 1
        victim = manifest.shards[0]
        flip_shard_byte(tmp_path / victim.name, seed=1)
        return manifest, victim

    def test_persistent_corruption_trips_breaker_into_report(self, tmp_path):
        manifest, victim = self._corrupt_store(tmp_path)
        obs = Observability()
        res = Resilience(
            retry=ONE_SHOT,
            breaker=BreakerConfig(trip_threshold=2, cooldown_attempts=1000),
            obs=obs,
        )
        reader = StoreReader(tmp_path, strict=False, resilience=res, obs=obs)

        # Two sweeps fail on the bad shard and trip its breaker; the
        # third is rejected without touching disk.
        for _ in range(3):
            reader.corruption_reports.clear()
            reader.verify()

        assert [r.reason for r in reader.corruption_reports] \
            == ["circuit open"]
        report = reader.corruption_reports[0]
        assert report.shard == victim.name
        assert report.n_entries_lost == victim.n_entries

        counters = obs.registry
        assert counters.counter("resilience.breaker.trips").value == 1
        assert counters.counter("store.read.circuit_open").value == 1
        # Satellite: every lenient skip leaves a per-digest audit trail.
        assert counters.counter("store.read.skipped_shards").value == 3
        digest_key = f"store.read.skipped.{victim.digest[:12]}"
        assert counters.counter(digest_key).value == 3

        breakers = res.report().breakers
        assert any(b["site"] == f"store.shard.{victim.digest[:12]}"
                   and b["state"] == "open" for b in breakers)

    def test_strict_reader_raises_circuit_open(self, tmp_path):
        self._corrupt_store(tmp_path)
        res = Resilience(
            retry=ONE_SHOT,
            breaker=BreakerConfig(trip_threshold=1, cooldown_attempts=1000),
        )
        reader = StoreReader(tmp_path, strict=True, resilience=res)
        with pytest.raises(ShardCorruptionError):
            reader.read_all()
        with pytest.raises(CircuitOpenError):
            reader.read_all()

    def test_healthy_shards_still_read_while_one_is_open(self, tmp_path):
        manifest, victim = self._corrupt_store(tmp_path)
        res = Resilience(
            retry=ONE_SHOT,
            breaker=BreakerConfig(trip_threshold=1, cooldown_attempts=1000),
        )
        reader = StoreReader(tmp_path, strict=False, resilience=res)
        survivors = reader.read_all()
        expected = manifest.n_entries - victim.n_entries
        assert len(survivors) == expected


class TestRetriedWrites:
    def test_transient_write_fault_is_absorbed(self, tmp_path):
        dataset = make_dataset()
        plan = FaultPlan([FaultRule(site="store.write_shard", ordinals=(0,),
                                    exception="OSError",
                                    message="disk hiccup")])
        res = Resilience(retry=NO_SLEEP, fault_plan=plan)
        manifest = ShardWriter(tmp_path, max_shard_bytes=2048,
                               resilience=res).write(dataset)

        assert res.retries_for("store.write_shard") == 1
        # A plain reader (no resilience) verifies every byte landed.
        assert entry_dicts(StoreReader(tmp_path).read_all()) \
            == entry_dicts(dataset)
        assert manifest.n_entries == len(dataset)

    def test_persistent_write_fault_raises_original(self, tmp_path):
        dataset = make_dataset(n=10)
        plan = FaultPlan([FaultRule(site="store.write_shard",
                                    ordinals=tuple(range(10)),
                                    exception="OSError",
                                    message="disk gone")])
        res = Resilience(retry=ONE_SHOT, fault_plan=plan)
        with pytest.raises(OSError, match="disk gone"):
            ShardWriter(tmp_path, resilience=res).write(dataset)
