"""Shielded executor behaviour: retry + quarantine in every mode.

The satellite case: a worker in **process** mode raising an exception
that cannot survive the pickle round trip must surface as a clean
:class:`Quarantined` dead-letter entry — never as a cryptic
``BrokenProcessPool``.
"""

import pickle

import pytest

from repro.pipeline import ParallelExecutor
from repro.resilience import Quarantined, Resilience, RetryPolicy

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)


class UnpicklableError(Exception):
    """Pickles, but cannot be *unpickled*: reconstruction calls
    ``UnpicklableError(msg)`` and misses the second argument — the shape
    that turns a naive process-pool result fetch into BrokenProcessPool."""

    def __init__(self, code, detail):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


def poison(value):
    """Module-level (process-picklable) stage fn with one bad record."""
    if value == 3:
        raise UnpicklableError("E42", "poisoned record")
    return value * 2


def shielded(mode, **kwargs):
    executor = ParallelExecutor(mode=mode, **kwargs)
    res = Resilience(retry=FAST_RETRY)
    executor.shield = res.shield("stage.poison", mode=executor.mode)
    return executor, res


@pytest.mark.parametrize("mode", ["serial", "thread", "process"])
class TestQuarantineAcrossModes:
    def test_poisoned_record_is_quarantined_not_fatal(self, mode):
        executor, res = shielded(mode, max_workers=2, chunk_size=2)
        results = executor.map(poison, list(range(6)))

        assert len(results) == 6
        marker = results[3]
        assert isinstance(marker, Quarantined)
        assert marker.error_type == "UnpicklableError"
        assert "poisoned record" in marker.error
        assert marker.attempts == FAST_RETRY.max_attempts
        # Healthy records are untouched, in order.
        clean = [r for i, r in enumerate(results) if i != 3]
        assert clean == [0, 2, 4, 8, 10]

    def test_dead_letter_has_the_details(self, mode):
        executor, res = shielded(mode, max_workers=2, chunk_size=2)
        executor.map(poison, list(range(6)))

        assert res.total_quarantined == 1
        assert res.quarantined_for("stage.poison") == 1
        assert len(res.dead_letter) == 1
        entry = res.dead_letter.entries[0]
        assert entry["site"] == "stage.poison"
        assert entry["error_type"] == "UnpicklableError"
        assert entry["value_repr"] == "3"


class TestProcessModeSpecifics:
    def test_the_exception_really_is_unpicklable(self):
        """The premise of the satellite: this exception shape breaks a
        bare process pool's result channel."""
        exc = UnpicklableError("E42", "poisoned record")
        blob = pickle.dumps(exc)
        with pytest.raises(Exception):
            pickle.loads(blob)

    def test_process_pool_survives_unpicklable_exception(self):
        executor, res = shielded("process", max_workers=2, chunk_size=3)
        results = executor.map(poison, list(range(8)))

        # The guard converted the failure in the worker, so the pool's
        # result channel only ever carried plain picklable markers.
        assert isinstance(results[3], Quarantined)
        assert res.total_quarantined == 1
        assert not executor.fell_back

    def test_retry_counting_crosses_the_pool_boundary(self):
        # flaky_once fails on its first call per worker invocation; the
        # in-worker retry absorbs it and the parent still sees the tally.
        executor, res = shielded("process", max_workers=2, chunk_size=4)
        results = executor.map(flaky_by_value, [1, 2, 3, 4])
        assert results == [1, 2, 3, 4]
        assert res.total_quarantined == 0
        assert res.retries_for("stage.poison") == 1


def flaky_by_value(value):
    """Deterministically fails once for value 2 — stateless, so it
    behaves identically in any worker process."""
    if value == 2 and not getattr(flaky_by_value, "_tripped", False):
        flaky_by_value._tripped = True
        raise RuntimeError("transient wobble")
    return value
