"""Differential property tests: simulator vs golden models.

Hypothesis drives random parameter points and stimulus seeds through
whole design families, checking the rendered Verilog against the pure-
Python golden model each time.  Any divergence means a bug in either
the template, the golden model, or the simulator — historically the
most valuable single test in this repository.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.corpus.templates import family_names, generate_design
from repro.eval.functional import run_functional_test

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestDifferentialCombinational:
    @_SETTINGS
    @given(seed=st.integers(0, 10_000), stim=st.integers(0, 10_000))
    def test_random_comb_family_point(self, seed, stim):
        rng = random.Random(seed)
        family = rng.choice(family_names("combinational"))
        design = generate_design(family, rng)
        outcome = run_functional_test(design.source, design.spec,
                                      n_vectors=12, seed=stim)
        assert outcome.passed, (family, design.spec.params,
                                outcome.failure_kind, outcome.detail)


class TestDifferentialSequential:
    @_SETTINGS
    @given(seed=st.integers(0, 10_000), stim=st.integers(0, 10_000))
    def test_random_seq_family_point(self, seed, stim):
        rng = random.Random(seed)
        family = rng.choice(family_names("sequential"))
        design = generate_design(family, rng)
        outcome = run_functional_test(design.source, design.spec,
                                      n_vectors=16, seed=stim)
        assert outcome.passed, (family, design.spec.params,
                                outcome.failure_kind, outcome.detail)


class TestDifferentialWideParams:
    @pytest.mark.parametrize("family,params", [
        ("ripple_carry_adder", {"WIDTH": 32}),
        ("alu", {"WIDTH": 32}),
        ("barrel_shifter", {"WIDTH": 32}),
        ("popcount", {"WIDTH": 32}),
        ("register", {"WIDTH": 16}),
        ("sync_fifo", {"DEPTH": 8, "WIDTH": 16}),
        ("mod_n_counter", {"MODULO": 13}),
        ("mux", {"WIDTH": 24, "INPUTS": 8}),
    ])
    def test_wide_parameter_points(self, family, params):
        design = generate_design(family, random.Random(0), params=params)
        outcome = run_functional_test(design.source, design.spec,
                                      n_vectors=20, seed=3)
        assert outcome.passed, (outcome.failure_kind, outcome.detail)
