"""Repair-trajectory source: determinism, records, streaming path."""

import json

import pytest

from repro.corpus.repair_source import (
    RepairTrajectoryResult,
    candidate_seed,
    repair_trajectories,
    repair_trajectory_batches,
)
from repro.dataset.streaming import StreamingCurationPipeline
from repro.obs import Observability
from repro.pipeline import ParallelExecutor
from repro.store.manifest import StoreManifest
from repro.store.reader import StoreReader
from repro.verilog import check


@pytest.fixture(scope="module")
def run():
    return repair_trajectories(n_candidates=12, seed=7, budget=2)


class TestCandidateSeed:
    def test_stable(self):
        assert candidate_seed(7, 3) == candidate_seed(7, 3)

    def test_distinct(self):
        seeds = {candidate_seed(7, i) for i in range(64)}
        seeds |= {candidate_seed(8, i) for i in range(64)}
        assert len(seeds) == 128


class TestTrajectories:
    def test_produces_fixed_records(self, run):
        assert run.n_candidates == 12
        assert run.records, "no candidate was repaired"
        assert 0.0 < run.fix_rate() <= 1.0

    def test_records_carry_repair_origin(self, run):
        for content, provenance in run.records:
            assert provenance["origin"] == "repair"
            assert provenance["path"].startswith("repair/")
            assert check(content).status != "syntax"

    def test_prompt_embeds_broken_source_and_feedback(self, run):
        _, provenance = run.records[0]
        prompt = provenance["description"]
        assert "Repair the broken Verilog module" in prompt
        assert "// broken source:" in prompt
        assert "// applied repairs:" in prompt

    def test_transcripts_round_trip(self, run):
        for transcript in run.transcripts():
            assert transcript.budget == 2

    def test_summary_shape(self, run):
        summary = run.summary()
        assert summary["n_candidates"] == 12
        assert summary["n_records"] == len(run.records)
        assert 0.0 <= summary["fix_rate"] <= 1.0
        assert summary["total_iterations"] >= summary["n_fixed"]

    def test_histogram_and_counters_recorded(self):
        obs = Observability()
        repair_trajectories(n_candidates=4, seed=1, budget=1, obs=obs)
        assert obs.registry.histogram("repair.iterations").count == 4
        assert obs.registry.counter(
            "repair.trajectories.candidates").value == 4


class TestExecutorIndependence:
    def test_serial_thread_process_identical(self):
        blobs = []
        for executor in (ParallelExecutor.serial(),
                         ParallelExecutor(mode="thread", max_workers=3),
                         ParallelExecutor(mode="process", max_workers=2)):
            result = repair_trajectories(
                n_candidates=6, seed=3, budget=2, executor=executor)
            blobs.append(json.dumps(result.payloads, sort_keys=True))
        assert blobs[0] == blobs[1] == blobs[2]


class TestBatches:
    def test_batch_sizes(self):
        batches = list(repair_trajectory_batches(
            n_candidates=12, seed=7, budget=2, batch_size=3))
        flat = [record for batch in batches for record in batch]
        assert all(len(batch) <= 3 for batch in batches)
        assert len(flat) == len(
            repair_trajectories(n_candidates=12, seed=7,
                                budget=2).records)


class TestStreamingIntegration:
    def test_curates_into_store_with_repair_facet(self, tmp_path):
        pipeline = StreamingCurationPipeline(seed=7)
        outcome = pipeline.curate_to_store(
            repair_trajectory_batches(n_candidates=12, seed=7,
                                      budget=2, batch_size=4),
            tmp_path / "store", source_token="repair:7")
        facets = StoreManifest.load(tmp_path / "store").facets()
        assert facets["origins"].get("repair", 0) > 0
        assert facets["origins"]["repair"] <= 12
        entries = [entry for entry in StoreReader(tmp_path / "store")
                   if entry.origin == "repair"]
        assert len(entries) == facets["origins"]["repair"]
        assert outcome.manifest.origin_histogram() == facets["origins"]
