"""Tests for DesignSpec helpers and spec utility functions."""

import random

import pytest

from repro.corpus.spec import DesignSpec, PortDef, mask, to_signed
from repro.corpus.templates import generate_design


class TestHelpers:
    @pytest.mark.parametrize("width,expected", [
        (1, 1), (4, 15), (8, 255), (16, 65535),
    ])
    def test_mask(self, width, expected):
        assert mask(width) == expected

    @pytest.mark.parametrize("value,width,expected", [
        (0, 4, 0), (7, 4, 7), (8, 4, -8), (15, 4, -1),
        (0xFF, 8, -1), (0x7F, 8, 127), (0x1FF, 8, -1),
    ])
    def test_to_signed(self, value, width, expected):
        assert to_signed(value, width) == expected


class TestPortDef:
    def test_mask_property(self):
        assert PortDef("x", 6).mask == 63

    def test_default_role_is_data(self):
        assert PortDef("x").role == "data"


class TestDesignSpec:
    def _spec(self):
        return generate_design("sync_fifo", random.Random(0),
                               module_name="top_module").spec

    def test_category(self):
        assert self._spec().category == "sequential"
        comb = generate_design("mux", random.Random(0)).spec
        assert comb.category == "combinational"

    def test_data_inputs_exclude_clock_reset(self):
        spec = self._spec()
        names = {p.name for p in spec.data_inputs()}
        assert "clk" not in names and "rst" not in names
        assert "din" in names

    def test_find_ports(self):
        spec = self._spec()
        assert spec.find_input("wr") is not None
        assert spec.find_output("full") is not None
        assert spec.find_input("nonexistent") is None
        assert spec.find_output("nonexistent") is None

    def test_port_header_lists_every_port(self):
        spec = self._spec()
        header = spec.port_header()
        for port in spec.inputs + spec.outputs:
            assert port.name in header
        assert header.rstrip().endswith(");")

    def test_port_header_widths(self):
        spec = generate_design(
            "register", random.Random(0), params={"WIDTH": 8},
            module_name="top_module").spec
        header = spec.port_header()
        assert "[7:0] d" in header
        assert "[7:0] q" in header
