"""Tests for the keyword database and the simulated commercial LLM."""

import random

import pytest

from repro.corpus.keywords import build_keyword_database, craft_prompt
from repro.corpus.llm_sim import SimulatedCommercialLLM, strip_markdown_fences
from repro.verilog import check


class TestKeywordDatabase:
    def test_covers_all_families(self):
        from repro.corpus.templates import family_names

        db = build_keyword_database()
        assert {e.family for e in db.entries} == set(family_names())

    def test_keywords_fewer_than_expansions(self):
        db = build_keyword_database()
        assert len(db.keywords) < len(db.entries)

    def test_by_category_partition(self):
        db = build_keyword_database()
        comb = db.by_category("combinational")
        seq = db.by_category("sequential")
        assert len(comb) + len(seq) == len(db.entries)

    def test_prompt_mentions_expansion(self):
        db = build_keyword_database()
        entry = db.entries[0]
        prompt = craft_prompt(entry, random.Random(0))
        assert entry.expansion in prompt


class TestGeneration:
    def test_low_temperature_is_clean(self):
        llm = SimulatedCommercialLLM(seed=0, fence_probability=0.0)
        db = build_keyword_database()
        clean = 0
        for entry in db.entries[:10]:
            sample = llm.generate(entry, temperature=0.1)
            if check(sample.design.source).status == "clean":
                clean += 1
        assert clean >= 9

    def test_high_temperature_degrades(self):
        llm = SimulatedCommercialLLM(seed=0, fence_probability=0.0)
        db = build_keyword_database()
        mutated = 0
        for entry in db.entries[:12]:
            sample = llm.generate(entry, temperature=1.3)
            if sample.mutations:
                mutated += 1
        assert mutated >= 6

    def test_batch_sweeps_temperature(self):
        llm = SimulatedCommercialLLM(seed=1)
        db = build_keyword_database()
        batch = llm.generate_batch(db.entries[0], n_queries=10)
        temperatures = [s.temperature for s in batch]
        assert len(batch) == 10
        assert temperatures == sorted(temperatures)
        assert temperatures[0] < 0.3 < 1.3 < temperatures[-1] + 0.2

    def test_exchanges_recorded(self):
        llm = SimulatedCommercialLLM(seed=2)
        db = build_keyword_database()
        llm.generate(db.entries[3], temperature=0.5)
        assert llm.exchanges
        assert "Verilog" in llm.exchanges[-1].prompt

    def test_markdown_fences_strippable(self):
        fenced = "```verilog\nmodule m; endmodule\n```"
        assert strip_markdown_fences(fenced) == "module m; endmodule\n"
        plain = "module m; endmodule"
        assert strip_markdown_fences(plain) == plain


class TestJudgeAndDescriber:
    def test_rank_clean_code_high(self):
        llm = SimulatedCommercialLLM(seed=0)
        score = llm.rank(
            "// adds\nmodule add(input a, b, output s);\n"
            "  assign s = a ^ b;\nendmodule\n")
        assert score >= 17

    def test_rank_broken_code_zero(self):
        llm = SimulatedCommercialLLM(seed=0)
        assert llm.rank("module busted(input a endmodule") == 0

    def test_describe_mentions_module(self):
        llm = SimulatedCommercialLLM(seed=0)
        description = llm.describe(
            "module blinker(input clk, output reg led);\n"
            "  always @(posedge clk) led <= ~led;\nendmodule\n")
        assert "blinker" in description
        assert "sequential" in description
