"""Tests for the defect injectors."""

import random

import pytest

from repro.corpus import mutate
from repro.corpus.templates import generate_design, generate_random_design
from repro.verilog import check


def _fresh(seed=0):
    return generate_design("up_counter", random.Random(seed)).source


class TestDegradeStyle:
    def test_output_still_compiles(self):
        rng = random.Random(1)
        for seed in range(8):
            source = generate_random_design(random.Random(seed)).source
            result = mutate.degrade_style(source, rng, strength=0.8)
            assert check(result.source).status == "clean", result.applied

    def test_applies_at_least_one_op(self):
        result = mutate.degrade_style(_fresh(), random.Random(2), 0.5)
        assert result.applied

    def test_strength_zero_is_light(self):
        result = mutate.degrade_style(_fresh(), random.Random(3), 0.0)
        assert len(result.applied) <= 2

    def test_lowers_ranking_score(self):
        from repro.dataset.ranking import score_code

        source = _fresh()
        degraded = mutate.degrade_style(source, random.Random(4), 1.0)
        assert score_code(degraded.source) < score_code(source)

    def test_keeps_ports_intact(self):
        from repro.verilog.parser import parse

        source = _fresh()
        before = set(parse(source).modules[0].port_names())
        result = mutate.degrade_style(source, random.Random(5), 1.0)
        after = set(parse(result.source).modules[0].port_names())
        assert before == after


class TestCorruptFunction:
    def test_still_compiles(self):
        rng = random.Random(7)
        for seed in range(8):
            source = generate_random_design(random.Random(seed)).source
            result = mutate.corrupt_function(source, rng)
            assert check(result.source).status == "clean", result.applied

    def test_changes_behaviour_or_text(self):
        source = _fresh()
        result = mutate.corrupt_function(source, random.Random(8))
        assert result.source != source
        assert result.functional_risk

    def test_breaks_functional_test_eventually(self):
        from repro.eval.functional import run_functional_test

        failures = 0
        for seed in range(10):
            design = generate_design("ripple_carry_adder",
                                     random.Random(seed))
            corrupted = mutate.corrupt_function(
                design.source, random.Random(seed + 100))
            outcome = run_functional_test(
                corrupted.source, design.spec, n_vectors=16, seed=1)
            if not outcome.passed:
                failures += 1
        assert failures >= 7  # most operator swaps change behaviour


class TestBreakDependency:
    def test_produces_dependency_status(self):
        hits = 0
        for seed in range(10):
            result = mutate.break_dependency(_fresh(seed),
                                             random.Random(seed))
            assert result.intended_status == "dependency"
            if check(result.source).status == "dependency":
                hits += 1
        assert hits == 10

    def test_not_a_syntax_error(self):
        result = mutate.break_dependency(_fresh(), random.Random(2))
        assert check(result.source).status != "syntax"


class TestBreakSyntax:
    def test_produces_syntax_errors(self):
        hits = 0
        for seed in range(12):
            result = mutate.break_syntax(_fresh(seed), random.Random(seed))
            if check(result.source).status == "syntax":
                hits += 1
        # Some mutations (e.g. dropping a benign semicolon position)
        # may survive; the overwhelming majority must not.
        assert hits >= 9


class TestJunk:
    def test_junk_fails_readability_or_module_filter(self):
        from repro.dataset.filters import has_module, is_readable

        for seed in range(12):
            result = mutate.make_junk_file(random.Random(seed))
            readable = is_readable(result.source)
            module_ok = (
                has_module(result.source).kept if readable.kept else False
            )
            assert not (readable.kept and module_ok), result.applied
