"""Tests for the GitHub-scrape simulator."""

import random
from collections import Counter

import pytest

from repro.corpus.github_sim import GitHubScrapeSimulator, QualityProfile
from repro.verilog import check


class TestScrape:
    def test_produces_requested_count(self):
        files = GitHubScrapeSimulator(seed=0).scrape(50)
        assert len(files) == 50

    def test_deterministic_per_seed(self):
        a = GitHubScrapeSimulator(seed=3).scrape(20)
        b = GitHubScrapeSimulator(seed=3).scrape(20)
        assert [f.content for f in a] == [f.content for f in b]

    def test_different_seeds_differ(self):
        a = GitHubScrapeSimulator(seed=1).scrape(20)
        b = GitHubScrapeSimulator(seed=2).scrape(20)
        assert [f.content for f in a] != [f.content for f in b]

    def test_paths_look_like_repos(self):
        files = GitHubScrapeSimulator(seed=0).scrape(10)
        for f in files:
            assert f.path.endswith(".v")
            assert "/" in f.path

    def test_population_mix(self):
        files = GitHubScrapeSimulator(seed=5).scrape(400)
        statuses = Counter(f.truth_status for f in files)
        assert statuses["clean"] > 0
        assert statuses["junk"] > 0
        assert statuses["syntax"] > 0
        assert statuses["dependency"] > 0
        duplicates = sum(
            1 for f in files if f.truth_duplicate_of is not None)
        assert duplicates > 20

    def test_ground_truth_matches_checker(self):
        """The hidden labels must agree with the compile checker."""
        files = GitHubScrapeSimulator(seed=7).scrape(120)
        agreements = 0
        labelled = 0
        for f in files:
            if f.truth_status not in ("clean", "dependency", "syntax"):
                continue
            if f.truth_duplicate_of is not None:
                continue
            labelled += 1
            if check(f.content).status == f.truth_status:
                agreements += 1
        assert labelled > 50
        assert agreements / labelled > 0.9

    def test_custom_profile_all_clean(self):
        profile = QualityProfile(junk=0, syntax_broken=0, dependency=0,
                                 duplicate=0, clean=1.0)
        files = GitHubScrapeSimulator(seed=1, profile=profile).scrape(30)
        assert all(f.truth_status == "clean" for f in files)

    def test_duplicates_reference_existing_file(self):
        files = GitHubScrapeSimulator(seed=9).scrape(200)
        paths = {f.path for f in files}
        for f in files:
            if f.truth_duplicate_of is not None:
                assert f.truth_duplicate_of in paths
