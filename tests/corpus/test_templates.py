"""Tests for the design-family registry and golden models."""

import random

import pytest

from repro.corpus.templates import (
    FAMILY_REGISTRY,
    family_names,
    generate_design,
    generate_random_design,
    get_family,
)
from repro.eval.functional import run_functional_test
from repro.verilog import check, measure


class TestRegistry:
    def test_enough_families(self):
        assert len(family_names()) >= 30

    def test_both_categories_present(self):
        assert len(family_names("combinational")) >= 15
        assert len(family_names("sequential")) >= 15

    def test_get_family_unknown_raises(self):
        with pytest.raises(KeyError):
            get_family("warp_drive")

    def test_every_family_has_keyword(self):
        for name in family_names():
            family = get_family(name)
            assert family.keyword, name
            assert family.expanded_keyword, name

    def test_generate_is_deterministic(self):
        a = generate_design("alu", random.Random(5))
        b = generate_design("alu", random.Random(5))
        assert a.source == b.source
        assert a.description == b.description

    def test_explicit_params_respected(self):
        design = generate_design(
            "up_counter", random.Random(0), params={"WIDTH": 12}
        )
        assert design.spec.params["WIDTH"] == 12
        assert design.spec.find_output("count").width == 12

    def test_module_name_override(self):
        design = generate_design(
            "mux", random.Random(0), module_name="top_module"
        )
        assert design.spec.module_name == "top_module"
        assert "module top_module" in design.source


class TestRenderedCode:
    @pytest.mark.parametrize("family", family_names())
    def test_renders_compile_clean(self, family):
        design = generate_design(family, random.Random(11))
        result = check(design.source)
        assert result.status == "clean", (family, [
            str(d) for d in result.diagnostics])

    @pytest.mark.parametrize("family", family_names())
    def test_description_is_substantial(self, family):
        design = generate_design(family, random.Random(3))
        assert len(design.description) > 40

    @pytest.mark.parametrize("family", family_names())
    def test_spec_ports_match_rendered_module(self, family):
        design = generate_design(family, random.Random(7))
        metrics = measure(design.source)
        expected = len(design.spec.inputs) + len(design.spec.outputs)
        assert metrics.ports == expected, family


class TestGoldenAgreement:
    """Every family's Verilog must match its own golden model."""

    @pytest.mark.parametrize("family", family_names())
    def test_golden_agreement(self, family):
        design = generate_design(family, random.Random(23))
        outcome = run_functional_test(
            design.source, design.spec, n_vectors=20, seed=5
        )
        assert outcome.passed, (
            family, outcome.failure_kind, outcome.detail)

    def test_random_design_category_filter(self):
        rng = random.Random(0)
        for _ in range(10):
            design = generate_random_design(rng, category="sequential")
            assert design.spec.clocked


class TestSpecHeader:
    def test_port_header_is_parseable(self):
        from repro.verilog.parser import parse

        design = generate_design(
            "sync_fifo", random.Random(1), module_name="top_module"
        )
        header = design.spec.port_header()
        module = parse(header + "\nendmodule\n").modules[0]
        assert module.name == "top_module"
        assert set(module.port_names()) == {
            p.name for p in design.spec.inputs
        } | {p.name for p in design.spec.outputs}
