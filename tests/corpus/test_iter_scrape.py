"""GitHubScrapeSimulator.iter_scrape: the streaming scrape.

scrape() is now implemented on top of iter_scrape(), so the two must
emit identical populations for the same seed; the candidate_window
variant bounds the duplicate pool for unbounded streams.
"""

import pytest

from repro.corpus.github_sim import GitHubScrapeSimulator


def flatten(batches):
    return [f for batch in batches for f in batch]


class TestIterScrape:
    @pytest.mark.parametrize("batch_size", [1, 17, 100, 1000])
    def test_identical_to_scrape(self, batch_size):
        baseline = GitHubScrapeSimulator(seed=9).scrape(300)
        streamed = flatten(GitHubScrapeSimulator(seed=9).iter_scrape(
            300, batch_size=batch_size))
        assert len(streamed) == len(baseline)
        for a, b in zip(baseline, streamed):
            assert a.path == b.path
            assert a.content == b.content
            assert a.truth_status == b.truth_status
            assert a.truth_duplicate_of == b.truth_duplicate_of

    def test_batch_shapes(self):
        batches = list(GitHubScrapeSimulator(seed=1).iter_scrape(
            250, batch_size=64))
        assert [len(b) for b in batches] == [64, 64, 64, 58]

    def test_incremental_consumption_matches_one_shot(self):
        """Two iter_scrape calls on one simulator continue the same
        population a single longer scrape would produce."""
        one_shot = GitHubScrapeSimulator(seed=4).scrape(200)
        sim = GitHubScrapeSimulator(seed=4)
        first = flatten(sim.iter_scrape(120, batch_size=50))
        second = flatten(sim.iter_scrape(80, batch_size=50))
        assert [f.path for f in first + second] == [
            f.path for f in one_shot]

    def test_validation(self):
        sim = GitHubScrapeSimulator(seed=0)
        with pytest.raises(ValueError):
            next(sim.iter_scrape(10, batch_size=0))
        with pytest.raises(ValueError):
            next(sim.iter_scrape(10, candidate_window=0))


class TestCandidateWindow:
    def test_bounded_pool_still_produces_population(self):
        sim = GitHubScrapeSimulator(seed=2)
        files = flatten(sim.iter_scrape(400, batch_size=64,
                                        candidate_window=32))
        assert len(files) == 400
        assert len(sim._candidates) <= 32

    def test_duplicates_reference_recent_files_only(self):
        sim = GitHubScrapeSimulator(seed=2)
        files = flatten(sim.iter_scrape(600, batch_size=64,
                                        candidate_window=16))
        paths = [f.path for f in files]
        for index, f in enumerate(files):
            if f.truth_duplicate_of is None:
                continue
            origin = paths.index(f.truth_duplicate_of)
            # The referenced file is one of the (at most 16) eligible
            # files emitted most recently before this duplicate.
            eligible_between = [
                g for g in files[origin + 1:index]
                if g.truth_status in ("clean", "dependency")
                and len(g.content) > 40
            ]
            assert len(eligible_between) < 16
