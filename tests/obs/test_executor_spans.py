"""Span propagation across ParallelExecutor pool boundaries."""

from repro.obs import Tracer
from repro.pipeline import ParallelExecutor


def _double(x):
    """Module-level so process pools can pickle it."""
    return x * 2


def _run(mode):
    executor = ParallelExecutor(mode=mode, max_workers=2, chunk_size=3)
    tracer = Tracer()
    executor.tracer = tracer
    with tracer.span("stage") as stage:
        results = executor.map(_double, list(range(12)))
    return results, stage, tracer.export(), executor


class TestThreadMode:
    def test_worker_spans_parent_under_caller(self):
        results, stage, spans, executor = _run("thread")
        assert results == [x * 2 for x in range(12)]
        assert not executor.fell_back
        workers = [s for s in spans if s["name"].startswith("worker[")]
        assert len(workers) == 4  # 12 items / chunk_size 3
        for span in workers:
            assert span["parent_id"] == stage.span_id
            assert span["meta"]["mode"] == "thread"
            assert span["trace_id"] == stage.trace_id
        assert sum(s["meta"]["n_items"] for s in workers) == 12


class TestProcessMode:
    def test_worker_spans_cross_the_process_boundary(self):
        results, stage, spans, executor = _run("process")
        assert results == [x * 2 for x in range(12)]
        assert not executor.fell_back
        workers = [s for s in spans if s["name"].startswith("worker[")]
        assert len(workers) == 4
        for span in workers:
            # Recorded in the worker, absorbed by the parent: same
            # trace, parented under the calling stage span, ids from
            # the pid-namespaced worker tracer.
            assert span["parent_id"] == stage.span_id
            assert span["trace_id"] == stage.trace_id
            assert span["meta"]["mode"] == "process"
            assert span["span_id"].startswith("w")
            assert "pid" in span["meta"]

    def test_worker_indices_cover_all_chunks(self):
        _, _, spans, _ = _run("process")
        names = sorted(s["name"] for s in spans
                       if s["name"].startswith("worker["))
        assert names == [f"worker[{i}]" for i in range(4)]

    def test_unpicklable_fn_falls_back_without_worker_spans(self):
        executor = ParallelExecutor(mode="process", max_workers=2,
                                    chunk_size=3)
        tracer = Tracer()
        executor.tracer = tracer
        with tracer.span("stage"):
            results = executor.map(lambda x: x + 1, list(range(8)))
        assert results == [x + 1 for x in range(8)]
        assert executor.fell_back
        assert [s["name"] for s in tracer.export()] == ["stage"]


class TestSerialMode:
    def test_no_worker_spans(self):
        results, stage, spans, _ = _run("serial")
        assert results == [x * 2 for x in range(12)]
        assert [s["name"] for s in spans] == ["stage"]


class TestUntraced:
    def test_no_tracer_means_no_spans_and_same_results(self):
        executor = ParallelExecutor(mode="thread", max_workers=2,
                                    chunk_size=3)
        assert executor.tracer is None
        assert executor.map(_double, list(range(12))) == [
            x * 2 for x in range(12)]
