"""Tracer semantics: nesting, explicit parents, worker propagation."""

import pickle
import threading

import pytest

from repro.obs import NullTracer, SpanContext, Tracer, worker_tracer


class TestNesting:
    def test_lexical_nesting_sets_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = tracer.export()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[1]["parent_id"] is None

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("anchor") as anchor:
            context = anchor.context
        with tracer.span("elsewhere"):
            with tracer.span("child", parent=context) as child:
                pass
        assert child.parent_id == anchor.span_id

    def test_empty_parent_context_is_ignored(self):
        # current_context() with no open span returns span_id="" —
        # passing that along must not install "" as a parent id.
        tracer = Tracer()
        empty = tracer.current_context()
        assert empty.span_id == ""
        with tracer.span("root", parent=empty) as span:
            pass
        assert span.parent_id is None

    def test_thread_stacks_are_independent(self):
        tracer = Tracer()
        seen = {}

        def other():
            with tracer.span("worker-root") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main-open"):
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        # The other thread's stack was empty: no implicit nesting under
        # the main thread's open span.
        assert seen["parent"] is None


class TestSpanFacts:
    def test_error_status_and_reraise(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        span = tracer.export()[0]
        assert span["status"] == "error"

    def test_meta_kwargs_and_mutation(self):
        tracer = Tracer()
        with tracer.span("s", n_in=4) as span:
            span.meta["n_out"] = 3
        exported = tracer.export()[0]
        assert exported["meta"] == {"n_in": 4, "n_out": 3}

    def test_times_are_recorded(self):
        tracer = Tracer()
        with tracer.span("s"):
            sum(range(1000))
        span = tracer.export()[0]
        assert span["wall_time_s"] >= 0.0
        assert span["cpu_time_s"] >= 0.0

    def test_span_ids_are_sequential_and_prefixed(self):
        tracer = Tracer(id_prefix="t")
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s["span_id"] for s in tracer.export()] == ["t0001", "t0002"]


class TestContextPropagation:
    def test_span_context_pickles(self):
        context = SpanContext(trace_id="abc", span_id="s0001")
        assert pickle.loads(pickle.dumps(context)) == context

    def test_span_context_dict_round_trip(self):
        context = SpanContext(trace_id="abc", span_id="s0001")
        assert SpanContext.from_dict(context.to_dict()) == context

    def test_worker_tracer_inherits_trace_and_parent(self):
        parent = SpanContext(trace_id="trace99", span_id="s0042")
        tracer = worker_tracer(parent)
        assert tracer.trace_id == "trace99"
        with tracer.span("chunk") as span:
            pass
        exported = tracer.export()[0]
        assert exported["parent_id"] == "s0042"
        assert exported["trace_id"] == "trace99"
        # pid-namespaced ids never collide with the parent tracer's.
        assert exported["span_id"].startswith("w")

    def test_absorb_merges_worker_spans(self):
        main = Tracer()
        with main.span("stage") as stage:
            context = stage.context
        worker = worker_tracer(context)
        with worker.span("worker[0]"):
            pass
        main.absorb(worker.export())
        names = [s["name"] for s in main.export()]
        assert names == ["stage", "worker[0]"]
        assert len(main) == 2

    def test_current_context_tracks_innermost(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current_context().span_id == inner.span_id


class TestNullTracer:
    def test_null_tracer_keeps_nothing(self):
        tracer = NullTracer()
        with tracer.span("s", k=1) as span:
            span.meta["x"] = 2  # must not blow up
        assert tracer.export() == []
        assert len(tracer) == 0
