"""The Reportable contract: schema attrs, round-trips, frozen bytes.

The golden strings in this file pin the *legacy* JSON layouts.  The
observability refactor re-expressed ``PipelineTrace`` as a view over
the metric registry — these tests are what "byte-identical" means:
do not update the golden literals to make a change pass; change the
code until the old bytes come back.
"""

import json

import pytest

from repro.corpus import GitHubScrapeSimulator
from repro.dataset.families import FamilyReport
from repro.dataset.pipeline import (
    CurationPipeline,
    CurationResult,
    PipelineReport,
)
from repro.eval.harness import EvalReport, ProblemResult
from repro.obs import Observability, Reportable, RunReport
from repro.pipeline import PipelineTrace, StageMetrics
from repro.store import StoreManifest

#: The committed legacy layout of PipelineTrace.to_json (sorted keys,
#: compact separators, ints-as-ints).  Frozen.
GOLDEN_TRACE_JSON = (
    '{"meta": {"executor": {"max_workers": 1, "mode": "serial"}, '
    '"n_input": 4}, "pipeline": "curation", "stages": [{"cache_hits": 2, '
    '"cache_misses": 1, "drops": {"duplicate": 1}, "n_in": 4, "n_out": 3, '
    '"name": "dedup", "wall_time_s": 0.25}, {"cache_hits": 0, '
    '"cache_misses": 0, "drops": {}, "n_in": 3, "n_out": 3, '
    '"name": "syntax_check", "wall_time_s": 0.125}], "wall_time_s": 0.5}'
)


def _golden_trace() -> PipelineTrace:
    return PipelineTrace(
        pipeline="curation",
        wall_time_s=0.5,
        meta={"n_input": 4, "executor": {"mode": "serial",
                                         "max_workers": 1}},
        stages=[
            StageMetrics(name="dedup", n_in=4, n_out=3, wall_time_s=0.25,
                         drops={"duplicate": 1}, cache_hits=2,
                         cache_misses=1),
            StageMetrics(name="syntax_check", n_in=3, n_out=3,
                         wall_time_s=0.125),
        ],
    )


REPORTABLE_CLASSES = [PipelineTrace, StageMetrics, PipelineReport,
                      CurationResult, EvalReport, StoreManifest, RunReport,
                      FamilyReport]


class TestProtocol:
    @pytest.mark.parametrize("cls", REPORTABLE_CLASSES)
    def test_satisfies_reportable(self, cls):
        assert issubclass(cls, Reportable)

    @pytest.mark.parametrize("cls", REPORTABLE_CLASSES)
    def test_declares_versioned_schema(self, cls):
        assert cls.schema.startswith("pyranet/")
        assert cls.schema.rsplit("/", 1)[1].startswith("v")


class TestGoldenBytes:
    def test_trace_to_json_is_byte_identical(self):
        assert _golden_trace().to_json() == GOLDEN_TRACE_JSON

    def test_trace_round_trip_preserves_bytes(self):
        restored = PipelineTrace.from_json(GOLDEN_TRACE_JSON)
        assert restored.to_json() == GOLDEN_TRACE_JSON

    def test_from_registry_rebuilds_byte_identical_trace(self):
        # publish_trace folds the trace into the registry; from_registry
        # is the inverse view.  The pair must round-trip exact bytes —
        # the trace is a *view* over the registry, not a fork of it.
        trace = _golden_trace()
        obs = Observability()
        obs.publish_trace(trace)
        rebuilt = PipelineTrace.from_registry(obs.registry, "curation")
        assert rebuilt.to_json() == GOLDEN_TRACE_JSON

    def test_from_registry_without_publish_raises(self):
        with pytest.raises(KeyError):
            PipelineTrace.from_registry(Observability().registry, "nope")

    def test_schema_key_not_injected_into_legacy_payloads(self):
        assert "schema" not in _golden_trace().to_dict()
        assert "schema" not in StageMetrics(name="s").to_dict()
        assert "schema" not in StoreManifest().to_dict()


class TestRoundTrips:
    def test_curation_result_round_trips(self):
        raw = GitHubScrapeSimulator(seed=5).scrape(40)
        result = CurationPipeline(seed=5).run(raw)
        assert len(result.dataset) > 0
        restored = CurationResult.from_json(result.to_json())
        assert restored.to_dict() == result.to_dict()
        assert [e.entry_id for e in restored.dataset] == [
            e.entry_id for e in result.dataset]
        assert restored.report.trace.to_json() == \
            result.report.trace.to_json()

    def test_eval_report_round_trips_with_schema_key_tolerated(self):
        report = EvalReport(
            suite="machine", model_name="m",
            results=[ProblemResult(problem_id="p", n_samples=4,
                                   n_passed=2,
                                   failure_kinds={"compile": 2})],
        )
        data = report.to_dict()
        data["schema"] = EvalReport.schema  # future writers may add it
        restored = EvalReport.from_dict(data)
        assert restored.to_dict() == report.to_dict()

    def test_trace_from_dict_tolerates_schema_key(self):
        data = _golden_trace().to_dict()
        data["schema"] = PipelineTrace.schema
        data["stages"][0]["schema"] = StageMetrics.schema
        assert PipelineTrace.from_dict(data).to_json() == GOLDEN_TRACE_JSON

    def test_manifest_from_dict_tolerates_schema_key(self):
        manifest = StoreManifest(n_entries=0)
        data = manifest.to_dict()
        data["schema"] = StoreManifest.schema
        assert StoreManifest.from_dict(data).to_dict() == manifest.to_dict()


class TestManifestDeprecationShim:
    def test_implicit_indent_warns_but_keeps_old_bytes(self):
        manifest = StoreManifest()
        with pytest.warns(DeprecationWarning,
                          match="explicit indent"):
            legacy = manifest.to_json()
        # The shimmed default must keep emitting the historical shape.
        assert legacy == manifest.to_json(indent=2)

    def test_explicit_indent_does_not_warn(self):
        import warnings

        manifest = StoreManifest()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            compact = manifest.to_json(indent=None)
            pretty = manifest.to_json(indent=2)
        assert json.loads(compact) == json.loads(pretty)
        assert "\n" in pretty and "\n" not in compact
