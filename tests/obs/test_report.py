"""RunReport: the merged artefact and its convenience views."""

import json

from repro.obs import (
    RUN_REPORT_SCHEMA,
    Observability,
    RunReport,
)


def _sample_observability():
    obs = Observability(run_id="test-run")
    with obs.span("pipeline.curation") as run_span:
        with obs.span("curation.dedup", parent=run_span.context):
            pass
        with obs.span("worker[0]", parent=run_span.context):
            pass
    with obs.span("eval.run"):
        pass
    obs.counter("pipeline.curation.drop.duplicate").inc(3)
    obs.counter("pipeline.curation.drop.syntax error").inc(2)
    obs.counter("cache.default.hits").inc(5)
    obs.counter("cache.default.misses").inc(7)
    obs.histogram("pipeline.stage_wall_s").observe(0.25)
    return obs


class TestViews:
    def test_span_views(self):
        report = _sample_observability().run_report()
        assert set(report.span_names()) == {
            "curation.dedup", "worker[0]", "pipeline.curation", "eval.run"}
        assert [s["name"] for s in report.find_spans("eval.")] == ["eval.run"]
        assert [s["name"] for s in report.worker_spans()] == ["worker[0]"]
        assert report.subsystems() == [
            "curation", "eval", "pipeline", "worker"]

    def test_drop_histogram_parses_counters(self):
        report = _sample_observability().run_report()
        assert report.drop_histogram() == {
            "duplicate": 3, "syntax error": 2}

    def test_cache_stats_parses_counters(self):
        report = _sample_observability().run_report()
        assert report.cache_stats() == {
            "default": {"hits": 5, "misses": 7}}

    def test_span_tree_and_summary(self):
        report = _sample_observability().run_report()
        tree = report.span_tree()
        roots = [s["name"] for s in tree[None]]
        assert sorted(roots) == ["eval.run", "pipeline.curation"]
        lines = report.summary_lines()
        assert lines[0].startswith("run test-run: 4 spans")
        assert any("curation.dedup" in line for line in lines)


class TestSerialisation:
    def test_schema_is_embedded(self):
        report = _sample_observability().run_report(meta={"seed": 0})
        doc = json.loads(report.to_json())
        assert doc["schema"] == RUN_REPORT_SCHEMA == "pyranet/run-report/v1"
        assert doc["meta"] == {"seed": 0}

    def test_round_trip(self):
        report = _sample_observability().run_report(meta={"seed": 4})
        restored = RunReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.run_id == "test-run"

    def test_metrics_snapshot_rides_along(self):
        report = _sample_observability().run_report()
        assert report.metrics["counters"]["cache.default.hits"] == 5
        histogram = report.metrics["histograms"]["pipeline.stage_wall_s"]
        assert histogram["count"] == 1


class TestObservabilityHandle:
    def test_noop_is_disabled_and_collects_nothing(self):
        obs = Observability.noop()
        assert not obs.enabled
        with obs.span("s"):
            obs.counter("c").inc()
        report = obs.run_report()
        assert report.spans == []
        assert report.metrics["counters"] == {}

    def test_live_handle_is_enabled(self):
        assert Observability().enabled

    def test_run_id_defaults_to_trace_id(self):
        obs = Observability()
        assert obs.run_id == obs.tracer.trace_id
