"""One observability handle across curation → finetune → eval.

The acceptance test for the unified telemetry API: a single PyraNet run
driven with one :class:`Observability` emits one schema-versioned
RunReport whose spans come from all three subsystems — including
``worker[i]`` spans recorded *inside process-pool workers* during
curation — and whose registry can rebuild the legacy curation trace
byte-for-byte.
"""

import json

import pytest

from repro.core import PyraNet
from repro.obs import Observability
from repro.pipeline import ParallelExecutor, PipelineTrace


@pytest.fixture(scope="module")
def run():
    """One small end-to-end run shared by every assertion."""
    obs = Observability(run_id="e2e")
    pyranet = PyraNet(
        seed=0, n_samples=2, n_test_vectors=8,
        executor=ParallelExecutor(mode="process", max_workers=2,
                                  chunk_size=16),
        obs=obs,
    )
    pyranet.build_dataset(n_github_files=60, n_llm_prompts=2,
                          n_queries_per_prompt=3)
    model = pyranet.finetune("codellama-7b-instruct-sim",
                             recipe="architecture")
    eval_report = pyranet.evaluate(model, suite="machine", n_problems=3)
    return pyranet, eval_report, pyranet.run_report()


class TestOneMergedReport:
    def test_schema_versioned_document(self, run):
        _, _, report = run
        doc = json.loads(report.to_json())
        assert doc["schema"] == "pyranet/run-report/v1"
        assert doc["run_id"] == "e2e"
        assert doc["meta"]["seed"] == 0

    def test_spans_from_all_three_subsystems(self, run):
        _, _, report = run
        names = set(report.span_names())
        # curation
        assert "run.build_dataset" in names
        assert "pipeline.curation" in names
        assert "curation.dedup" in names
        assert "curation.syntax_check" in names
        # fine-tuning
        assert "run.finetune" in names
        assert "finetune.run" in names
        assert any(n.startswith("finetune.phase.") for n in names)
        # evaluation
        assert "eval.run" in names
        assert "pipeline.evaluation" in names
        assert "evaluation.sample+simulate" in names

    def test_process_mode_worker_spans_made_it_back(self, run):
        _, _, report = run
        process_workers = [s for s in report.worker_spans()
                           if s["meta"].get("mode") == "process"]
        assert process_workers, "no spans crossed the process boundary"
        known = {s["span_id"] for s in report.spans}
        for span in process_workers:
            # Recorded in a pool worker: pid-namespaced id, parented
            # under a stage span that exists in the same merged trace.
            assert span["span_id"].startswith("w")
            assert span["parent_id"] in known

    def test_every_span_shares_the_run_trace_id(self, run):
        _, _, report = run
        trace_ids = {s["trace_id"] for s in report.spans}
        assert len(trace_ids) == 1

    def test_legacy_curation_trace_is_a_view_over_the_registry(self, run):
        pyranet, _, _ = run
        legacy = pyranet.curation.report.trace
        rebuilt = PipelineTrace.from_registry(pyranet.obs.registry,
                                              "curation")
        assert rebuilt.to_json() == legacy.to_json()

    def test_legacy_eval_trace_survives_unchanged(self, run):
        _, eval_report, _ = run
        trace = eval_report.trace
        assert trace.pipeline == "evaluation"
        assert trace.stage("sample+simulate").n_in == 3
        # Old serialisation still round-trips.
        assert PipelineTrace.from_json(trace.to_json()).to_json() == \
            trace.to_json()

    def test_drop_and_cache_views_are_populated(self, run):
        _, _, report = run
        # Curation always drops something at this scale.
        assert sum(report.drop_histogram().values()) > 0
        counters = report.metrics["counters"]
        assert counters["pipeline.curation.runs"] == 1
        assert counters["curation.files_in"] > 0
        assert counters["finetune.phases_total"] > 0
        assert counters["eval.problems"] == 3

    def test_store_round_trip_joins_the_same_report(self, run, tmp_path):
        pyranet, _, _ = run
        manifest = pyranet.save_store(tmp_path / "store")
        service = pyranet.load_store(tmp_path / "store", seed=0,
                                    obs=pyranet.obs)
        assert len(service) == manifest.n_entries
        service.curriculum_phases()
        report = pyranet.run_report()
        names = set(report.span_names())
        assert "store.write" in names
        assert "store.open" in names
        assert "store.read_shard" in names
        assert "store.serve.curriculum" in names
        assert report.metrics["counters"]["store.write.entries"] == \
            manifest.n_entries

    def test_write_trace_emits_one_artifact(self, run, tmp_path):
        pyranet, _, _ = run
        path = tmp_path / "trace.json"
        report = pyranet.write_trace(path, meta={"entry": "test"})
        doc = json.loads(path.read_text())
        assert doc["schema"] == "pyranet/run-report/v1"
        assert doc["meta"]["entry"] == "test"
        assert len(doc["spans"]) == len(report.spans) > 0


class TestNoopPath:
    def test_disabled_observability_changes_no_results(self):
        def outcome(obs):
            pyranet = PyraNet(seed=3, n_samples=2, n_test_vectors=8,
                              obs=obs)
            pyranet.build_dataset(n_github_files=40, n_llm_prompts=1,
                                  n_queries_per_prompt=2)
            model = pyranet.finetune("codellama-7b-instruct-sim",
                                     recipe="dataset")
            report = pyranet.evaluate(model, suite="machine",
                                      n_problems=2)
            # Wall times differ run to run; compare the outcomes.
            return (report.summary(),
                    [result.to_dict() for result in report.results])

        live = outcome(Observability())
        noop = outcome(Observability.noop())
        assert live == noop

    def test_noop_run_report_is_empty(self):
        pyranet = PyraNet(seed=1, obs=Observability.noop())
        pyranet.build_dataset(n_github_files=30, n_llm_prompts=1,
                              n_queries_per_prompt=2)
        report = pyranet.run_report()
        assert report.spans == []
        assert report.metrics["counters"] == {}
