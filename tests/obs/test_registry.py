"""MetricRegistry instruments: counters, gauges, histograms, annotations."""

import threading

import pytest

from repro.obs import MetricRegistry, NullRegistry
from repro.obs.registry import Histogram


class TestCounter:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_inc_accumulates(self):
        counter = MetricRegistry().counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_threaded_increments_are_exact(self):
        counter = MetricRegistry().counter("n")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_prefix_view(self):
        registry = MetricRegistry()
        registry.counter("cache.a.hits").inc(2)
        registry.counter("cache.a.misses").inc(1)
        registry.counter("store.read.entries").inc(9)
        assert registry.counters("cache.") == {
            "cache.a.hits": 2, "cache.a.misses": 1}


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricRegistry().gauge("g")
        gauge.set(1)
        gauge.set(7)
        assert gauge.value == 7

    def test_value_is_not_coerced(self):
        # Byte-identical legacy-trace views require ints to stay ints.
        gauge = MetricRegistry().gauge("g")
        gauge.set(3)
        assert type(gauge.value) is int
        gauge.set(3.5)
        assert type(gauge.value) is float


class TestHistogram:
    def test_summary_stats(self):
        histogram = MetricRegistry().histogram("h")
        for value in (1.0, 5.0, 3.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 9.0
        assert snap["min"] == 1.0
        assert snap["max"] == 5.0
        assert snap["samples"] == [1.0, 5.0, 3.0]

    def test_reservoir_is_bounded(self):
        histogram = Histogram("h", max_samples=16)
        for value in range(1000):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["count"] == 1000
        assert len(snap["samples"]) == 16
        assert all(0.0 <= s < 1000.0 for s in snap["samples"])

    def test_reservoir_deterministic_for_same_name_and_seed(self):
        # Identical observation sequences keep byte-identical samples.
        def run():
            histogram = Histogram("stage_wall", max_samples=8, seed=3)
            for value in range(500):
                histogram.observe(float(value))
            return histogram.snapshot()

        assert run() == run()

    def test_reservoir_seed_depends_on_name(self):
        def run(name):
            histogram = Histogram(name, max_samples=8, seed=0)
            for value in range(500):
                histogram.observe(float(value))
            return histogram.snapshot()["samples"]

        assert run("a") != run("b")

    def test_registry_seed_flows_into_reservoir(self):
        def run(seed):
            registry = MetricRegistry(seed=seed)
            histogram = registry.histogram("h", max_samples=8)
            for value in range(500):
                histogram.observe(float(value))
            return histogram.snapshot()["samples"]

        assert run(0) == run(0)
        assert run(0) != run(1)

    def test_percentile(self):
        histogram = MetricRegistry().histogram("h")
        for value in range(101):
            histogram.observe(float(value))
        assert histogram.percentile(0) == 0.0
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(100) == 100.0
        assert MetricRegistry().histogram("empty").percentile(50) is None

    def test_rejects_nonpositive_reservoir(self):
        with pytest.raises(ValueError):
            Histogram("h", max_samples=0)


class TestRegistrySnapshot:
    def test_to_dict_shape(self):
        registry = MetricRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(4)
        registry.histogram("h").observe(1.5)
        registry.annotate("meta", {"k": "v"})
        snap = registry.to_dict()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 4}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["annotations"] == {"meta": {"k": "v"}}

    def test_annotation_lookup_with_default(self):
        registry = MetricRegistry()
        assert registry.annotation("missing") is None
        assert registry.annotation("missing", 3) == 3
        registry.annotate("present", [1, 2])
        assert registry.annotation("present") == [1, 2]


class TestNullRegistry:
    def test_records_nothing(self):
        registry = NullRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(9)
        registry.histogram("h").observe(1.0)
        registry.annotate("a", "x")
        snap = registry.to_dict()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {},
                        "annotations": {}}

    def test_hands_out_shared_instruments(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.histogram("a") is registry.histogram("b")
