"""Process peak-RSS sampling (repro.obs.proc) and its span wiring."""

from repro.obs import Observability, rss_peak_bytes
from repro.obs.proc import _rss_peak_from_proc, _rss_peak_from_rusage


class TestRssPeakBytes:
    def test_returns_plausible_peak(self):
        peak = rss_peak_bytes()
        assert peak is not None
        # A Python interpreter needs at least a few MB and fits in 1 TB.
        assert 1 << 20 < peak < 1 << 40

    def test_monotone_within_process(self):
        first = rss_peak_bytes()
        blob = bytearray(8 << 20)
        second = rss_peak_bytes()
        del blob
        assert second >= first

    def test_fallback_agrees_with_proc(self):
        """Where /proc exists, both sources must be in the same ballpark
        (the rusage fallback is what non-Linux platforms get)."""
        via_proc = _rss_peak_from_proc()
        via_rusage = _rss_peak_from_rusage()
        assert via_rusage is not None and via_rusage > 0
        if via_proc is not None:
            ratio = via_proc / via_rusage
            assert 0.5 < ratio < 2.0


class TestSpanSampling:
    def test_live_span_records_gauge(self):
        obs = Observability()
        with obs.span("work"):
            pass
        report = obs.run_report().to_dict()
        gauges = report["metrics"]["gauges"]
        assert "proc.rss_peak_bytes" in gauges
        assert gauges["proc.rss_peak_bytes"] > 0

    def test_noop_obs_records_nothing(self):
        obs = Observability.noop()
        with obs.span("work"):
            pass
        assert not obs.enabled
        assert obs.registry.to_dict().get("gauges", {}) == {}
