"""Tests for the RTLCoder / OriGen / MG-Verilog / MEV-LLM recipes."""

import random

import pytest

from repro.baselines.mevllm import (
    MultiExpertModel,
    classify_prompt,
    finetune_mevllm,
)
from repro.baselines.mgverilog import (
    finetune_mgverilog,
    high_level_summary,
    low_level_gloss,
)
from repro.baselines.origen import (
    SelfReflectiveModel,
    augment_code,
    finetune_origen,
)
from repro.baselines.rtlcoder import finetune_rtlcoder
from repro.dataset.pipeline import build_pyranet
from repro.dataset.records import Complexity
from repro.model.generator import ConditionalCodeModel, ModelProfile
from repro.model.interfaces import FineTunable, TrainStats
from repro.verilog import check


QUIET = ModelProfile(
    name="quiet", copy_noise=0.0, syntax_noise=0.0,
    retrieval_sharpness=1.2, pretrain_size=0, pretrain_bug_rate=0.0,
)


@pytest.fixture(scope="module")
def dataset():
    return build_pyranet(n_github_files=120, n_llm_prompts=4,
                         n_queries_per_prompt=4, seed=9).dataset


class RecordingModel(FineTunable):
    def __init__(self):
        self.weights = []
        self.examples = []

    def train_batch(self, examples, loss_weight):
        self.weights.append(loss_weight)
        self.examples.extend(examples)
        return TrainStats(examples=len(examples))

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None):
        return "module stub(); endmodule"


class TestRTLCoder:
    def test_weights_track_quality(self, dataset):
        model = RecordingModel()
        finetune_rtlcoder(model, dataset, batch_size=1)
        assert model.weights
        assert all(0.0 <= w <= 1.0 for w in model.weights)
        # Quality feedback produces varied weights, not a constant.
        assert len(set(round(w, 2) for w in model.weights)) > 3

    def test_consumes_whole_dataset(self, dataset):
        model = RecordingModel()
        finetune_rtlcoder(model, dataset, batch_size=16)
        assert len(model.examples) == len(dataset)


class TestOriGen:
    def test_augmentation_keeps_compiling(self, dataset):
        rng = random.Random(0)
        from repro.dataset.records import CompileStatus

        clean = [e for e in dataset.entries
                 if e.compile_status is CompileStatus.CLEAN][:10]
        for entry in clean:
            augmented = augment_code(entry.code, rng)
            assert check(augmented).status == "clean"

    def test_finetune_doubles_clean_data(self, dataset):
        from repro.dataset.records import CompileStatus

        model = RecordingModel()
        finetune_origen(model, dataset)
        n_clean = sum(1 for e in dataset.entries
                      if e.compile_status is CompileStatus.CLEAN)
        assert len(model.examples) == 2 * n_clean

    def test_self_reflection_fixes_syntax(self):
        class BrokenGenerator(FineTunable):
            def train_batch(self, examples, loss_weight):
                return TrainStats()

            def generate(self, description, temperature=0.8, rng=None,
                         module_header=None):
                return ("module m(input a, output y);\n"
                        "  assign y = ~a\nendmodule")  # missing ';'

        wrapped = SelfReflectiveModel(BrokenGenerator())
        out = wrapped.generate("anything")
        assert check(out).status != "syntax"
        assert wrapped.repairs_attempted == 1
        assert wrapped.repairs_succeeded == 1

    def test_self_reflection_leaves_clean_code_alone(self):
        class CleanGenerator(FineTunable):
            def train_batch(self, examples, loss_weight):
                return TrainStats()

            def generate(self, description, temperature=0.8, rng=None,
                         module_header=None):
                return "module m(input a, output y); assign y = a; endmodule"

        wrapped = SelfReflectiveModel(CleanGenerator())
        out = wrapped.generate("anything")
        assert wrapped.repairs_attempted == 0
        assert "assign y = a" in out


class TestMGVerilog:
    def test_summary_is_first_sentence(self):
        text = "First sentence. Second sentence."
        assert high_level_summary(text) == "First sentence."

    def test_gloss_mentions_ports(self):
        gloss = low_level_gloss(
            "module m(input clk, input d, output reg q);\n"
            "  always @(posedge clk) q <= d;\nendmodule")
        assert "input clk" in gloss
        assert "rising edge" in gloss

    def test_finetune_triples_descriptions(self, dataset):
        from repro.dataset.records import CompileStatus

        model = RecordingModel()
        finetune_mgverilog(model, dataset)
        n_clean = sum(1 for e in dataset.entries
                      if e.compile_status is CompileStatus.CLEAN)
        assert len(model.examples) == 3 * n_clean


class TestMEVLLM:
    def test_router_distinguishes_tiers(self):
        assert classify_prompt(
            "Design a synchronous FIFO queue") is Complexity.EXPERT
        assert classify_prompt(
            "an 8-bit ALU with opcodes") is Complexity.ADVANCED
        assert classify_prompt(
            "a simple up counter") is Complexity.INTERMEDIATE
        assert classify_prompt(
            "an and gate") is Complexity.BASIC

    def test_experts_receive_only_their_tier(self, dataset):
        recorders = []

        def factory():
            model = RecordingModel()
            recorders.append(model)
            return model

        multi = MultiExpertModel(expert_factory=factory)
        finetune_mevllm(multi, dataset)
        tiers_per_expert = [
            {e.complexity for e in recorder.examples}
            for recorder in recorders if recorder.examples
        ]
        for tiers in tiers_per_expert:
            assert len(tiers) == 1

    def test_generation_routes(self, dataset):
        multi = MultiExpertModel(
            expert_factory=lambda: ConditionalCodeModel(QUIET, seed=0))
        finetune_mevllm(multi, dataset)
        out = multi.generate("Design a synchronous FIFO queue",
                             rng=random.Random(0))
        assert isinstance(out, str) and out
