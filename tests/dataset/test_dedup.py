"""Tests for Jaccard deduplication with MinHash/LSH."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset.dedup import (
    MinHasher,
    dedup_keep_indices,
    deduplicate,
    jaccard,
    tokenize_for_dedup,
)

CODE_A = """\
module counter(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule
"""

#: CODE_A with only comments/whitespace changed (a near-duplicate).
CODE_A_FORK = """\
// forked from somewhere
module counter(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
      if (rst) q <= 0;
      else q <= q + 1;
  end
endmodule
"""

CODE_B = """\
module shifter(input clk, input sin, output reg [7:0] q);
  always @(posedge clk) q <= {q[6:0], sin};
endmodule
"""


class TestJaccard:
    def test_identical_is_one(self):
        s = tokenize_for_dedup(CODE_A)
        assert jaccard(s, s) == 1.0

    def test_fork_is_near_duplicate(self):
        a = tokenize_for_dedup(CODE_A)
        fork = tokenize_for_dedup(CODE_A_FORK)
        assert jaccard(a, fork) > 0.9

    def test_different_designs_are_distant(self):
        a = tokenize_for_dedup(CODE_A)
        b = tokenize_for_dedup(CODE_B)
        assert jaccard(a, b) < 0.4

    def test_empty_sets(self):
        assert jaccard(frozenset(), frozenset()) == 1.0
        assert jaccard(frozenset(), tokenize_for_dedup(CODE_A)) == 0.0

    def test_comments_ignored(self):
        assert tokenize_for_dedup(CODE_A) == tokenize_for_dedup(
            "// header\n" + CODE_A
        )


class TestMinHash:
    def test_signature_length(self):
        hasher = MinHasher(n_perm=32)
        sig = hasher.signature(tokenize_for_dedup(CODE_A))
        assert len(sig) == 32

    def test_estimate_tracks_jaccard(self):
        hasher = MinHasher(n_perm=128)
        a = tokenize_for_dedup(CODE_A)
        fork = tokenize_for_dedup(CODE_A_FORK)
        b = tokenize_for_dedup(CODE_B)
        est_near = hasher.estimate(hasher.signature(a),
                                   hasher.signature(fork))
        est_far = hasher.estimate(hasher.signature(a),
                                  hasher.signature(b))
        assert est_near > est_far

    def test_identical_signatures_match(self):
        hasher = MinHasher()
        a = hasher.signature(tokenize_for_dedup(CODE_A))
        b = hasher.signature(tokenize_for_dedup(CODE_A))
        assert a == b


class TestDeduplicate:
    def test_exact_duplicates_removed(self):
        report = deduplicate([CODE_A, CODE_B, CODE_A])
        assert report.kept_indices == [0, 1]
        assert report.duplicate_of == {2: 0}

    def test_near_duplicates_removed(self):
        report = deduplicate([CODE_A, CODE_A_FORK, CODE_B], threshold=0.8)
        assert report.kept_indices == [0, 2]

    def test_distinct_kept(self):
        report = deduplicate([CODE_A, CODE_B])
        assert report.kept_indices == [0, 1]
        assert report.n_removed == 0

    def test_first_occurrence_wins(self):
        report = deduplicate([CODE_B, CODE_A, CODE_B])
        assert 0 in report.kept_indices
        assert report.duplicate_of.get(2) == 0

    def test_threshold_separates_close_variants(self):
        # A variant with one extra declaration: high but sub-1.0
        # similarity — removed at 0.8, kept at 0.999.
        variant = CODE_A.replace(
            "endmodule", "  wire spare_net;\nendmodule")
        strict = deduplicate([CODE_A, variant], threshold=0.999)
        assert strict.kept_indices == [0, 1]
        loose = deduplicate([CODE_A, variant], threshold=0.8)
        assert loose.kept_indices == [0]

    def test_bands_must_divide(self):
        with pytest.raises(ValueError):
            deduplicate([CODE_A], n_perm=64, bands=10)

    @pytest.mark.parametrize("n_perm,bands", [(64, 10), (32, 5), (16, 7)])
    def test_bands_must_divide_any_combination(self, n_perm, bands):
        with pytest.raises(ValueError):
            deduplicate([CODE_A], n_perm=n_perm, bands=bands)

    def test_empty_corpus(self):
        report = deduplicate([])
        assert report.kept_indices == []
        assert report.duplicate_of == {}
        assert report.n_removed == 0
        assert dedup_keep_indices([]) == []

    def test_all_identical_corpus(self):
        codes = [CODE_A] * 7
        report = deduplicate(codes)
        assert report.kept_indices == [0]
        assert report.duplicate_of == {i: 0 for i in range(1, 7)}
        assert report.n_removed == 6

    def test_single_file_corpus(self):
        report = deduplicate([CODE_A])
        assert report.kept_indices == [0]
        assert report.duplicate_of == {}

    def test_corpus_of_empty_strings(self):
        # Empty shingle sets have Jaccard 1.0 with each other: all but
        # the first empty file are duplicates.
        report = deduplicate(["", "", ""])
        assert report.kept_indices == [0]
        assert report.duplicate_of == {1: 0, 2: 0}

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from([CODE_A, CODE_B, CODE_A_FORK]),
                    min_size=1, max_size=12))
    def test_kept_plus_removed_covers_input(self, codes):
        report = deduplicate(codes)
        covered = set(report.kept_indices) | set(report.duplicate_of)
        assert covered == set(range(len(codes)))
        # Representatives are always kept entries.
        for rep in report.duplicate_of.values():
            assert rep in report.kept_indices

    @staticmethod
    def _brute_force(codes, threshold):
        """O(n²) reference: first-occurrence-wins greedy dedup using
        exact pairwise Jaccard against already-kept entries."""
        shingles = [tokenize_for_dedup(code) for code in codes]
        kept, duplicate_of = [], {}
        for index in range(len(codes)):
            representative = None
            for candidate in kept:
                if jaccard(shingles[index],
                           shingles[candidate]) >= threshold:
                    representative = candidate
                    break
            if representative is None:
                kept.append(index)
            else:
                duplicate_of[index] = representative
        return kept, duplicate_of

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sampled_from([
                CODE_A, CODE_A_FORK, CODE_B,
                CODE_B.replace("shifter", "shifter2"),
                "",  # degenerate empty file
                "module t(input a, output b); assign b = ~a; endmodule",
            ]),
            min_size=0, max_size=14,
        ),
        st.sampled_from([0.7, 0.8, 0.9]),
    )
    def test_lsh_agrees_with_brute_force(self, codes, threshold):
        """MinHash/LSH is an indexing accelerator, not a different
        decision rule: on small corpora it must match exact pairwise
        Jaccard exactly (the sampled pool keeps similarities far from
        the threshold, so band-recall cannot flip a decision)."""
        report = deduplicate(codes, threshold=threshold)
        kept, duplicate_of = self._brute_force(codes, threshold)
        assert report.kept_indices == kept
        assert report.duplicate_of == duplicate_of
