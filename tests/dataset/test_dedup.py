"""Tests for Jaccard deduplication with MinHash/LSH."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset.dedup import (
    MinHasher,
    deduplicate,
    jaccard,
    tokenize_for_dedup,
)

CODE_A = """\
module counter(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule
"""

#: CODE_A with only comments/whitespace changed (a near-duplicate).
CODE_A_FORK = """\
// forked from somewhere
module counter(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
      if (rst) q <= 0;
      else q <= q + 1;
  end
endmodule
"""

CODE_B = """\
module shifter(input clk, input sin, output reg [7:0] q);
  always @(posedge clk) q <= {q[6:0], sin};
endmodule
"""


class TestJaccard:
    def test_identical_is_one(self):
        s = tokenize_for_dedup(CODE_A)
        assert jaccard(s, s) == 1.0

    def test_fork_is_near_duplicate(self):
        a = tokenize_for_dedup(CODE_A)
        fork = tokenize_for_dedup(CODE_A_FORK)
        assert jaccard(a, fork) > 0.9

    def test_different_designs_are_distant(self):
        a = tokenize_for_dedup(CODE_A)
        b = tokenize_for_dedup(CODE_B)
        assert jaccard(a, b) < 0.4

    def test_empty_sets(self):
        assert jaccard(frozenset(), frozenset()) == 1.0
        assert jaccard(frozenset(), tokenize_for_dedup(CODE_A)) == 0.0

    def test_comments_ignored(self):
        assert tokenize_for_dedup(CODE_A) == tokenize_for_dedup(
            "// header\n" + CODE_A
        )


class TestMinHash:
    def test_signature_length(self):
        hasher = MinHasher(n_perm=32)
        sig = hasher.signature(tokenize_for_dedup(CODE_A))
        assert len(sig) == 32

    def test_estimate_tracks_jaccard(self):
        hasher = MinHasher(n_perm=128)
        a = tokenize_for_dedup(CODE_A)
        fork = tokenize_for_dedup(CODE_A_FORK)
        b = tokenize_for_dedup(CODE_B)
        est_near = hasher.estimate(hasher.signature(a),
                                   hasher.signature(fork))
        est_far = hasher.estimate(hasher.signature(a),
                                  hasher.signature(b))
        assert est_near > est_far

    def test_identical_signatures_match(self):
        hasher = MinHasher()
        a = hasher.signature(tokenize_for_dedup(CODE_A))
        b = hasher.signature(tokenize_for_dedup(CODE_A))
        assert a == b


class TestDeduplicate:
    def test_exact_duplicates_removed(self):
        report = deduplicate([CODE_A, CODE_B, CODE_A])
        assert report.kept_indices == [0, 1]
        assert report.duplicate_of == {2: 0}

    def test_near_duplicates_removed(self):
        report = deduplicate([CODE_A, CODE_A_FORK, CODE_B], threshold=0.8)
        assert report.kept_indices == [0, 2]

    def test_distinct_kept(self):
        report = deduplicate([CODE_A, CODE_B])
        assert report.kept_indices == [0, 1]
        assert report.n_removed == 0

    def test_first_occurrence_wins(self):
        report = deduplicate([CODE_B, CODE_A, CODE_B])
        assert 0 in report.kept_indices
        assert report.duplicate_of.get(2) == 0

    def test_threshold_separates_close_variants(self):
        # A variant with one extra declaration: high but sub-1.0
        # similarity — removed at 0.8, kept at 0.999.
        variant = CODE_A.replace(
            "endmodule", "  wire spare_net;\nendmodule")
        strict = deduplicate([CODE_A, variant], threshold=0.999)
        assert strict.kept_indices == [0, 1]
        loose = deduplicate([CODE_A, variant], threshold=0.8)
        assert loose.kept_indices == [0]

    def test_bands_must_divide(self):
        with pytest.raises(ValueError):
            deduplicate([CODE_A], n_perm=64, bands=10)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from([CODE_A, CODE_B, CODE_A_FORK]),
                    min_size=1, max_size=12))
    def test_kept_plus_removed_covers_input(self, codes):
        report = deduplicate(codes)
        covered = set(report.kept_indices) | set(report.duplicate_of)
        assert covered == set(range(len(codes)))
        # Representatives are always kept entries.
        for rep in report.duplicate_of.values():
            assert rep in report.kept_indices
