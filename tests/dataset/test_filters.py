"""Tests for the filter funnel."""

import pytest

from repro.dataset.filters import (
    has_module,
    is_readable,
    run_filter_funnel,
    syntax_filter,
)

GOOD = "module m(input a, output y);\n  assign y = ~a;\nendmodule\n"
DEP = "module m(input a, output y);\n  missing u(.x(a), .y(y));\nendmodule\n"
BAD = "module m(input a output y); endmodule"


class TestStageFilters:
    def test_empty_rejected(self):
        assert not is_readable("").kept

    def test_whitespace_rejected(self):
        assert not is_readable("  \n\t \n").kept

    def test_binary_garbage_rejected(self):
        garbage = "".join(chr(0x80 + i % 100) for i in range(64))
        assert not is_readable(garbage).kept

    def test_normal_text_kept(self):
        assert is_readable(GOOD).kept

    def test_module_filter(self):
        assert has_module(GOOD).kept
        assert not has_module("// just a comment\n").kept
        assert not has_module("/* module fake */\n").kept

    def test_commented_module_not_counted(self):
        assert not has_module("// module ghost(input a);\n").kept

    def test_syntax_filter_clean(self):
        decision, result = syntax_filter(GOOD)
        assert decision.kept and result.status == "clean"

    def test_syntax_filter_dependency_kept(self):
        decision, result = syntax_filter(DEP)
        assert decision.kept
        assert result.status == "dependency"
        assert decision.reason == "dependency issues"

    def test_syntax_filter_rejects_broken(self):
        decision, _ = syntax_filter(BAD)
        assert not decision.kept


class TestFunnel:
    def test_counts_add_up(self):
        contents = [GOOD, DEP, BAD, "", "just a readme, not verilog"]
        survivors, stats = run_filter_funnel(contents)
        assert stats.collected == 5
        assert stats.after_empty_broken == 4
        assert stats.after_module_decl == 3
        assert stats.after_syntax == 2
        assert stats.clean == 1
        assert stats.dependency_only == 1
        assert {s.index for s in survivors} == {0, 1}

    def test_removal_accounting(self):
        contents = [GOOD, "", BAD]
        _, stats = run_filter_funnel(contents)
        assert stats.removed["empty_broken"] == 1
        assert stats.removed["syntax_check"] == 1

    def test_dedup_hook(self):
        contents = [GOOD, GOOD, DEP]
        survivors, stats = run_filter_funnel(
            contents, dedup=lambda texts: [0, 2]
        )
        assert stats.after_dedup == 2
        assert stats.removed["dedup"] == 1
        assert {s.index for s in survivors} == {0, 2}

    def test_empty_input(self):
        survivors, stats = run_filter_funnel([])
        assert survivors == []
        assert stats.collected == 0
