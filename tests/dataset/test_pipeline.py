"""Integration tests for curation: layering, pipeline, corruption, IO."""

import dataclasses
import random

import pytest

from repro.corpus.github_sim import GitHubScrapeSimulator, QualityProfile
from repro.dataset.complexity import classify_code
from repro.dataset.corrupt import shuffle_labels
from repro.dataset.dedup import dedup_keep_indices
from repro.dataset.describe import describe_source
from repro.dataset.filters import run_filter_funnel
from repro.dataset.io import load_jsonl, save_jsonl
from repro.dataset.layering import assign_layers, layer_for
from repro.dataset.pipeline import (
    CurationPipeline,
    PipelineReport,
    build_pyranet,
)
from repro.dataset.ranking import score_code
from repro.dataset.records import (
    CompileStatus,
    Complexity,
    DatasetEntry,
    PyraNetDataset,
)
from repro.pipeline import ParallelExecutor


def _legacy_curate(raw_files, seed):
    """The seed implementation: one monolithic loop over the legacy
    filter funnel.  Kept here as the golden reference the staged
    engine must reproduce byte for byte."""
    contents = [f.content for f in raw_files]
    provenance = [
        {"origin": f.origin, "path": f.path, "description": None}
        for f in raw_files
    ]
    survivors, funnel = run_filter_funnel(
        contents, dedup=lambda texts: dedup_keep_indices(texts, 0.8)
    )
    dataset = PyraNetDataset()
    for position, survivor in enumerate(survivors):
        meta = provenance[survivor.index]
        status = (
            CompileStatus.CLEAN
            if survivor.check_result.status == "clean"
            else CompileStatus.DEPENDENCY
        )
        detail = ""
        if status is CompileStatus.DEPENDENCY:
            issues = survivor.check_result.dependency_issues
            detail = issues[0].message if issues else "dependency issues"
        dataset.add(DatasetEntry(
            entry_id=f"pyranet-{seed}-{position:06d}",
            code=survivor.content,
            description=meta["description"]
            or describe_source(survivor.content),
            ranking=score_code(survivor.content),
            complexity=classify_code(survivor.content),
            compile_status=status,
            compile_detail=detail,
            origin=meta["origin"],
            source_path=meta["path"],
            module_names=list(survivor.check_result.modules),
        ))
    layers = assign_layers(dataset.entries)
    return dataset, funnel, layers


def _entry(ranking, status=CompileStatus.CLEAN, entry_id="e"):
    return DatasetEntry(entry_id=entry_id, code="module m; endmodule",
                        ranking=ranking, compile_status=status)


class TestLayering:
    @pytest.mark.parametrize("ranking,layer", [
        (20, 1), (19, 2), (15, 2), (14, 3), (10, 3),
        (9, 4), (5, 4), (4, 5), (1, 5), (0, 6),
    ])
    def test_rank_ranges(self, ranking, layer):
        assert layer_for(_entry(ranking)) == layer

    def test_dependency_always_layer6(self):
        entry = _entry(20, CompileStatus.DEPENDENCY)
        assert layer_for(entry) == 6

    def test_assign_layers_populates_report(self):
        entries = [_entry(r, entry_id=str(r)) for r in (20, 18, 12, 7, 3, 0)]
        report = assign_layers(entries)
        assert report.sizes == {1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1}
        assert all(e.layer > 0 for e in entries)


class TestPipeline:
    @pytest.fixture(scope="class")
    def curated(self):
        scraper = GitHubScrapeSimulator(seed=11)
        pipeline = CurationPipeline(seed=11)
        return pipeline.run(scraper.scrape(250))

    def test_funnel_monotone(self, curated):
        funnel = curated.report.funnel
        assert (funnel.collected >= funnel.after_empty_broken
                >= funnel.after_module_decl >= funnel.after_dedup
                >= funnel.after_syntax)

    def test_no_syntax_entries_survive(self, curated):
        for entry in curated.dataset:
            assert entry.compile_status is not CompileStatus.SYNTAX

    def test_layers_1_to_5_compile_clean(self, curated):
        for entry in curated.dataset:
            if 1 <= entry.layer <= 5:
                assert entry.compile_status is CompileStatus.CLEAN

    def test_layer6_is_dependency_or_rank0(self, curated):
        for entry in curated.dataset.layer(6):
            assert (entry.compile_status is CompileStatus.DEPENDENCY
                    or entry.ranking == 0)

    def test_every_entry_labelled(self, curated):
        for entry in curated.dataset:
            assert entry.description
            assert 0 <= entry.ranking <= 20
            assert isinstance(entry.complexity, Complexity)
            assert entry.module_names

    def test_duplicates_removed(self, curated):
        codes = [e.code for e in curated.dataset]
        assert len(set(codes)) == len(codes)

    def test_curriculum_order_sorted(self, curated):
        for layer in curated.dataset.trainable_layers():
            ordered = curated.dataset.curriculum_order(layer)
            tiers = [int(e.complexity) for e in ordered]
            assert tiers == sorted(tiers)

    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_golden_equivalence_with_seed_implementation(self, seed, mode):
        """The staged engine reproduces the monolithic seed pipeline
        exactly: same entries (ids, codes, labels), same funnel."""
        raw_files = GitHubScrapeSimulator(seed=seed).scrape(150)
        ref_dataset, ref_funnel, ref_layers = _legacy_curate(raw_files, seed)
        result = CurationPipeline(
            seed=seed, executor=ParallelExecutor(mode=mode, max_workers=4)
        ).run(raw_files)
        assert result.report.funnel == ref_funnel
        assert len(result.dataset) == len(ref_dataset)
        for ours, reference in zip(result.dataset, ref_dataset):
            # The seed pipeline predates design-family provenance and
            # the formal tier, so compare everything but those tags…
            assert dataclasses.replace(
                ours, family_id="", family_role="",
                n_family_variants=0, family_similarity=0.0,
                verified=False, verified_detail="") == reference
            # …and check the tags are internally consistent instead.
            if ours.family_role:
                assert ours.family_role == "canonical"
                assert ours.family_id.startswith(f"fam-{seed}-")
        assert result.report.layers.sizes == ref_layers.sizes

    def test_trace_reports_every_stage(self, curated):
        trace = curated.report.trace
        names = [m.name for m in trace.stages]
        assert names == ["empty_broken", "module_decl", "dedup",
                         "syntax_check", "rank_label", "formal_verify",
                         "describe", "assemble", "layer"]
        assert all(m.wall_time_s >= 0.0 for m in trace.stages)
        funnel = curated.report.funnel
        assert trace.stage("empty_broken").n_in == funnel.collected
        assert trace.stage("syntax_check").n_out == funnel.after_syntax
        assert trace.drop_histogram()  # something always gets dropped

    def test_trace_records_dedup_drop_reason(self, curated):
        dedup = curated.report.trace.stage("dedup")
        assert dedup.n_dropped == dedup.drops.get("duplicate", 0)

    def test_report_json_round_trip(self, curated):
        restored = PipelineReport.from_json(curated.report.to_json())
        assert restored.funnel == curated.report.funnel
        assert restored.layers == curated.report.layers
        assert restored.trace.to_dict() == curated.report.trace.to_dict()

    def test_shared_cache_hits_on_second_run(self):
        from repro.pipeline import ResultCache

        raw_files = GitHubScrapeSimulator(seed=5).scrape(80)
        cache = ResultCache()
        pipeline = CurationPipeline(seed=5, cache=cache)
        first = pipeline.run(raw_files)
        second = pipeline.run(raw_files)
        syntax = second.report.trace.stage("syntax_check")
        assert syntax.cache_misses == 0
        assert syntax.cache_hits > 0
        assert [e.code for e in first.dataset] == [
            e.code for e in second.dataset]

    def test_build_pyranet_end_to_end(self):
        result = build_pyranet(n_github_files=80, n_llm_prompts=3,
                               n_queries_per_prompt=4, seed=2)
        assert len(result.dataset) > 10
        assert result.report.n_generated_llm == 12
        assert any("llm" == e.origin for e in result.dataset)
        assert any("github" == e.origin for e in result.dataset)
        lines = result.report.summary_lines()
        assert any("layer 6" in line for line in lines)


class TestCorruption:
    def _dataset(self):
        result = build_pyranet(n_github_files=60, n_llm_prompts=2,
                               n_queries_per_prompt=3, seed=4)
        return result.dataset

    def test_shuffle_moves_every_label(self):
        dataset = self._dataset()
        shuffled = shuffle_labels(dataset, seed=1)
        assert len(shuffled) == len(dataset)
        moved = sum(
            1 for a, b in zip(dataset.entries, shuffled.entries)
            if a.description != b.description
        )
        # A derangement moves all labels except accidental equals.
        assert moved > 0.7 * len(dataset)

    def test_codes_unchanged(self):
        dataset = self._dataset()
        shuffled = shuffle_labels(dataset, seed=1)
        assert [e.code for e in dataset] == [e.code for e in shuffled]

    def test_original_untouched(self):
        dataset = self._dataset()
        before = [e.description for e in dataset]
        shuffle_labels(dataset, seed=2)
        assert [e.description for e in dataset] == before

    def test_multiset_of_rankings_preserved(self):
        dataset = self._dataset()
        shuffled = shuffle_labels(dataset, seed=3)
        assert sorted(e.ranking for e in dataset) == sorted(
            e.ranking for e in shuffled)


class TestIO:
    def test_roundtrip(self, tmp_path):
        result = build_pyranet(n_github_files=40, n_llm_prompts=2,
                               n_queries_per_prompt=3, seed=6)
        path = tmp_path / "pyranet.jsonl"
        n = save_jsonl(result.dataset, path)
        assert n == len(result.dataset)
        loaded = load_jsonl(path)
        assert len(loaded) == len(result.dataset)
        for a, b in zip(result.dataset, loaded):
            assert a.code == b.code
            assert a.ranking == b.ranking
            assert a.complexity == b.complexity
            assert a.compile_status == b.compile_status
            assert a.layer == b.layer

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"not": "closed"\n')
        with pytest.raises(ValueError):
            load_jsonl(path)
