"""Integration tests for curation: layering, pipeline, corruption, IO."""

import random

import pytest

from repro.corpus.github_sim import GitHubScrapeSimulator, QualityProfile
from repro.dataset.corrupt import shuffle_labels
from repro.dataset.io import load_jsonl, save_jsonl
from repro.dataset.layering import assign_layers, layer_for
from repro.dataset.pipeline import CurationPipeline, build_pyranet
from repro.dataset.records import (
    CompileStatus,
    Complexity,
    DatasetEntry,
    PyraNetDataset,
)


def _entry(ranking, status=CompileStatus.CLEAN, entry_id="e"):
    return DatasetEntry(entry_id=entry_id, code="module m; endmodule",
                        ranking=ranking, compile_status=status)


class TestLayering:
    @pytest.mark.parametrize("ranking,layer", [
        (20, 1), (19, 2), (15, 2), (14, 3), (10, 3),
        (9, 4), (5, 4), (4, 5), (1, 5), (0, 6),
    ])
    def test_rank_ranges(self, ranking, layer):
        assert layer_for(_entry(ranking)) == layer

    def test_dependency_always_layer6(self):
        entry = _entry(20, CompileStatus.DEPENDENCY)
        assert layer_for(entry) == 6

    def test_assign_layers_populates_report(self):
        entries = [_entry(r, entry_id=str(r)) for r in (20, 18, 12, 7, 3, 0)]
        report = assign_layers(entries)
        assert report.sizes == {1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1}
        assert all(e.layer > 0 for e in entries)


class TestPipeline:
    @pytest.fixture(scope="class")
    def curated(self):
        scraper = GitHubScrapeSimulator(seed=11)
        pipeline = CurationPipeline(seed=11)
        return pipeline.run(scraper.scrape(250))

    def test_funnel_monotone(self, curated):
        funnel = curated.report.funnel
        assert (funnel.collected >= funnel.after_empty_broken
                >= funnel.after_module_decl >= funnel.after_dedup
                >= funnel.after_syntax)

    def test_no_syntax_entries_survive(self, curated):
        for entry in curated.dataset:
            assert entry.compile_status is not CompileStatus.SYNTAX

    def test_layers_1_to_5_compile_clean(self, curated):
        for entry in curated.dataset:
            if 1 <= entry.layer <= 5:
                assert entry.compile_status is CompileStatus.CLEAN

    def test_layer6_is_dependency_or_rank0(self, curated):
        for entry in curated.dataset.layer(6):
            assert (entry.compile_status is CompileStatus.DEPENDENCY
                    or entry.ranking == 0)

    def test_every_entry_labelled(self, curated):
        for entry in curated.dataset:
            assert entry.description
            assert 0 <= entry.ranking <= 20
            assert isinstance(entry.complexity, Complexity)
            assert entry.module_names

    def test_duplicates_removed(self, curated):
        codes = [e.code for e in curated.dataset]
        assert len(set(codes)) == len(codes)

    def test_curriculum_order_sorted(self, curated):
        for layer in curated.dataset.trainable_layers():
            ordered = curated.dataset.curriculum_order(layer)
            tiers = [int(e.complexity) for e in ordered]
            assert tiers == sorted(tiers)

    def test_build_pyranet_end_to_end(self):
        result = build_pyranet(n_github_files=80, n_llm_prompts=3,
                               n_queries_per_prompt=4, seed=2)
        assert len(result.dataset) > 10
        assert result.report.n_generated_llm == 12
        assert any("llm" == e.origin for e in result.dataset)
        assert any("github" == e.origin for e in result.dataset)
        lines = result.report.summary_lines()
        assert any("layer 6" in line for line in lines)


class TestCorruption:
    def _dataset(self):
        result = build_pyranet(n_github_files=60, n_llm_prompts=2,
                               n_queries_per_prompt=3, seed=4)
        return result.dataset

    def test_shuffle_moves_every_label(self):
        dataset = self._dataset()
        shuffled = shuffle_labels(dataset, seed=1)
        assert len(shuffled) == len(dataset)
        moved = sum(
            1 for a, b in zip(dataset.entries, shuffled.entries)
            if a.description != b.description
        )
        # A derangement moves all labels except accidental equals.
        assert moved > 0.7 * len(dataset)

    def test_codes_unchanged(self):
        dataset = self._dataset()
        shuffled = shuffle_labels(dataset, seed=1)
        assert [e.code for e in dataset] == [e.code for e in shuffled]

    def test_original_untouched(self):
        dataset = self._dataset()
        before = [e.description for e in dataset]
        shuffle_labels(dataset, seed=2)
        assert [e.description for e in dataset] == before

    def test_multiset_of_rankings_preserved(self):
        dataset = self._dataset()
        shuffled = shuffle_labels(dataset, seed=3)
        assert sorted(e.ranking for e in dataset) == sorted(
            e.ranking for e in shuffled)


class TestIO:
    def test_roundtrip(self, tmp_path):
        result = build_pyranet(n_github_files=40, n_llm_prompts=2,
                               n_queries_per_prompt=3, seed=6)
        path = tmp_path / "pyranet.jsonl"
        n = save_jsonl(result.dataset, path)
        assert n == len(result.dataset)
        loaded = load_jsonl(path)
        assert len(loaded) == len(result.dataset)
        for a, b in zip(result.dataset, loaded):
            assert a.code == b.code
            assert a.ranking == b.ranking
            assert a.complexity == b.complexity
            assert a.compile_status == b.compile_status
            assert a.layer == b.layer

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"not": "closed"\n')
        with pytest.raises(ValueError):
            load_jsonl(path)
