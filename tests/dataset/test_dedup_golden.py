"""Golden and property tests for the rewritten MinHash signing.

The signing hot path changed from one salted blake2b per
``(shingle, salt)`` pair to one blake2b per shingle plus seeded
universal-hash lanes ``(a_i * h + b_i) mod p``.  Signatures are
*different numbers* under the two schemes — what must not change is
every downstream decision :func:`~repro.dataset.dedup.deduplicate`
makes.  The golden test here pins exactly that on a seeded 500-file
scrape; the property tests pin the statistical contract (the estimate
tracks exact Jaccard) and the numpy/pure-Python parity the fallback
promises.
"""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

import repro.dataset.dedup as dedup_module
from repro.corpus import GitHubScrapeSimulator
from repro.dataset.dedup import (
    MinHasher,
    band_key,
    deduplicate,
    jaccard,
    tokenize_for_dedup,
)

CODE_A = """\
module counter(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule
"""

CODE_A_FORK = """\
// forked from somewhere
module counter(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
      if (rst) q <= 0;
      else q <= q + 1;
  end
endmodule
"""


def _legacy_hash64(text: str, salt: int) -> int:
    digest = hashlib.blake2b(
        text.encode("utf-8", "replace"), digest_size=8,
        salt=salt.to_bytes(8, "little"),
    ).digest()
    return int.from_bytes(digest, "little")


class LegacySaltedMinHasher(MinHasher):
    """The pre-rewrite scheme: one salted blake2b per (shingle, salt).

    Kept verbatim as the golden baseline — ``deduplicate`` decisions
    must be identical whichever hasher builds the LSH index, because
    candidate verification is exact Jaccard either way.
    """

    def signature(self, shingles):
        if not shingles:
            return tuple([0] * self.n_perm)
        return tuple(
            min(_legacy_hash64(s, salt) for s in shingles)
            for salt in range(self.n_perm)
        )


class TestGoldenDecisions:
    def test_scraped_corpus_decisions_preserved(self):
        """Keep/drop decisions on a seeded 500-file scrape match the
        legacy salted-blake2b signature scheme exactly."""
        corpus = [f.content for f in
                  GitHubScrapeSimulator(seed=11).scrape(500)]
        assert len(corpus) == 500
        new = deduplicate(corpus, threshold=0.8)
        old = deduplicate(corpus, threshold=0.8,
                          hasher=LegacySaltedMinHasher(n_perm=64))
        assert new.kept_indices == old.kept_indices
        assert new.duplicate_of == old.duplicate_of
        # The scrape plants duplicates: the test corpus must actually
        # exercise the drop path, not vacuously agree on "keep all".
        assert new.n_removed > 0

    def test_signature_deterministic_across_instances(self):
        shingles = tokenize_for_dedup(CODE_A)
        assert (MinHasher(n_perm=32).signature(shingles)
                == MinHasher(n_perm=32).signature(shingles))

    def test_seed_changes_signature(self):
        shingles = tokenize_for_dedup(CODE_A)
        assert (MinHasher(n_perm=32, seed=0).signature(shingles)
                != MinHasher(n_perm=32, seed=1).signature(shingles))


class TestNumpyParity:
    def test_pure_python_fallback_matches_vectorised(self, monkeypatch):
        """The fallback is an exact reimplementation, not an
        approximation: identical integers, lane for lane."""
        if dedup_module._np is None:
            pytest.skip("numpy unavailable; only the fallback ran")
        hasher = MinHasher(n_perm=64)
        cases = [tokenize_for_dedup(CODE_A),
                 tokenize_for_dedup(CODE_A_FORK),
                 frozenset(f"shingle {i}" for i in range(200))]
        vectorised = [hasher.signature(s) for s in cases]
        monkeypatch.setattr(dedup_module, "_np", None)
        assert [hasher.signature(s) for s in cases] == vectorised

    def test_small_sets_take_the_loop_path(self):
        # Below the vector threshold both builds run the same loop;
        # the answer must still be a full-width signature.
        sig = MinHasher(n_perm=64).signature(frozenset({"one", "two"}))
        assert len(sig) == 64
        assert all(0 <= lane < dedup_module._MERSENNE_P for lane in sig)


class TestBandKeys:
    def test_band_keys_are_pinned(self):
        """Bucket keys are blake2b digests of the band's 64-bit lanes —
        stable across platforms and Python versions, unlike the builtin
        ``hash(tuple)`` they replaced.  These exact values are the
        regression contract."""
        assert band_key(0, (0,)) == (
            0, hashlib.blake2b((0).to_bytes(8, "little"),
                               digest_size=8).hexdigest())
        assert band_key(3, (1, 2)) == (3, "96a3cf72d606b6a4")
        assert band_key(0, (2 ** 61 - 2, 12345)) == (0, "f74b5c3f5b93d9d4")

    def test_band_index_disambiguates_equal_chunks(self):
        assert band_key(0, (7, 8)) != band_key(1, (7, 8))

    def test_chunk_order_matters(self):
        assert band_key(0, (1, 2)) != band_key(0, (2, 1))


#: CODE_A with one extra declaration: structurally changed (comment
#: and whitespace edits do not move Jaccard — shingles strip both), so
#: the pair's exact similarity is strictly between 0 and 1.
CODE_A_VARIANT = CODE_A.replace("endmodule",
                                "  wire spare_net;\nendmodule")


class TestThresholdBoundary:
    def test_similarity_equal_to_threshold_drops(self):
        """The paper's rule is inclusive: a pair at exactly the
        threshold is a duplicate."""
        similarity = jaccard(tokenize_for_dedup(CODE_A),
                             tokenize_for_dedup(CODE_A_VARIANT))
        assert 0.0 < similarity < 1.0
        at = deduplicate([CODE_A, CODE_A_VARIANT], threshold=similarity)
        assert at.kept_indices == [0]
        assert at.duplicate_of == {1: 0}

    def test_similarity_below_threshold_keeps(self):
        similarity = jaccard(tokenize_for_dedup(CODE_A),
                             tokenize_for_dedup(CODE_A_VARIANT))
        above = deduplicate([CODE_A, CODE_A_VARIANT],
                            threshold=similarity + 1e-9)
        assert above.kept_indices == [0, 1]
        assert above.duplicate_of == {}


@st.composite
def overlapping_sets(draw):
    """Two shingle sets built from shared/private element pools so the
    exact Jaccard spans the whole [0, 1] range."""
    shared = draw(st.integers(min_value=0, max_value=60))
    only_a = draw(st.integers(min_value=0, max_value=60))
    only_b = draw(st.integers(min_value=0, max_value=60))
    a = frozenset(f"shared {i}" for i in range(shared)) | frozenset(
        f"a {i}" for i in range(only_a))
    b = frozenset(f"shared {i}" for i in range(shared)) | frozenset(
        f"b {i}" for i in range(only_b))
    return a, b


class TestEstimateQuality:
    @settings(max_examples=30, deadline=None)
    @given(overlapping_sets())
    def test_estimate_tracks_exact_jaccard(self, sets):
        """Per-pair gross-bias catcher.  The tolerance is deliberately
        loose: a pairwise-independent hash family is not min-wise
        independent, so on *tiny* sets a single pair's estimate can
        legitimately deviate by ~0.3 — what must never happen is the
        estimate collapsing toward 0 or 1 regardless of the true
        similarity.  The tight quality pin is the aggregate test
        below."""
        a, b = sets
        hasher = MinHasher(n_perm=256)
        estimate = hasher.estimate(hasher.signature(a),
                                   hasher.signature(b))
        assert abs(estimate - jaccard(a, b)) <= 0.4

    def test_mean_estimate_error_is_small(self):
        """The statistical contract, pinned deterministically: over 200
        fixed pseudo-random set pairs spanning the whole similarity
        range, the mean |estimate - exact| stays tiny (measured 0.050
        at 256 permutations) and no single pair strays past 0.25.
        Signatures are platform-stable, so this never flakes — a biased
        universal-hash mix moves the mean immediately."""
        import random

        hasher = MinHasher(n_perm=256)
        rng = random.Random(2)
        errors = []
        for trial in range(200):
            shared = rng.randint(0, 80)
            only_a, only_b = rng.randint(0, 80), rng.randint(0, 80)
            a = (frozenset(f"s{trial} {i}" for i in range(shared))
                 | frozenset(f"a{trial} {i}" for i in range(only_a)))
            b = (frozenset(f"s{trial} {i}" for i in range(shared))
                 | frozenset(f"b{trial} {i}" for i in range(only_b)))
            if not a and not b:
                continue
            estimate = hasher.estimate(hasher.signature(a),
                                       hasher.signature(b))
            errors.append(abs(estimate - jaccard(a, b)))
        assert sum(errors) / len(errors) <= 0.08
        assert max(errors) <= 0.25

    def test_disjoint_sets_estimate_near_zero(self):
        hasher = MinHasher(n_perm=256)
        a = frozenset(f"a {i}" for i in range(100))
        b = frozenset(f"b {i}" for i in range(100))
        estimate = hasher.estimate(hasher.signature(a),
                                   hasher.signature(b))
        assert estimate <= 0.05

    def test_identical_sets_estimate_is_one(self):
        hasher = MinHasher(n_perm=128)
        s = tokenize_for_dedup(CODE_A)
        assert hasher.estimate(hasher.signature(s),
                               hasher.signature(s)) == 1.0
