"""The verified tier: formal gating above layer 1, mem/stream parity."""

import pytest

from repro.corpus.github_sim import RawFile
from repro.dataset.layering import LayerReport
from repro.dataset.pipeline import CurationPipeline
from repro.dataset.records import DatasetEntry
from repro.dataset.streaming import StreamingCurationPipeline

# A clean, well-documented design inside the formal subset: it should
# rank 20/20, compile clean, and verify.
VERIFIABLE = """\
// 4-bit synchronous counter with synchronous reset.
// Counts up by one each clock; reset returns it to zero.
module counter4 (
    input clk,
    input rst,
    output reg [3:0] count
);

  initial count = 4'd0;

  // Synchronous state update: reset dominates the increment.
  always @(posedge clk) begin
    if (rst)
      count <= 4'd0;
    else
      count <= count + 4'd1;
  end

endmodule
"""

# Equally clean style-wise (rank 20), but two clock domains — outside
# the single-clock synchronous subset formal verification models.
UNVERIFIABLE = """\
// Dual-clock toggle pair: each output toggles on its own clock.
// The two clock domains are fully independent.
module toggle2 (
    input clk_a,
    input clk_b,
    output reg t_a,
    output reg t_b
);

  initial begin
    t_a = 1'b0;
    t_b = 1'b0;
  end

  // Domain A: toggle every rising edge of clk_a.
  always @(posedge clk_a) begin
    t_a <= ~t_a;
  end

  // Domain B: toggle every rising edge of clk_b.
  always @(posedge clk_b) begin
    t_b <= ~t_b;
  end

endmodule
"""


def raw(path, content):
    return RawFile(path=path, content=content)


@pytest.fixture(scope="module")
def corpus():
    return [raw("verifiable.v", VERIFIABLE), raw("toggle2.v", UNVERIFIABLE)]


@pytest.fixture(scope="module")
def curated(corpus):
    return CurationPipeline(seed=5).run(corpus)


class TestVerifiedGating:
    def test_verifiable_design_gets_the_tier(self, curated):
        by_name = {e.module_names[0]: e for e in curated.dataset}
        entry = by_name["counter4"]
        assert entry.ranking == 20 and entry.layer == 1
        assert entry.verified is True
        assert "sequential" in entry.verified_detail

    def test_unsupported_design_stays_unverified(self, curated):
        by_name = {e.module_names[0]: e for e in curated.dataset}
        entry = by_name["toggle2"]
        assert entry.verified is False
        assert entry.verified_detail  # carries the reason
        assert "unsupported" in entry.verified_detail

    def test_only_layer1_candidates_are_checked(self):
        """A formally perfect design that ranks below 20 must not be
        verified: the tier refines layer 1, it does not replace it."""
        # Strip the comments: same logic, lower documentation score.
        bare = "\n".join(line for line in VERIFIABLE.splitlines()
                         if not line.strip().startswith("//"))
        result = CurationPipeline(seed=5).run([raw("bare.v", bare)])
        (entry,) = result.dataset
        assert entry.ranking < 20
        assert entry.verified is False
        assert entry.verified_detail == ""

    def test_layer_report_counts_verified(self, curated):
        assert curated.report.layers.n_verified == 1

    def test_layer_report_round_trips_n_verified(self):
        report = LayerReport(n_verified=3)
        assert LayerReport.from_dict(report.to_dict()).n_verified == 3

    def test_entry_round_trips_verified_fields(self, curated):
        for entry in curated.dataset:
            back = DatasetEntry.from_dict(entry.to_dict())
            assert back.verified == entry.verified
            assert back.verified_detail == entry.verified_detail


class TestStreamingParity:
    def test_verified_fields_identical_across_paths(self, corpus, curated):
        result = StreamingCurationPipeline(seed=5).run(corpus)
        mem = {e.entry_id: (e.verified, e.verified_detail)
               for e in curated.dataset}
        stream = {e.entry_id: (e.verified, e.verified_detail)
                  for e in result.dataset}
        assert mem == stream
        assert any(flag for flag, _ in stream.values())

    def test_n_verified_identical_across_paths(self, corpus, curated):
        result = StreamingCurationPipeline(seed=5).run(corpus)
        assert (result.report.layers.n_verified
                == curated.report.layers.n_verified == 1)
