"""Tests for ranking, complexity, and description labelling."""

import random

import pytest

from repro.corpus import mutate
from repro.corpus.templates import generate_design
from repro.dataset.complexity import (
    classify_code,
    classify_metrics,
    complexity_score,
)
from repro.dataset.describe import describe_source
from repro.dataset.ranking import rank_code, score_code
from repro.dataset.records import Complexity
from repro.verilog import measure


CLEAN = """\
// Clean parameterised register.
module regbank #(
  parameter WIDTH = 8
) (
  input clk,
  input rst,
  input [WIDTH-1:0] d,
  output reg [WIDTH-1:0] q
);

  always @(posedge clk) begin
    if (rst)
      q <= {WIDTH{1'b0}};
    else
      q <= d;
  end

endmodule
"""


class TestRanking:
    def test_clean_code_scores_top(self):
        assert score_code(CLEAN) == 20

    def test_broken_code_scores_zero(self):
        assert score_code("module nope(input a endmodule") == 0

    def test_score_bounds(self):
        rng = random.Random(0)
        for seed in range(12):
            design = generate_design("alu", random.Random(seed))
            damaged = mutate.degrade_style(design.source, rng, 1.0)
            assert 0 <= score_code(damaged.source) <= 20

    def test_monotone_under_damage(self):
        rng = random.Random(1)
        base = score_code(CLEAN)
        light = mutate.degrade_style(CLEAN, rng, 0.3).source
        heavy = mutate.degrade_style(light, random.Random(2), 1.0).source
        assert score_code(heavy) <= score_code(light) <= base

    def test_rank_code_includes_evidence(self):
        rng = random.Random(3)
        damaged = mutate.degrade_style(CLEAN, rng, 1.0).source
        result = rank_code(damaged)
        assert result.score < 20
        assert result.notes

    def test_blocking_in_clocked_penalised(self):
        bad = CLEAN.replace("q <= d", "q = d").replace(
            "q <= {WIDTH{1'b0}}", "q = {WIDTH{1'b0}}")
        assert score_code(bad) < score_code(CLEAN)


class TestComplexity:
    def test_half_adder_is_basic(self):
        design = generate_design("half_adder", random.Random(0))
        assert classify_code(design.source) is Complexity.BASIC

    def test_fifo_is_advanced_or_expert(self):
        design = generate_design("sync_fifo", random.Random(0))
        tier = classify_code(design.source)
        assert tier in (Complexity.ADVANCED, Complexity.EXPERT)

    def test_generate_loop_scores_above_flat_logic(self):
        design = generate_design(
            "ripple_carry_adder", random.Random(0), params={"WIDTH": 16})
        flat = measure("module m(input a, output y); assign y = a; "
                       "endmodule")
        assert complexity_score(measure(design.source)) > (
            complexity_score(flat) + 2)

    def test_score_monotone_in_features(self):
        simple = measure("module m(input a, output y); assign y = a; "
                         "endmodule")
        rich = measure(generate_design("traffic_light",
                                       random.Random(0)).source)
        assert complexity_score(rich) > complexity_score(simple)

    def test_unparsable_defaults_basic(self):
        assert classify_code("module broken(((") is Complexity.BASIC

    def test_all_tiers_reachable(self):
        seen = set()
        for family in ("half_adder", "mod_n_counter", "sync_fifo",
                       "ripple_carry_adder", "alu", "traffic_light"):
            design = generate_design(family, random.Random(4))
            seen.add(classify_code(design.source))
        assert len(seen) >= 3


class TestDescribe:
    def test_mentions_module_name_and_ports(self):
        description = describe_source(CLEAN)
        assert "regbank" in description
        assert "input 'd'" in description or "'d'" in description

    def test_detects_sequential(self):
        assert "sequential" in describe_source(CLEAN)

    def test_detects_combinational(self):
        text = describe_source(
            "module m(input a, b, output y); assign y = a & b; endmodule")
        assert "combinational" in text

    def test_mentions_fsm(self):
        design = generate_design("traffic_light", random.Random(0))
        assert "finite-state machine" in describe_source(design.source)

    def test_mentions_memory(self):
        design = generate_design("sync_fifo", random.Random(0))
        assert "memory" in describe_source(design.source)

    def test_unparsable_fallback(self):
        text = describe_source("@@@ not verilog @@@")
        assert "could not be parsed" in text

    def test_parameterised_noted(self):
        assert "parameterised by WIDTH" in describe_source(CLEAN)
