"""Tests for ranking, complexity, and description labelling."""

import random

import pytest

from repro.corpus import mutate
from repro.corpus.templates import generate_design
from repro.dataset.complexity import (
    classify_code,
    classify_metrics,
    complexity_score,
)
from repro.dataset.describe import describe_source
from repro.dataset.ranking import (
    rank_code,
    round_half_up,
    score_code,
    score_from_penalty,
    score_many,
)
from repro.dataset.records import Complexity
from repro.verilog import measure


CLEAN = """\
// Clean parameterised register.
module regbank #(
  parameter WIDTH = 8
) (
  input clk,
  input rst,
  input [WIDTH-1:0] d,
  output reg [WIDTH-1:0] q
);

  always @(posedge clk) begin
    if (rst)
      q <= {WIDTH{1'b0}};
    else
      q <= d;
  end

endmodule
"""


class TestRanking:
    def test_clean_code_scores_top(self):
        assert score_code(CLEAN) == 20

    def test_broken_code_scores_zero(self):
        assert score_code("module nope(input a endmodule") == 0

    def test_score_bounds(self):
        rng = random.Random(0)
        for seed in range(12):
            design = generate_design("alu", random.Random(seed))
            damaged = mutate.degrade_style(design.source, rng, 1.0)
            assert 0 <= score_code(damaged.source) <= 20

    def test_monotone_under_damage(self):
        rng = random.Random(1)
        base = score_code(CLEAN)
        light = mutate.degrade_style(CLEAN, rng, 0.3).source
        heavy = mutate.degrade_style(light, random.Random(2), 1.0).source
        assert score_code(heavy) <= score_code(light) <= base

    def test_rank_code_includes_evidence(self):
        rng = random.Random(3)
        damaged = mutate.degrade_style(CLEAN, rng, 1.0).source
        result = rank_code(damaged)
        assert result.score < 20
        assert result.notes

    def test_blocking_in_clocked_penalised(self):
        bad = CLEAN.replace("q <= d", "q = d").replace(
            "q <= {WIDTH{1'b0}}", "q = {WIDTH{1'b0}}")
        assert score_code(bad) < score_code(CLEAN)


class TestRounding:
    """The penalty→score mapping rounds half UP, not half-to-even.

    ``points_per_penalty=2.0`` makes the raw score land exactly on a
    ``.5`` (floats represent these exactly); the default 2.1 never
    does, so the boundary is only reachable through the explicit
    parameter."""

    def test_half_up_at_16_5(self):
        # raw = 20 - 2.0 * 1.75 = 16.5: banker's rounding would give
        # 16 (nearest even); the documented rule gives 17.
        assert score_from_penalty(1.75, 2.0) == 17

    def test_half_up_at_17_5(self):
        # raw = 17.5: both rules give 18 here — pinning it proves the
        # fix didn't overshoot into always-up-by-one.
        assert score_from_penalty(1.25, 2.0) == 18

    def test_round_half_up_primitive(self):
        assert round_half_up(16.5) == 17
        assert round_half_up(17.5) == 18
        assert round_half_up(16.49) == 16
        assert round_half_up(-0.5) == 0

    def test_clamped_to_1_for_parseable_code(self):
        assert score_from_penalty(1000.0) == 1
        assert score_from_penalty(0.0) == 20


class TestScoreMany:
    def test_parity_with_score_code(self):
        rng = random.Random(4)
        codes = [CLEAN, "module nope(input a endmodule", ""]
        for seed in range(9):  # >= 8 samples forces the numpy path
            design = generate_design("alu", random.Random(seed))
            codes.append(mutate.degrade_style(design.source, rng,
                                              rng.random()).source)
        assert score_many(codes) == [score_code(code) for code in codes]

    def test_parity_on_small_batches(self):
        codes = [CLEAN, "module nope(input a endmodule"]
        assert score_many(codes) == [score_code(code) for code in codes]

    def test_empty_batch(self):
        assert score_many([]) == []


class TestComplexity:
    def test_half_adder_is_basic(self):
        design = generate_design("half_adder", random.Random(0))
        assert classify_code(design.source) is Complexity.BASIC

    def test_fifo_is_advanced_or_expert(self):
        design = generate_design("sync_fifo", random.Random(0))
        tier = classify_code(design.source)
        assert tier in (Complexity.ADVANCED, Complexity.EXPERT)

    def test_generate_loop_scores_above_flat_logic(self):
        design = generate_design(
            "ripple_carry_adder", random.Random(0), params={"WIDTH": 16})
        flat = measure("module m(input a, output y); assign y = a; "
                       "endmodule")
        assert complexity_score(measure(design.source)) > (
            complexity_score(flat) + 2)

    def test_score_monotone_in_features(self):
        simple = measure("module m(input a, output y); assign y = a; "
                         "endmodule")
        rich = measure(generate_design("traffic_light",
                                       random.Random(0)).source)
        assert complexity_score(rich) > complexity_score(simple)

    def test_unparsable_defaults_basic(self):
        assert classify_code("module broken(((") is Complexity.BASIC

    def test_all_tiers_reachable(self):
        seen = set()
        for family in ("half_adder", "mod_n_counter", "sync_fifo",
                       "ripple_carry_adder", "alu", "traffic_light"):
            design = generate_design(family, random.Random(4))
            seen.add(classify_code(design.source))
        assert len(seen) >= 3


class TestDescribe:
    def test_mentions_module_name_and_ports(self):
        description = describe_source(CLEAN)
        assert "regbank" in description
        assert "input 'd'" in description or "'d'" in description

    def test_detects_sequential(self):
        assert "sequential" in describe_source(CLEAN)

    def test_detects_combinational(self):
        text = describe_source(
            "module m(input a, b, output y); assign y = a & b; endmodule")
        assert "combinational" in text

    def test_mentions_fsm(self):
        design = generate_design("traffic_light", random.Random(0))
        assert "finite-state machine" in describe_source(design.source)

    def test_mentions_memory(self):
        design = generate_design("sync_fifo", random.Random(0))
        assert "memory" in describe_source(design.source)

    def test_unparsable_fallback(self):
        text = describe_source("@@@ not verilog @@@")
        assert "could not be parsed" in text

    def test_parameterised_noted(self):
        assert "parameterised by WIDTH" in describe_source(CLEAN)
