"""JSONL persistence: crash safety, duplicate ids, unicode, tolerance."""

import json
import os

import pytest

from repro.dataset.io import load_jsonl, save_jsonl
from repro.dataset.records import (
    Complexity,
    CompileStatus,
    DatasetEntry,
    PyraNetDataset,
)


def make_dataset(ids) -> PyraNetDataset:
    dataset = PyraNetDataset()
    for i, entry_id in enumerate(ids):
        dataset.add(DatasetEntry(
            entry_id=entry_id,
            code=f"module m{i}; endmodule",
            description=f"design {i}",
            complexity=Complexity(i % 4),
            layer=(i % 6) + 1,
        ))
    return dataset


class TestCrashSafety:
    def test_no_tmp_sibling_left_behind(self, tmp_path):
        path = tmp_path / "ds.jsonl"
        save_jsonl(make_dataset(["a", "b"]), path)
        assert path.exists()
        assert list(tmp_path.iterdir()) == [path]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "ds.jsonl"
        save_jsonl(make_dataset(["old1", "old2", "old3"]), path)
        save_jsonl(make_dataset(["new1"]), path)
        loaded = load_jsonl(path)
        assert [e.entry_id for e in loaded] == ["new1"]

    def test_failed_replace_preserves_original(self, tmp_path, monkeypatch):
        """If the final rename fails, the previous file is untouched and
        the temporary is cleaned up."""
        path = tmp_path / "ds.jsonl"
        save_jsonl(make_dataset(["keep"]), path)

        import repro.dataset.io as io_module

        def explode(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(io_module.os, "replace", explode)
        with pytest.raises(OSError):
            save_jsonl(make_dataset(["clobber"]), path)
        monkeypatch.undo()

        assert [e.entry_id for e in load_jsonl(path)] == ["keep"]
        assert list(tmp_path.iterdir()) == [path]

    def test_parent_directory_fsynced_after_replace(self, tmp_path,
                                                    monkeypatch):
        """Durability, not just atomicity: the rename lives in the
        parent directory's metadata, so after ``os.replace`` the
        directory itself must be fsynced or power loss can roll the
        new name back."""
        import stat

        events = []
        real_fsync = os.fsync
        real_replace = os.replace

        def spy_fsync(fd):
            kind = ("dir" if stat.S_ISDIR(os.fstat(fd).st_mode)
                    else "file")
            events.append(("fsync", kind))
            real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("replace", ""))
            real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        save_jsonl(make_dataset(["a", "b"]), tmp_path / "ds.jsonl")

        assert ("fsync", "dir") in events
        # Order: file bytes -> rename -> directory entry.
        assert events.index(("fsync", "file")) \
            < events.index(("replace", "")) \
            < events.index(("fsync", "dir"))


class TestDuplicateIds:
    def test_duplicate_id_names_both_lines(self, tmp_path):
        path = tmp_path / "dup.jsonl"
        rows = make_dataset(["x", "y"]).entries
        lines = [json.dumps(r.to_dict()) for r in rows]
        # y at line 2, duplicated at line 4.
        path.write_text("\n".join([lines[0], lines[1], lines[0].replace(
            '"x"', '"z"'), lines[1]]) + "\n")
        with pytest.raises(ValueError) as excinfo:
            load_jsonl(path)
        message = str(excinfo.value)
        assert "duplicate entry id 'y'" in message
        assert ":4:" in message and "line 2" in message

    def test_unique_ids_load_fine(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        save_jsonl(make_dataset(["a", "b", "c"]), path)
        assert len(load_jsonl(path)) == 3


class TestUnicodeRoundTrip:
    def test_non_ascii_identifiers_and_comments(self, tmp_path):
        dataset = PyraNetDataset()
        dataset.add(DatasetEntry(
            entry_id="zähler-模块-1",
            code="module compteur_éléva(input clk, output reg [7:0] q);\n"
                 "  // счётчик: 模块注释 — ±1, Δt ≥ 5ns\n"
                 "  always @(posedge clk) q <= q + 1;\nendmodule",
            description="Ein 8-Bit-Zähler (счётчик) — 計数器 ✓",
            ranking=17,
            complexity=Complexity.INTERMEDIATE,
            layer=2,
        ))
        path = tmp_path / "unicode.jsonl"
        save_jsonl(dataset, path)
        # ensure_ascii=False: the bytes on disk are real UTF-8, not \u escapes.
        assert "Zähler" in path.read_text(encoding="utf-8")
        (entry,) = load_jsonl(path)
        assert entry.to_dict() == dataset.entries[0].to_dict()


class TestFromDictTolerance:
    def payload(self):
        return DatasetEntry(
            entry_id="e1", code="module m; endmodule",
            complexity=Complexity.ADVANCED,
            compile_status=CompileStatus.DEPENDENCY,
            layer=3,
        ).to_dict()

    def test_unknown_keys_ignored(self):
        data = self.payload()
        data["future_label"] = "whatever"
        data["store_digest"] = "abc123"
        entry = DatasetEntry.from_dict(data)
        assert entry.entry_id == "e1"
        assert entry.complexity is Complexity.ADVANCED
        assert entry.compile_status is CompileStatus.DEPENDENCY
        assert not hasattr(entry, "future_label")

    def test_round_trip_unchanged_by_extras(self):
        data = self.payload()
        data["extra"] = [1, 2, 3]
        assert DatasetEntry.from_dict(data).to_dict() == self.payload()

    def test_missing_required_key_still_raises(self):
        data = self.payload()
        del data["complexity"]
        with pytest.raises(KeyError):
            DatasetEntry.from_dict(data)

    def test_bad_enum_value_raises(self):
        data = self.payload()
        data["complexity"] = "IMPOSSIBLE"
        with pytest.raises(KeyError):
            DatasetEntry.from_dict(data)
