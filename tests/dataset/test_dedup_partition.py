"""Band-partitioned distributed dedup ≡ the sequential algorithm.

The map-reduce decomposition (:func:`deduplicate_partitioned` and the
pieces it is built from) must reproduce :func:`deduplicate` exactly —
kept indices, representative mapping, *and* the candidate-pairs-checked
count — for every partition count and every deterministic band-key →
partition assignment, including adversarially random ones.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset.dedup import (
    MinHasher,
    band_candidate_pairs,
    deduplicate,
    deduplicate_partitioned,
    merge_band_candidates,
    resolve_duplicates,
    signature_band_keys,
    tokenize_for_dedup,
)
from repro.pipeline import ParallelExecutor

# A tiny vocabulary so random corpora collide often: near-duplicates,
# exact duplicates, and unrelated files all occur.
_WORDS = ["module", "wire", "assign", "input", "output", "reg",
          "always", "endmodule"]


def _code(rng: random.Random) -> str:
    n = rng.randint(4, 24)
    return " ".join(rng.choice(_WORDS) for _ in range(n))


def corpus_strategy():
    return st.builds(
        lambda seed, n: [_code(random.Random(seed * 1000 + i))
                         for i in range(n)],
        st.integers(0, 50), st.integers(0, 40))


class TestBandKeys:
    def test_band_count_and_determinism(self):
        hasher = MinHasher(64)
        signature = hasher.signature(tokenize_for_dedup(
            "module m wire a assign b endmodule"))
        keys = signature_band_keys(signature, 16)
        assert len(keys) == 16
        assert keys == signature_band_keys(signature, 16)
        assert [band for band, _ in keys] == list(range(16))

    def test_bands_must_divide_permutations(self):
        hasher = MinHasher(64)
        signature = hasher.signature(frozenset({"a b c"}))
        with pytest.raises(ValueError):
            signature_band_keys(signature, 7)

    def test_identical_signatures_share_every_key(self):
        hasher = MinHasher(64)
        shingles = tokenize_for_dedup("module m wire a assign b endmodule")
        first = signature_band_keys(hasher.signature(shingles), 16)
        second = signature_band_keys(hasher.signature(shingles), 16)
        assert first == second


class TestMapSide:
    def test_pairs_are_sorted_unique_ascending(self):
        keyed = [((0, "k"), 3), ((0, "k"), 1), ((0, "k"), 3),
                 ((0, "k"), 0), ((1, "j"), 5)]
        pairs = band_candidate_pairs(keyed)
        assert pairs == [(0, 1), (0, 3), (1, 3)]

    def test_merge_dedups_across_partitions(self):
        merged = merge_band_candidates([[(0, 2), (1, 2)],
                                        [(0, 2), (0, 4)]])
        assert merged == {2: [0, 1], 4: [0]}

    def test_empty(self):
        assert band_candidate_pairs([]) == []
        assert merge_band_candidates([[], []]) == {}


def assert_reports_equal(partitioned, sequential):
    assert partitioned.kept_indices == sequential.kept_indices
    assert partitioned.duplicate_of == sequential.duplicate_of
    assert (partitioned.candidate_pairs_checked
            == sequential.candidate_pairs_checked)


class TestEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(corpus_strategy(), st.integers(1, 20))
    def test_any_partition_count(self, codes, n_partitions):
        sequential = deduplicate(codes)
        partitioned = deduplicate_partitioned(
            codes, n_partitions=n_partitions)
        assert_reports_equal(partitioned, sequential)

    @settings(max_examples=30, deadline=None)
    @given(corpus_strategy(), st.integers(1, 8), st.integers(0, 1000))
    def test_random_band_assignment(self, codes, n_partitions,
                                    assignment_seed):
        """Not just round-robin: ANY deterministic key → partition
        function must give identical decisions, because collisions are
        found per key and unioned."""
        def partition_of(key):
            return random.Random(
                f"{assignment_seed}:{key[0]}:{key[1]}"
            ).randrange(n_partitions)

        sequential = deduplicate(codes)
        partitioned = deduplicate_partitioned(
            codes, n_partitions=n_partitions, partition_of=partition_of)
        assert_reports_equal(partitioned, sequential)

    @settings(max_examples=10, deadline=None)
    @given(corpus_strategy())
    def test_executor_mapper(self, codes):
        executor = ParallelExecutor(mode="thread", max_workers=4)
        sequential = deduplicate(codes)
        partitioned = deduplicate_partitioned(
            codes, n_partitions=4, mapper=executor.map)
        assert_reports_equal(partitioned, sequential)

    def test_threshold_respected(self):
        codes = ["module m wire a assign b endmodule"] * 3
        strict = deduplicate_partitioned(codes, threshold=1.0)
        assert strict.duplicate_of == {1: 0, 2: 0}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            deduplicate_partitioned(["a"], n_partitions=0)
        with pytest.raises(ValueError):
            deduplicate_partitioned(["a"], bands=7)


class TestResolve:
    def test_resolve_mirrors_sequential_decisions(self):
        rng = random.Random(11)
        codes = [_code(rng) for _ in range(30)]
        hasher = MinHasher(64)
        shingles = [tokenize_for_dedup(code) for code in codes]
        keyed = []
        for index, shingle_set in enumerate(shingles):
            for key in signature_band_keys(
                    hasher.signature(shingle_set), 16):
                keyed.append((key, index))
        adjacency = merge_band_candidates([band_candidate_pairs(keyed)])
        report = resolve_duplicates(range(len(codes)), adjacency,
                                    lambda i: shingles[i])
        assert_reports_equal(report, deduplicate(codes, hasher=hasher))
