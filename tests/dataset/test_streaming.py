"""Golden equivalence of the streaming curate path.

:class:`StreamingCurationPipeline` must reproduce the in-memory
:class:`CurationPipeline` byte-for-byte — entries, layer assignment,
funnel, drop histograms, dedup keep/drop decisions — under every
executor mode, batch size, spill mode, and across a kill + resume.
"""

import json
import random

import pytest

from repro.corpus.github_sim import GitHubScrapeSimulator
from repro.corpus.keywords import build_keyword_database
from repro.corpus.llm_sim import SimulatedCommercialLLM
from repro.dataset.pipeline import CurationPipeline
from repro.dataset.streaming import (
    StreamingCurationPipeline,
    chain_batches,
    generated_batches,
    raw_file_batches,
)
from repro.obs import Observability
from repro.pipeline import ParallelExecutor
from repro.resilience import Checkpointer, Resilience

SEED = 0
N_FILES = 240
N_PROMPTS = 3


def make_raw_files():
    return GitHubScrapeSimulator(seed=SEED).scrape(N_FILES)


def make_generated():
    db = build_keyword_database()
    llm = SimulatedCommercialLLM(seed=SEED + 1)
    rng = random.Random(SEED + 2)
    generated = []
    for _ in range(N_PROMPTS):
        generated.extend(llm.generate_batch(db.sample(rng), n_queries=8))
    return generated


@pytest.fixture(scope="module")
def corpus():
    return make_raw_files(), make_generated()


@pytest.fixture(scope="module")
def golden(corpus):
    raw_files, generated = corpus
    return CurationPipeline(
        seed=SEED, executor=ParallelExecutor.serial()
    ).run(raw_files, generated)


def dataset_bytes(dataset) -> bytes:
    return "\n".join(
        json.dumps(entry.to_dict(), sort_keys=True) for entry in dataset
    ).encode("utf-8")


def assert_equivalent(result, golden):
    assert dataset_bytes(result.dataset) == dataset_bytes(golden.dataset)
    assert (result.report.funnel.__dict__
            == golden.report.funnel.__dict__)
    assert result.report.layers.sizes == golden.report.layers.sizes
    assert (result.report.layers.complexity_coverage
            == golden.report.layers.complexity_coverage)
    assert (result.report.layers.missing_complexities
            == golden.report.layers.missing_complexities)
    assert (result.report.n_collected_github
            == golden.report.n_collected_github)
    assert result.report.n_generated_llm == golden.report.n_generated_llm
    # Per-stage counts and drop histograms (wall times differ).
    for mine, theirs in zip(result.report.trace.stages,
                            golden.report.trace.stages):
        assert mine.name == theirs.name
        assert mine.n_in == theirs.n_in
        assert mine.n_out == theirs.n_out
        assert dict(mine.drops) == dict(theirs.drops)


class TestGoldenParity:
    def test_serial(self, corpus, golden):
        raw_files, generated = corpus
        result = StreamingCurationPipeline(seed=SEED).run(
            raw_files, generated)
        assert_equivalent(result, golden)

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 10_000])
    def test_batch_size_invariant(self, corpus, golden, batch_size):
        raw_files, generated = corpus
        result = StreamingCurationPipeline(
            seed=SEED, batch_size=batch_size).run(raw_files, generated)
        assert_equivalent(result, golden)

    @pytest.mark.parametrize("n_partitions", [1, 3, 16])
    def test_partition_count_invariant(self, corpus, golden, n_partitions):
        raw_files, generated = corpus
        result = StreamingCurationPipeline(
            seed=SEED, n_partitions=n_partitions).run(raw_files, generated)
        assert_equivalent(result, golden)

    def test_thread_executor(self, corpus, golden):
        raw_files, generated = corpus
        result = StreamingCurationPipeline(
            seed=SEED, batch_size=32,
            executor=ParallelExecutor(mode="thread", max_workers=4),
        ).run(raw_files, generated)
        assert_equivalent(result, golden)

    def test_process_executor(self, corpus, golden):
        raw_files, generated = corpus
        executor = ParallelExecutor(mode="process", max_workers=2)
        result = StreamingCurationPipeline(
            seed=SEED, batch_size=64, executor=executor,
        ).run(raw_files, generated)
        assert_equivalent(result, golden)
        assert not executor.fell_back

    def test_disk_spill(self, corpus, golden, tmp_path):
        raw_files, generated = corpus
        spill = tmp_path / "spill"
        result = StreamingCurationPipeline(
            seed=SEED, batch_size=32, spill_dir=spill,
        ).run(raw_files, generated)
        assert_equivalent(result, golden)
        leftovers = [p for p in spill.rglob("*") if p.is_file()]
        assert leftovers == []

    def test_trace_is_streaming_branded(self, corpus):
        raw_files, generated = corpus
        result = StreamingCurationPipeline(seed=SEED, batch_size=32).run(
            raw_files, generated)
        trace = result.report.trace
        assert trace.pipeline == "curation-stream"
        assert trace.meta["streaming"]["batch_size"] == 32
        assert trace.meta["streaming"]["spilled"] is False


class TestStreamSources:
    def test_lazy_scrape_source(self, golden):
        """A true batch stream (nothing materialised) matches the
        golden output — iter_scrape emits the same population as
        scrape for the same seed."""
        scraper = GitHubScrapeSimulator(seed=SEED)
        source = chain_batches(
            raw_file_batches(scraper.iter_scrape(N_FILES, batch_size=50)),
            generated_batches(make_generated(), batch_size=50),
        )
        result = StreamingCurationPipeline(seed=SEED, batch_size=50).run_stream(
            source, source_token="test-lazy")
        assert_equivalent(result, golden)

    def test_curate_to_store(self, golden, tmp_path):
        from repro.store import StoreReader

        scraper = GitHubScrapeSimulator(seed=SEED)
        source = chain_batches(
            raw_file_batches(scraper.iter_scrape(N_FILES, batch_size=64)),
            generated_batches(make_generated(), batch_size=64),
        )
        out = StreamingCurationPipeline(seed=SEED, batch_size=64).curate_to_store(
            source, tmp_path / "store", source_token="test-store")
        assert out.manifest.n_entries == len(golden.dataset)
        stored = StoreReader(tmp_path / "store").read_all()
        assert dataset_bytes(stored) == dataset_bytes(golden.dataset)
        assert (out.report.funnel.__dict__
                == golden.report.funnel.__dict__)

    def test_observability_spans_and_rss(self, corpus):
        raw_files, generated = corpus
        obs = Observability()
        StreamingCurationPipeline(seed=SEED, obs=obs).run(
            raw_files, generated)
        report = obs.run_report().to_dict()
        names = [span["name"] for span in report["spans"]]
        for expected in ("stream.filter_sign", "stream.dedup",
                         "stream.label"):
            assert expected in names
        assert "proc.rss_peak_bytes" in report["metrics"]["gauges"]


class _Boom(BaseException):
    """Tears through every retry/fallback layer, like a SIGKILL."""


class _CrashAfter:
    """Wrap a phase worker to crash after ``n`` successful batches."""

    def __init__(self, fn, n):
        self.fn = fn
        self.remaining = n

    def __call__(self, payload):
        if self.remaining == 0:
            raise _Boom()
        self.remaining -= 1
        return self.fn(payload)


class TestCrashResume:
    def run_streaming(self, corpus, journal, batch_size=24):
        raw_files, generated = corpus
        res = Resilience(checkpointer=Checkpointer(journal, interval=4))
        pipeline = StreamingCurationPipeline(
            seed=SEED, batch_size=batch_size, resilience=res)
        return pipeline.run(raw_files, generated), res

    @pytest.mark.parametrize("target,n_ok", [("_filter_sign_batch", 3),
                                             ("_label_batch", 2)])
    def test_resume_after_crash(self, corpus, golden, tmp_path,
                                monkeypatch, target, n_ok):
        import repro.dataset.streaming as streaming_mod

        journal = tmp_path / "journal"
        crasher = _CrashAfter(getattr(streaming_mod, target), n_ok)
        monkeypatch.setattr(streaming_mod, target, crasher)
        with pytest.raises(_Boom):
            self.run_streaming(corpus, journal)
        monkeypatch.undo()

        result, res = self.run_streaming(corpus, journal)
        assert_equivalent(result, golden)
        assert res.summary()["resumed_batches"] > 0

    def test_finished_journal_reruns_from_scratch(self, corpus, golden,
                                                  tmp_path):
        journal = tmp_path / "journal"
        first, _ = self.run_streaming(corpus, journal)
        assert_equivalent(first, golden)
        again, res = self.run_streaming(corpus, journal)
        assert_equivalent(again, golden)
        assert res.summary()["resumed_batches"] == 0

    def test_different_config_does_not_resume(self, corpus, golden,
                                              tmp_path):
        """The checkpoint signature covers the streaming config, so a
        journal from one batch size never feeds a run with another."""
        journal = tmp_path / "journal"
        self.run_streaming(corpus, journal, batch_size=24)
        result, res = self.run_streaming(corpus, journal, batch_size=48)
        assert_equivalent(result, golden)
        assert res.summary()["resumed_batches"] == 0
