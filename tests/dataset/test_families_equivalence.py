"""Streaming and in-memory curation build byte-identical families.

The streaming path clusters families from worker-emitted partial
union-find forests merged parent-side; the in-memory path clusters
from the global collision forest.  These tests pin the identity: the
two FamilyReport documents match byte for byte, for any batch size and
any partition count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import GitHubScrapeSimulator
from repro.dataset.pipeline import CurationPipeline
from repro.dataset.streaming import (
    StreamingCurationPipeline,
    raw_file_batches,
)

N_FILES = 120
SEED = 7


@pytest.fixture(scope="module")
def reference():
    raw = GitHubScrapeSimulator(seed=SEED).scrape(N_FILES)
    return CurationPipeline(seed=SEED).run(raw)


def _stream(batch_size=64, n_partitions=4, keep_variants=False):
    scraper = GitHubScrapeSimulator(seed=SEED)
    pipeline = StreamingCurationPipeline(
        seed=SEED, batch_size=batch_size, n_partitions=n_partitions,
        keep_variants=keep_variants)
    return pipeline.run_stream(
        raw_file_batches(scraper.iter_scrape(N_FILES,
                                             batch_size=batch_size)),
        source_token=f"families-eq:{batch_size}:{n_partitions}")


class TestByteIdentity:
    @pytest.mark.parametrize("batch_size", [7, 64, 256])
    def test_family_report_identical_across_batch_sizes(
            self, reference, batch_size):
        streamed = _stream(batch_size=batch_size)
        assert (streamed.report.families.to_json()
                == reference.report.families.to_json())
        assert reference.report.families.n_families > 0

    @given(n_partitions=st.integers(min_value=1, max_value=8))
    @settings(deadline=None, max_examples=8)
    def test_family_report_identical_for_any_partition_count(
            self, reference, n_partitions):
        """The partial-forest merge is partition-count-blind."""
        streamed = _stream(n_partitions=n_partitions)
        assert (streamed.report.families.to_json()
                == reference.report.families.to_json())

    def test_family_tags_on_rows_identical(self, reference):
        streamed = _stream(batch_size=32)
        ours = [e.to_dict() for e in streamed.dataset]
        theirs = [e.to_dict() for e in reference.dataset]
        assert ours == theirs
        tagged = [e for e in theirs if e["family_role"]]
        assert tagged  # the identity is not vacuous

    def test_keep_variants_identical_across_paths(self):
        raw = GitHubScrapeSimulator(seed=SEED).scrape(N_FILES)
        in_memory = CurationPipeline(seed=SEED, keep_variants=True).run(raw)
        streamed = _stream(batch_size=32, keep_variants=True)
        assert ([e.to_dict() for e in streamed.dataset]
                == [e.to_dict() for e in in_memory.dataset])
        assert (streamed.report.families.to_json()
                == in_memory.report.families.to_json())
        assert any(e.family_role == "variant" for e in streamed.dataset)
