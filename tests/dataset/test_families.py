"""repro.dataset.families: variant graphs out of dedup decisions.

Covers the forest's order-independence (the property the streaming
partial-forest merge rests on), evidence construction, the zero-rehash
guarantee (counter-exact: family clustering adds not one shingle
digest beyond what dedup itself pays), the drop-provenance side
channel on DedupReport, the ``keep_variants`` pipeline mode, and the
frozen FamilyReport byte layout.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import GitHubScrapeSimulator
from repro.dataset.dedup import MinHasher, deduplicate
from repro.dataset.families import (
    LSH_BUCKET,
    NAME_PATTERN,
    Evidence,
    Family,
    FamilyForest,
    FamilyReport,
    FamilyVariant,
    build_family_artifacts,
    collision_forest,
    family_id_for,
    forest_from_pairs,
    module_names,
    name_pattern_evidence,
)
from repro.dataset.pipeline import CurationPipeline, PipelineReport


def _meta_for(index):
    return {"path": f"rtl/file_{index}.v", "origin": "github",
            "modules": [f"mod_{index}"]}


def _variant_codes():
    """Three exact-duplicate groups plus two singletons (comment-only
    edits are invisible to the shingler, so similarity is 1.0)."""
    base_a = ("module counter(input clk, input rst, output reg [7:0] q);\n"
              "  always @(posedge clk) begin\n"
              "    if (rst) q <= 0; else q <= q + 1;\n"
              "  end\nendmodule\n")
    base_b = ("module shifter(input clk, input [3:0] d, output reg [3:0] q);\n"
              "  always @(posedge clk) q <= {q[2:0], d[0]};\n"
              "endmodule\n")
    solo_1 = ("module adder(input [3:0] a, input [3:0] b, "
              "output [4:0] s);\n  assign s = a + b;\nendmodule\n")
    solo_2 = ("module mux(input sel, input x, input y, output z);\n"
              "  assign z = sel ? x : y;\nendmodule\n")
    return [
        base_a,                                    # 0: canonical A
        base_b,                                    # 1: canonical B
        solo_1,                                    # 2: singleton
        "// variant copy\n" + base_a,              # 3: variant of 0
        base_a + "// trailing note\n",             # 4: variant of 0
        solo_2,                                    # 5: singleton
        "// another shifter\n" + base_b,           # 6: variant of 1
    ]


class TestFamilyForest:
    def test_representative_is_minimum_index(self):
        forest = FamilyForest()
        forest.union(7, 3)
        forest.union(3, 9)
        assert forest.find(7) == forest.find(9) == 3
        assert forest.component_size_of(9) == 3
        assert forest.component_size_of(42) == 1

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                    max_size=60),
           st.randoms(use_true_random=False))
    @settings(deadline=None)
    def test_compressed_is_union_order_independent(self, pairs, rng):
        forward = forest_from_pairs(pairs)
        shuffled = list(pairs)
        rng.shuffle(shuffled)
        backward = forest_from_pairs(
            [(b, a) for a, b in shuffled])
        assert forward.compressed() == backward.compressed()
        assert forward.component_sizes() == backward.component_sizes()

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                    max_size=60),
           st.integers(1, 8))
    @settings(deadline=None)
    def test_partitioned_merge_equals_global_forest(self, pairs,
                                                    n_partitions):
        """Worker-side partial forests merged parent-side reconstruct
        the global forest for *any* partitioning of the pair set —
        the streaming/in-memory identity in miniature."""
        whole = forest_from_pairs(pairs)
        merged = FamilyForest()
        for part in range(n_partitions):
            partial = forest_from_pairs(
                [pair for i, pair in enumerate(pairs)
                 if i % n_partitions == part])
            merged.merge(partial.compressed())
        assert merged.compressed() == whole.compressed()

    def test_collision_forest_joins_band_collisions(self):
        codes = _variant_codes()
        hasher = MinHasher(64)
        from repro.dataset.dedup import tokenize_for_dedup
        signatures = [hasher.signature(tokenize_for_dedup(code))
                      for code in codes]
        forest = collision_forest(signatures, bands=16)
        assert forest.find(3) == forest.find(4) == forest.find(0) == 0
        assert forest.find(6) == forest.find(1) == 1
        assert forest.find(2) != forest.find(0)


class TestEvidence:
    def test_module_names_ordered_unique_no_parse_needed(self):
        code = ("module a(); endmodule\nmodule b_2(); endmodule\n"
                "module a(); // redeclared, still once\n"
                "this does not parse (")
        assert module_names(code) == ["a", "b_2"]
        assert module_names("no modules here") == []

    def test_name_pattern_stem_jaccard(self):
        ev = name_pattern_evidence(["counter"], ["Counter_2"])
        assert ev.kind == NAME_PATTERN
        assert ev.confidence == 1.0
        assert "counter" in ev.detail
        partial = name_pattern_evidence(["counter", "fifo"], ["counter_3"])
        assert partial.confidence == 0.5

    def test_name_pattern_none_without_overlap(self):
        assert name_pattern_evidence(["alu"], ["uart"]) is None
        assert name_pattern_evidence([], ["uart"]) is None


class TestBuildFamilyArtifacts:
    @pytest.fixture(scope="class")
    def artifacts(self):
        codes = _variant_codes()
        return build_family_artifacts(
            codes, list(range(len(codes))), _meta_for,
            threshold=0.8, seed=3)

    def test_families_mirror_drop_decisions(self, artifacts):
        report, index = artifacts
        assert report.duplicate_of == {3: 0, 4: 0, 6: 1}
        assert index.n_families == 2
        assert index.n_variants == 3
        fam_a = index.family_of(3)
        assert fam_a.family_id == family_id_for(3, 0)
        assert fam_a.canonical_index == 0
        assert [v.index for v in fam_a.variants] == [3, 4]
        assert index.role_of(0) == "canonical"
        assert index.role_of(4) == "variant"
        assert index.role_of(2) == ""

    def test_similarities_are_the_verified_jaccards(self, artifacts):
        report, index = artifacts
        assert set(report.similarities) == set(report.duplicate_of)
        for dropped, similarity in report.similarities.items():
            assert similarity >= 0.8
            assert index.similarity_of(dropped) == similarity
        assert report.drop_pairs() == [
            (later, report.duplicate_of[later],
             report.similarities[later])
            for later in sorted(report.duplicate_of)]

    def test_every_variant_carries_lsh_evidence(self, artifacts):
        _report, index = artifacts
        for family in index.families:
            for variant in family.variants:
                kinds = [ev.kind for ev in variant.evidence]
                assert kinds[0] == LSH_BUCKET
                assert variant.evidence[0].confidence == variant.similarity

    def test_component_size_covers_the_family(self, artifacts):
        _report, index = artifacts
        for family in index.families:
            assert family.component_size >= family.size
            assert family.n_lsh_neighbours == (family.component_size
                                               - family.size)

    def test_rejects_unsorted_indices(self):
        with pytest.raises(ValueError, match="ascending"):
            build_family_artifacts(["a", "b"], [2, 1], _meta_for,
                                   threshold=0.8, seed=0)


class TestZeroRehash:
    def test_family_clustering_hashes_exactly_what_dedup_does(self):
        """Counter-exact: the family-aware build performs the same
        number of signature calls and shingle digests as plain dedup —
        clustering reuses the signatures, it never re-hashes."""
        codes = [f.content for f
                 in GitHubScrapeSimulator(seed=5).scrape(60)]
        plain = MinHasher(64)
        deduplicate(codes, threshold=0.8, hasher=plain)
        family = MinHasher(64)
        report, index = build_family_artifacts(
            codes, list(range(len(codes))), _meta_for,
            threshold=0.8, seed=5, hasher=family)
        assert family.n_signature_calls == plain.n_signature_calls \
            == len(codes)
        assert family.n_shingles_hashed == plain.n_shingles_hashed > 0
        assert index.n_families > 0  # the corpus does contain dupes

    def test_injected_signatures_must_pair_with_shingles(self):
        with pytest.raises(ValueError):
            deduplicate(["module a(); endmodule"], signatures=[(1, 2)])


class TestKeepVariants:
    @pytest.fixture(scope="class")
    def both(self):
        raw = GitHubScrapeSimulator(seed=9).scrape(150)
        dropped = CurationPipeline(seed=9).run(raw)
        kept = CurationPipeline(seed=9, keep_variants=True).run(raw)
        return dropped, kept

    def test_variant_rows_survive_with_tags(self, both):
        dropped, kept = both
        variants = [e for e in kept.dataset if e.family_role == "variant"]
        assert variants
        assert len(kept.dataset) == len(dropped.dataset) + len(variants)
        for entry in variants:
            assert entry.family_id
            assert entry.family_similarity >= 0.8

    def test_canonical_stream_is_unchanged(self, both):
        dropped, kept = both
        canonical_codes = [e.code for e in kept.dataset
                           if e.family_role != "variant"]
        assert canonical_codes == [e.code for e in dropped.dataset]

    def test_funnel_sees_zero_dedup_drops(self, both):
        _dropped, kept = both
        funnel = kept.report.funnel
        assert funnel.after_dedup == funnel.after_module_decl
        assert kept.report.trace.stage("dedup").n_dropped == 0

    def test_family_structure_identical_between_modes(self, both):
        dropped, kept = both
        a = dropped.report.families
        b = kept.report.families
        assert a.n_families == b.n_families
        assert a.size_histogram() == b.size_histogram()
        assert [f.family_id for f in a.families] == [
            f.family_id for f in b.families]

    def test_variant_entry_ids_attached_only_in_keep_mode(self, both):
        dropped, kept = both
        assert all(v.entry_id == ""
                   for f in dropped.report.families.families
                   for v in f.variants)
        attached = [v.entry_id
                    for f in kept.report.families.families
                    for v in f.variants if v.entry_id]
        assert attached  # surviving variants point at their rows


class TestPipelineReportCarriesFamilies:
    def test_round_trip_and_descriptions(self):
        raw = GitHubScrapeSimulator(seed=9).scrape(150)
        result = CurationPipeline(seed=9).run(raw)
        report = result.report
        assert report.families is not None
        assert report.families.n_families > 0
        described = [f for f in report.families.families
                     if f.descriptions]
        assert described  # canonicals in the dataset get descriptions
        assert described[0].descriptions["module"]
        assert isinstance(described[0].descriptions["blocks"], list)
        restored = PipelineReport.from_json(report.to_json())
        assert restored.families.to_json() == report.families.to_json()

    def test_summary_mentions_families(self):
        raw = GitHubScrapeSimulator(seed=9).scrape(150)
        report = CurationPipeline(seed=9).run(raw).report
        assert any(line.startswith("design families:")
                   for line in report.summary_lines())


#: The committed FamilyReport layout (sorted keys, compact).  Frozen —
#: change the code until these bytes come back, not the literal.
GOLDEN_FAMILY_JSON = (
    '{"families": [{"canonical_entry_id": "e-0002", "canonical_index": 2, '
    '"canonical_modules": ["counter"], "canonical_origin": "github", '
    '"canonical_path": "rtl/counter.v", "component_size": 4, '
    '"descriptions": {"blocks": ["clocked always block"], '
    '"module": "A counter."}, "family_id": "fam-3-000002", '
    '"n_lsh_neighbours": 2, "variants": [{"entry_id": "", "evidence": '
    '[{"confidence": 0.875, "detail": "signatures collided in an LSH '
    'band; exact Jaccard verified at drop time", "kind": "LSH_BUCKET"}, '
    '{"confidence": 1.0, "detail": "shared module-name stem(s): counter", '
    '"kind": "NAME_PATTERN"}], "index": 5, "modules": ["counter_2"], '
    '"origin": "github", "path": "rtl/counter_2.v", '
    '"similarity": 0.875}]}], "n_families": 1, "n_variants": 1, '
    '"schema": "pyranet/family-report/v1", "seed": 3, '
    '"size_histogram": {"2": 1}, "threshold": 0.8}'
)


def _golden_report() -> FamilyReport:
    return FamilyReport(seed=3, threshold=0.8, families=[Family(
        family_id="fam-3-000002",
        canonical_index=2,
        canonical_path="rtl/counter.v",
        canonical_origin="github",
        canonical_modules=["counter"],
        canonical_entry_id="e-0002",
        component_size=4,
        descriptions={"module": "A counter.",
                      "blocks": ["clocked always block"]},
        variants=[FamilyVariant(
            index=5, similarity=0.875, path="rtl/counter_2.v",
            origin="github", modules=["counter_2"],
            evidence=[
                Evidence(kind=LSH_BUCKET, confidence=0.875,
                         detail="signatures collided in an LSH band; "
                                "exact Jaccard verified at drop time"),
                Evidence(kind=NAME_PATTERN, confidence=1.0,
                         detail="shared module-name stem(s): counter"),
            ])],
    )])


class TestGoldenBytes:
    def test_to_json_is_byte_identical(self):
        assert _golden_report().to_json() == GOLDEN_FAMILY_JSON

    def test_round_trip_preserves_bytes(self):
        restored = FamilyReport.from_json(GOLDEN_FAMILY_JSON)
        assert restored.to_json() == GOLDEN_FAMILY_JSON

    def test_size_histogram_numeric_key_order(self):
        report = FamilyReport(families=[
            Family(family_id=family_id_for(0, i), canonical_index=i,
                   variants=[FamilyVariant(index=100 + j, similarity=1.0)
                             for j in range(n)])
            for i, n in enumerate([1, 11, 1, 2])])
        assert list(report.size_histogram()) == ["2", "3", "12"]
        assert report.size_histogram() == {"2": 2, "3": 1, "12": 1}
