"""RepairFeedback: construction, rendering, golden bytes."""

from repro.eval.functional import Mismatch
from repro.eval.functional import TestOutcome as FunctionalOutcome
from repro.repairloop import RepairFeedback
from repro.verilog import check

BROKEN = "module m(input a, output y);\n  assign y = ~a\nendmodule\n"


class TestFromCheck:
    def test_syntax_failure_kind(self):
        feedback = RepairFeedback.from_check(check(BROKEN))
        assert feedback.kind == "syntax"
        assert feedback.diagnostics
        error = feedback.first_error()
        assert error is not None
        assert error["severity"] == "error"
        assert error["line"] >= 1

    def test_diagnostics_carry_columns(self):
        feedback = RepairFeedback.from_check(check(BROKEN))
        assert all("column" in diag for diag in feedback.diagnostics)

    def test_render_names_location(self):
        feedback = RepairFeedback.from_check(check(BROKEN))
        text = feedback.render()
        assert "// syntax failure" in text
        assert "line" in text


class TestFromOutcome:
    def test_functional_kind_with_counterexamples(self):
        outcome = FunctionalOutcome(
            passed=False, failure_kind="mismatch", detail="1/4 wrong",
            vectors_run=4,
            mismatches=[Mismatch(vector_index=2, output="y",
                                 expected=1, actual=0,
                                 inputs={"a": 1})])
        feedback = RepairFeedback.from_outcome(outcome)
        assert feedback.kind == "functional"
        text = feedback.render()
        assert "vector 2" in text
        assert "expected 1" in text


class TestSerialization:
    def test_round_trip(self):
        feedback = RepairFeedback.from_check(check(BROKEN))
        again = RepairFeedback.from_dict(feedback.to_dict())
        assert again.to_json() == feedback.to_json()

    def test_golden_bytes(self):
        """Committed wire shape: sorted keys, exact layout."""
        feedback = RepairFeedback(
            kind="syntax",
            diagnostics=[{"severity": "error", "category": "parse",
                          "message": "expected ';'", "line": 2,
                          "column": 3}])
        assert feedback.to_json() == (
            '{"diagnostics": [{"category": "parse", "column": 3, '
            '"line": 2, "message": "expected \'' + ";" + '\'", '
            '"severity": "error"}], "kind": "syntax", "outcome": null}')

    def test_schema_tolerated_in_from_dict(self):
        data = {"schema": RepairFeedback.schema, "kind": "functional",
                "diagnostics": [], "outcome": None}
        assert RepairFeedback.from_dict(data).kind == "functional"
