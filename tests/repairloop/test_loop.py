"""The repair loop: determinism, budgets, checkpoint/kill/resume."""

import random

import pytest

from repro.corpus import mutate
from repro.corpus.templates import generate_design
from repro.obs import Observability
from repro.repairloop import (
    ModelRepairer,
    RepairLoop,
    RepairTranscript,
    RuleBasedRepairer,
)
from repro.repairloop.loop import ITERATION_SITE, loop_seed
from repro.resilience import (
    Checkpointer,
    FaultPlan,
    FaultRule,
    Resilience,
    SimulatedCrash,
)
from repro.verilog import check


def _design(seed=0):
    return generate_design("up_counter", random.Random(seed))


def _drop_last_semicolons(source, count):
    """Remove the last ``count`` semicolons (one repair each)."""
    for _ in range(count):
        index = source.rindex(";")
        source = source[:index] + source[index + 1:]
    return source


class TestLoopSeed:
    def test_stable(self):
        assert loop_seed(7, "cand", 1) == loop_seed(7, "cand", 1)

    def test_distinct_across_axes(self):
        seeds = {loop_seed(7, "cand", 1), loop_seed(7, "cand", 2),
                 loop_seed(7, "other", 1), loop_seed(8, "cand", 1)}
        assert len(seeds) == 4


class TestSyntaxRepair:
    def test_fixes_single_missing_semicolon(self):
        broken = _drop_last_semicolons(_design().source, 1)
        transcript = RepairLoop(budget=2).run(broken, candidate_id="c")
        assert transcript.fixed
        assert transcript.fixed_at == 1
        assert transcript.initial_status == "syntax"
        assert check(transcript.final_code).status != "syntax"
        assert transcript.iterations[0].action == "insert_semicolon"
        assert transcript.iterations[0].repairer == "rule-based"

    def test_two_breaks_take_two_iterations(self):
        broken = _drop_last_semicolons(_design().source, 2)
        short = RepairLoop(budget=1).run(broken, candidate_id="c")
        full = RepairLoop(budget=3).run(broken, candidate_id="c")
        assert not short.fixed
        assert full.fixed
        assert full.fixed_at == 2

    def test_already_clean_needs_no_iterations(self):
        source = _design().source
        transcript = RepairLoop(budget=2).run(source, candidate_id="c")
        assert transcript.fixed
        assert transcript.fixed_at == 0
        assert transcript.n_iterations() == 0
        assert transcript.final_code == source

    def test_budget_zero_never_repairs(self):
        broken = _drop_last_semicolons(_design().source, 1)
        transcript = RepairLoop(budget=0).run(broken, candidate_id="c")
        assert not transcript.fixed
        assert transcript.n_iterations() == 0
        assert transcript.final_code == broken

    def test_rule_based_declines_functional_feedback(self):
        from repro.repairloop import RepairContext, RepairFeedback

        repairer = RuleBasedRepairer()
        feedback = RepairFeedback(kind="functional")
        assert repairer.propose("module m; endmodule", feedback,
                                RepairContext(),
                                random.Random(0)) is None


class TestFunctionalRepair:
    def test_model_repairer_regenerates_to_pass(self):
        design = _design()
        broken = mutate.corrupt_function(
            design.source, random.Random(3))

        class OracleStub:
            def generate(self, description, temperature=0.8, rng=None,
                         module_header=None):
                return design.source

        loop = RepairLoop(budget=2, n_test_vectors=8,
                          repairer=ModelRepairer(OracleStub()))
        transcript = loop.run(broken.source, spec=design.spec,
                              candidate_id="c",
                              description=design.description)
        assert transcript.fixed
        assert transcript.final_status == "pass"
        assert transcript.iterations[-1].status == "pass"

    def test_functional_failure_feedback_kind(self):
        design = _design()
        broken = mutate.corrupt_function(design.source, random.Random(3))
        transcript = RepairLoop(budget=1, n_test_vectors=8).run(
            broken.source, spec=design.spec, candidate_id="c")
        # Rule-based repairer has nothing for functional damage.
        assert not transcript.fixed
        assert transcript.initial_status == "fail"


class TestDeterminism:
    def test_repeated_runs_byte_identical(self):
        broken = _drop_last_semicolons(_design().source, 2)
        first = RepairLoop(budget=3, seed=11).run(broken,
                                                  candidate_id="c")
        second = RepairLoop(budget=3, seed=11).run(broken,
                                                   candidate_id="c")
        assert first.to_json() == second.to_json()

    def test_transcript_round_trip(self):
        broken = _drop_last_semicolons(_design().source, 1)
        transcript = RepairLoop(budget=2).run(broken, candidate_id="c")
        again = RepairTranscript.from_dict(transcript.to_dict())
        assert again.to_json() == transcript.to_json()
        assert RepairTranscript.from_json(
            transcript.to_json()).to_json() == transcript.to_json()


class TestKillResume:
    def test_resumed_loop_byte_identical(self, tmp_path):
        broken = _drop_last_semicolons(_design().source, 2)
        golden = RepairLoop(budget=3, seed=5).run(broken,
                                                  candidate_id="c")
        assert golden.fixed and golden.n_iterations() == 2

        journal = tmp_path / "journal"
        # Crash on the second live iteration: the first is already
        # journaled, so the resume must replay it, not recompute.
        plan = FaultPlan([FaultRule(site=ITERATION_SITE, kind="crash",
                                    ordinals=(1,))])
        doomed = Resilience(checkpointer=Checkpointer(journal),
                            fault_plan=plan)
        with pytest.raises(SimulatedCrash):
            RepairLoop(budget=3, seed=5, resilience=doomed).run(
                broken, candidate_id="c")

        obs = Observability()
        revived = Resilience(checkpointer=Checkpointer(journal))
        resumed = RepairLoop(budget=3, seed=5, resilience=revived,
                             obs=obs).run(broken, candidate_id="c")
        assert resumed.to_json() == golden.to_json()
        assert obs.registry.counter(
            "repair.iterations.replayed").value == 1

    def test_signature_mismatch_starts_fresh(self, tmp_path):
        broken = _drop_last_semicolons(_design().source, 1)
        journal = tmp_path / "journal"
        first = Resilience(checkpointer=Checkpointer(journal))
        RepairLoop(budget=2, seed=5, resilience=first).run(
            broken, candidate_id="c")
        # Different seed → different signature → no stale replay.
        second = Resilience(checkpointer=Checkpointer(journal))
        transcript = RepairLoop(budget=2, seed=6,
                                resilience=second).run(
            broken, candidate_id="c")
        assert transcript.seed == 6
        assert transcript.fixed


class TestObservability:
    def test_span_and_histogram_recorded(self):
        obs = Observability()
        broken = _drop_last_semicolons(_design().source, 1)
        RepairLoop(budget=2, obs=obs).run(broken, candidate_id="c")
        spans = [span for span in obs.tracer.export()
                 if span["name"] == "repair.loop"]
        assert spans and spans[0]["meta"]["fixed"] is True
        histogram = obs.registry.histogram("repair.iterations")
        assert histogram.count == 1
        assert obs.registry.counter("repair.loop.fixed").value == 1
