"""Batched streaming reads: StoreReader.iter_batches and the
SamplingService.stream_batches feed for streaming curation."""

import pytest

from repro.dataset.pipeline import build_pyranet
from repro.store import SamplingService, ShardWriter, StoreReader


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("store")
    dataset = build_pyranet(n_github_files=120, n_llm_prompts=2,
                            seed=5).dataset
    ShardWriter(directory, max_shard_bytes=16 * 1024).write(dataset)
    return directory, dataset


class TestIterBatches:
    def test_batches_concatenate_to_full_stream(self, store):
        directory, dataset = store
        reader = StoreReader(directory)
        batches = list(reader.iter_batches(size=16))
        flat = [entry for batch in batches for entry in batch]
        assert [e.entry_id for e in flat] == [e.entry_id for e in dataset]

    def test_batch_sizes(self, store):
        directory, dataset = store
        reader = StoreReader(directory)
        batches = list(reader.iter_batches(size=16))
        assert all(len(batch) == 16 for batch in batches[:-1])
        assert 0 < len(batches[-1]) <= 16
        assert sum(len(b) for b in batches) == len(dataset)

    def test_layer_filter_matches_select(self, store):
        directory, _ = store
        reader = StoreReader(directory)
        layer = reader.manifest.trainable_layers()[0]
        flat = [entry
                for batch in reader.iter_batches(size=8, layer=layer)
                for entry in batch]
        assert ([e.entry_id for e in flat]
                == [e.entry_id for e in
                    StoreReader(directory).select(layer=layer)])
        assert all(e.layer == layer for e in flat)

    def test_size_must_be_positive(self, store):
        directory, _ = store
        reader = StoreReader(directory)
        with pytest.raises(ValueError):
            next(reader.iter_batches(size=0))

    def test_oversized_batch_is_single_short_batch(self, store):
        directory, dataset = store
        reader = StoreReader(directory)
        batches = list(reader.iter_batches(size=10 ** 6))
        assert len(batches) == 1
        assert len(batches[0]) == len(dataset)


class TestSamplingServiceStream:
    def test_stream_batches_delegates_to_reader(self, store):
        directory, dataset = store
        service = SamplingService(StoreReader(directory), seed=5)
        flat = [entry for batch in service.stream_batches(batch_size=32)
                for entry in batch]
        assert [e.entry_id for e in flat] == [e.entry_id for e in dataset]

    def test_stream_batches_layer_filter(self, store):
        directory, _ = store
        service = SamplingService(StoreReader(directory), seed=5)
        layer = service.trainable_layers()[0]
        flat = [entry
                for batch in service.stream_batches(batch_size=8,
                                                    layer=layer)
                for entry in batch]
        assert flat and all(e.layer == layer for e in flat)
