"""SamplingService: store-backed serving must match in-memory behaviour."""

import random
from typing import List

import pytest

from repro.dataset.records import Complexity, DatasetEntry, PyraNetDataset
from repro.finetune.curriculum import (
    anti_curriculum_phases,
    curriculum_phases,
    layered_random_phases,
    random_phases,
)
from repro.finetune.trainer import (
    finetune_pyranet_architecture,
    finetune_pyranet_dataset,
)
from repro.finetune.weighting import paper_schedule, top_layers_only
from repro.model.interfaces import FineTunable, TrainStats
from repro.pipeline import ResultCache
from repro.store import SamplingService, StoreReader, write_store


def make_dataset(n=150, seed=3) -> PyraNetDataset:
    rng = random.Random(seed)
    dataset = PyraNetDataset()
    for i in range(n):
        dataset.add(DatasetEntry(
            entry_id=f"e{i}",
            code=f"module m{i}; endmodule",
            description=f"design {i}",
            ranking=rng.randrange(21),
            complexity=Complexity(rng.randrange(4)),
            layer=rng.randrange(1, 7),
        ))
    return dataset


@pytest.fixture
def dataset():
    return make_dataset()


@pytest.fixture
def service(dataset, tmp_path):
    write_store(dataset, tmp_path, max_shard_bytes=2048)
    return SamplingService(
        StoreReader(tmp_path, cache=ResultCache()), seed=0)


def phase_ids(phases) -> List[List[str]]:
    return [[e.entry_id for e in p.entries] for p in phases]


class RecordingModel(FineTunable):
    def __init__(self):
        self.stream = []

    def train_batch(self, examples, loss_weight):
        for example in examples:
            self.stream.append((example.description, example.layer,
                                loss_weight))
        return TrainStats(examples=len(examples),
                          effective_weight=loss_weight * len(examples))

    def finish_phase(self):
        pass

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None):
        return "module stub(); endmodule"


class TestLayeredSourceProtocol:
    def test_len_and_iteration(self, dataset, service):
        assert len(service) == len(dataset)
        assert [e.entry_id for e in service] \
            == [e.entry_id for e in dataset]

    def test_layer_views(self, dataset, service):
        assert service.trainable_layers() == dataset.trainable_layers()
        assert service.layer_sizes() == dataset.layer_sizes()
        for layer in dataset.trainable_layers():
            assert [e.entry_id for e in service.layer(layer)] \
                == [e.entry_id for e in dataset.layer(layer)]


class TestCurriculumParity:
    """The regression pin: store-backed phases == in-memory phases."""

    @pytest.mark.parametrize("seed", [0, 7, 99])
    def test_curriculum_phases_identical(self, dataset, service, seed):
        memory = curriculum_phases(dataset, seed=seed)
        store = service.curriculum_phases(seed=seed)
        assert [p.label for p in store] == [p.label for p in memory]
        assert phase_ids(store) == phase_ids(memory)

    def test_all_phase_builders_accept_service(self, dataset, service):
        for builder in (curriculum_phases, anti_curriculum_phases,
                        layered_random_phases, random_phases):
            assert phase_ids(builder(service, seed=4)) \
                == phase_ids(builder(dataset, seed=4))

    def test_uniform_batches_match_random_phases(self, dataset, service):
        assert phase_ids(service.uniform_batches(batch_size=16, seed=2)) \
            == phase_ids(random_phases(dataset, seed=2, batch_size=16))


class TestFinetuneParity:
    """Fine-tuning straight off the store reproduces the in-memory
    stream — same examples, same order, same loss weights."""

    def test_architecture_recipe(self, dataset, service):
        memory = RecordingModel()
        finetune_pyranet_architecture(memory, dataset, seed=11)
        store = RecordingModel()
        finetune_pyranet_architecture(store, service, seed=11)
        assert store.stream == memory.stream

    def test_dataset_recipe(self, dataset, service):
        memory = RecordingModel()
        finetune_pyranet_dataset(memory, dataset, seed=11)
        store = RecordingModel()
        finetune_pyranet_dataset(store, service, seed=11)
        assert store.stream == memory.stream


class TestWeightedBatches:
    def test_deterministic_for_fixed_seed(self, service):
        first = service.weighted_batches(n_batches=6, batch_size=8, seed=5)
        second = service.weighted_batches(n_batches=6, batch_size=8, seed=5)
        assert phase_ids(first) == phase_ids(second)
        assert all(len(p.entries) == 8 for p in first)

    def test_layer_weights_shape_the_stream(self, service):
        """Layer 1 (weight 1.0) must be served more than layer 6
        (weight 0.1) once supply is normalised."""
        phases = service.weighted_batches(
            n_batches=40, batch_size=25, seed=0, schedule=paper_schedule())
        counts = {layer: 0 for layer in range(1, 7)}
        for phase in phases:
            for entry in phase.entries:
                counts[entry.layer] += 1
        sizes = service.layer_sizes()
        per_supply = {layer: counts[layer] / sizes[layer]
                      for layer in counts}
        assert per_supply[1] > 3 * per_supply[6]

    def test_zero_weight_layers_never_served(self, service):
        phases = service.weighted_batches(
            n_batches=10, batch_size=20, seed=1,
            schedule=top_layers_only(2))
        layers = {e.layer for p in phases for e in p.entries}
        assert layers <= {1, 2}

    def test_all_zero_mass_raises(self, service):
        with pytest.raises(ValueError):
            service.weighted_batches(
                n_batches=1, batch_size=1, schedule=top_layers_only(0))

    def test_rejects_bad_shape(self, service):
        with pytest.raises(ValueError):
            service.weighted_batches(n_batches=0)
        with pytest.raises(ValueError):
            service.weighted_batches(n_batches=1, batch_size=0)


class TestDegradedStore:
    def test_weighted_batches_refuse_short_served_layer(self, dataset,
                                                        tmp_path):
        """A lenient reader that skipped a corrupt shard must not let
        weighted sampling silently re-map draw indices."""
        import pytest as _pytest

        from repro.store import StoreError

        store = tmp_path / "degraded"
        manifest = write_store(dataset, store, max_shard_bytes=2048)
        victim = store / manifest.shards[0].name
        blob = bytearray(victim.read_bytes())
        blob[4] ^= 0xFF
        victim.write_bytes(bytes(blob))

        service = SamplingService(StoreReader(store, strict=False), seed=0)
        with _pytest.raises(StoreError):
            service.weighted_batches(n_batches=20, batch_size=20)
