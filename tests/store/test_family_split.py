"""Family-aware splits: no train/eval split ever straddles a family.

The leakage guard of the families subsystem, property-tested: for any
seed and eval fraction, every design family lands entirely on one side
of ``SamplingService.split``, the sides partition the store, and every
serving strategy (uniform / weighted / curriculum) drawn through a
``SplitView`` stays inside its side.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import GitHubScrapeSimulator
from repro.dataset.pipeline import CurationPipeline
from repro.pipeline import ResultCache
from repro.store import (
    FamilySplit,
    SamplingService,
    StoreReader,
    write_store,
)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A store curated with keep_variants, so rows carry family ids."""
    raw = GitHubScrapeSimulator(seed=9).scrape(200)
    result = CurationPipeline(seed=9, keep_variants=True).run(raw)
    directory = tmp_path_factory.mktemp("family-store")
    write_store(result.dataset, directory)
    reader = StoreReader(directory, cache=ResultCache())
    return SamplingService(reader, seed=9)


def _family_sides(service, split):
    """family_id -> set of sides ('train'/'eval') its rows landed on."""
    eval_ids = set(split.eval_ids)
    sides = {}
    for entry in service:
        if not entry.family_id:
            continue
        side = "eval" if entry.entry_id in eval_ids else "train"
        sides.setdefault(entry.family_id, set()).add(side)
    return sides


class TestLeakageGuard:
    @given(seed=st.integers(0, 10_000),
           eval_fraction=st.floats(0.0, 1.0, allow_nan=False))
    @settings(deadline=None, max_examples=30)
    def test_no_family_straddles_the_split(self, service, seed,
                                           eval_fraction):
        split = service.split(eval_fraction=eval_fraction, seed=seed)
        assert split.n_train + split.n_eval == len(service)
        assert not (set(split.train_ids) & set(split.eval_ids))
        for family_id, sides in _family_sides(service, split).items():
            assert len(sides) == 1, (
                f"family {family_id} leaked across the split: {sides}")

    @given(seed=st.integers(0, 10_000))
    @settings(deadline=None, max_examples=10)
    def test_every_strategy_draws_inside_its_side(self, service, seed):
        split = service.split(eval_fraction=0.2, seed=seed)
        for ids in (split.train_ids, split.eval_ids):
            view = service.view(ids, seed=seed)
            allowed = set(ids)
            phases = (view.curriculum_phases()
                      + view.uniform_batches(batch_size=16)
                      + view.weighted_batches(n_batches=3, batch_size=16))
            for phase in phases:
                for entry in phase.entries:
                    assert entry.entry_id in allowed

    def test_split_is_deterministic(self, service):
        a = service.split(eval_fraction=0.15, seed=42)
        b = service.split(eval_fraction=0.15, seed=42)
        assert a.to_json() == b.to_json()
        c = service.split(eval_fraction=0.15, seed=43)
        assert c.eval_ids != a.eval_ids

    def test_eval_side_hits_its_target_within_one_family(self, service):
        total = len(service)
        split = service.split(eval_fraction=0.2, seed=1)
        target = round(0.2 * total)
        largest_family = max(
            _family_size_histogram(service).values(), default=1)
        assert target <= split.n_eval < target + largest_family

    def test_fraction_extremes(self, service):
        assert service.split(eval_fraction=0.0).n_eval == 0
        assert service.split(eval_fraction=1.0).n_train == 0
        with pytest.raises(ValueError):
            service.split(eval_fraction=1.5)

    def test_round_trip(self, service):
        split = service.split(eval_fraction=0.25, seed=5)
        restored = FamilySplit.from_json(split.to_json())
        assert restored.to_json() == split.to_json()
        assert restored.eval_ids == split.eval_ids


def _family_size_histogram(service):
    sizes = {}
    for entry in service:
        if entry.family_id:
            sizes[entry.family_id] = sizes.get(entry.family_id, 0) + 1
    return sizes


class TestSplitView:
    def test_view_is_a_layered_source(self, service):
        split = service.split(eval_fraction=0.2, seed=3)
        view = service.train_view(split)
        assert len(view) == split.n_train
        assert sum(len(view.layer(n))
                   for n in view.trainable_layers()) <= len(view)
        ids = {entry.entry_id for entry in view}
        assert ids == set(split.train_ids)

    def test_views_cover_the_store(self, service):
        split = service.split(eval_fraction=0.3, seed=8)
        train = {e.entry_id for e in service.train_view(split)}
        evald = {e.entry_id for e in service.eval_view(split)}
        assert not (train & evald)
        assert train | evald == {e.entry_id for e in service}

    def test_weighted_batches_validate_args(self, service):
        split = service.split(eval_fraction=0.2, seed=3)
        view = service.train_view(split)
        with pytest.raises(ValueError):
            view.weighted_batches(n_batches=0)
