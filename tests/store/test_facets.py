"""StoreManifest.facets(): the faceted-query document and its key order."""

import json

from repro.dataset.records import (
    Complexity,
    CompileStatus,
    DatasetEntry,
    PyraNetDataset,
)
from repro.store import StoreManifest, write_store

CANONICAL = ["Basic", "Intermediate", "Advanced", "Expert"]


def make_dataset():
    """Layers out of insertion order, two-digit layer, sparse complexity."""
    dataset = PyraNetDataset()
    rows = [
        (12, Complexity.EXPERT), (2, Complexity.BASIC),
        (10, Complexity.INTERMEDIATE), (1, Complexity.ADVANCED),
        (2, Complexity.BASIC), (10, Complexity.EXPERT),
    ]
    for i, (layer, complexity) in enumerate(rows):
        dataset.add(DatasetEntry(
            entry_id=f"e{i}",
            code=f"module m{i}(); endmodule",
            description=f"unit {i}",
            complexity=complexity,
            compile_status=CompileStatus.CLEAN,
            layer=layer,
        ))
    return dataset


def facets_of(tmp_path, **write_kwargs):
    write_store(make_dataset(), tmp_path, **write_kwargs)
    return StoreManifest.load(tmp_path).facets()


class TestFacets:
    def test_totals_and_per_layer_counts(self, tmp_path):
        facets = facets_of(tmp_path)
        assert facets["n_entries"] == 6
        assert facets["complexity"] == {
            "Basic": 2, "Intermediate": 1, "Advanced": 1, "Expert": 2}
        assert facets["layers"]["2"] == {
            "n_entries": 2,
            "complexity": {"Basic": 2, "Intermediate": 0,
                           "Advanced": 0, "Expert": 0}}
        assert facets["layers"]["10"]["n_entries"] == 2
        assert sum(bucket["n_entries"]
                   for bucket in facets["layers"].values()) == 6

    def test_layer_keys_in_numeric_order(self, tmp_path):
        facets = facets_of(tmp_path)
        keys = list(facets["layers"])
        assert keys == ["1", "2", "10", "12"]  # numeric, not lexicographic

    def test_complexity_keys_in_canonical_order(self, tmp_path):
        facets = facets_of(tmp_path)
        assert list(facets["complexity"]) == CANONICAL
        for bucket in facets["layers"].values():
            assert list(bucket["complexity"]) == CANONICAL

    def test_zero_counts_are_present_not_missing(self, tmp_path):
        facets = facets_of(tmp_path)
        bucket = facets["layers"]["12"]["complexity"]
        assert bucket["Basic"] == 0 and bucket["Expert"] == 1

    def test_stable_across_shard_layouts(self, tmp_path):
        """The facet document depends on contents, not shard geometry."""
        one = facets_of(tmp_path / "wide")
        many = facets_of(tmp_path / "narrow", max_shard_bytes=64)
        assert one == many
        assert (json.dumps(one, sort_keys=False)
                == json.dumps(many, sort_keys=False))

    def test_empty_store(self, tmp_path):
        write_store(PyraNetDataset(), tmp_path)
        facets = StoreManifest.load(tmp_path).facets()
        assert facets == {
            "n_entries": 0,
            "layers": {},
            "complexity": {"Basic": 0, "Intermediate": 0,
                           "Advanced": 0, "Expert": 0},
            "origins": {},
            "families": {"n_families": 0, "n_variants": 0,
                         "n_variant_rows": 0, "sizes": {}},
            "verified": {"n_verified": 0, "n_layer_1": 0}}

    def test_verified_counts(self, tmp_path):
        dataset = make_dataset()
        dataset.entries[3].verified = True  # the layer-1 row
        dataset.entries[3].verified_detail = "verified 2 outputs to bound 5"
        write_store(dataset, tmp_path)
        facets = StoreManifest.load(tmp_path).facets()
        assert facets["verified"] == {"n_verified": 1, "n_layer_1": 1}

    def test_family_counts(self, tmp_path):
        dataset = make_dataset()
        dataset.entries[0].family_id = "fam-0-000001"
        dataset.entries[0].family_role = "canonical"
        dataset.entries[0].n_family_variants = 2
        dataset.entries[1].family_id = "fam-0-000001"
        dataset.entries[1].family_role = "variant"
        dataset.entries[1].family_similarity = 0.9
        write_store(dataset, tmp_path)
        facets = StoreManifest.load(tmp_path).facets()
        assert facets["families"] == {
            "n_families": 1, "n_variants": 2, "n_variant_rows": 1,
            "sizes": {"3": 1}}

    def test_origin_counts(self, tmp_path):
        facets = facets_of(tmp_path)
        # make_dataset leaves DatasetEntry.origin at its default.
        assert facets["origins"] == {"github": 6}

    def test_origin_keys_name_sorted(self, tmp_path):
        dataset = make_dataset()
        for i, origin in enumerate(["repair", "llm", "generated"]):
            dataset.entries[i].origin = origin
        write_store(dataset, tmp_path)
        facets = StoreManifest.load(tmp_path).facets()
        assert list(facets["origins"]) == sorted(facets["origins"])
        assert facets["origins"] == {
            "generated": 1, "github": 3, "llm": 1, "repair": 1}

    def test_agrees_with_existing_indexes(self, tmp_path):
        write_store(make_dataset(), tmp_path)
        manifest = StoreManifest.load(tmp_path)
        facets = manifest.facets()
        assert facets["complexity"] == manifest.complexity_histogram()
        assert ({int(k): v["n_entries"] for k, v
                 in facets["layers"].items()}
                == manifest.layer_sizes())
