"""Tests for the sharded store: codec, manifest, writer, reader."""

import json
import random
import zlib

import pytest

from repro.dataset.io import load_jsonl, save_jsonl
from repro.dataset.records import (
    Complexity,
    CompileStatus,
    DatasetEntry,
    PyraNetDataset,
)
from repro.pipeline import ResultCache
from repro.store import (
    MANIFEST_NAME,
    ManifestError,
    ShardCorruptionError,
    ShardWriter,
    StoreManifest,
    StoreReader,
    shard_digest,
    shard_name,
    write_store,
)


def make_dataset(n=120, seed=0) -> PyraNetDataset:
    """Entries spread over all layers and complexities."""
    rng = random.Random(seed)
    dataset = PyraNetDataset()
    for i in range(n):
        dataset.add(DatasetEntry(
            entry_id=f"e{i}",
            code=f"module m{i}(input a, output y);\n"
                 f"  assign y = ~a; // unit {i}\nendmodule",
            description=f"inverter variant {i}",
            ranking=rng.randrange(21),
            complexity=Complexity(rng.randrange(4)),
            compile_status=CompileStatus.CLEAN,
            layer=rng.randrange(1, 7),
        ))
    return dataset


def entry_dicts(entries):
    return [e.to_dict() for e in entries]


class TestWriterReader:
    def test_golden_equivalence_with_jsonl(self, tmp_path):
        """Store round-trip == save_jsonl/load_jsonl round-trip."""
        dataset = make_dataset()
        jsonl = tmp_path / "dataset.jsonl"
        save_jsonl(dataset, jsonl)
        via_jsonl = load_jsonl(jsonl)

        store = tmp_path / "store"
        ShardWriter(store, max_shard_bytes=4096).write(dataset)
        via_store = StoreReader(store).read_all()

        assert entry_dicts(via_store) == entry_dicts(via_jsonl)
        assert entry_dicts(via_store) == entry_dicts(dataset)

    def test_shards_are_size_bounded_and_ordered(self, tmp_path):
        dataset = make_dataset()
        manifest = ShardWriter(tmp_path, max_shard_bytes=2048).write(dataset)
        assert len(manifest.shards) > 1
        assert manifest.n_entries == len(dataset)
        for info in manifest.shards:
            assert info.raw_size <= 2048 or info.n_entries == 1
        # Concatenation order is input order.
        assert [e.entry_id for e in StoreReader(tmp_path).iter_entries()] \
            == [e.entry_id for e in dataset]

    def test_content_addressed_names(self, tmp_path):
        manifest = write_store(make_dataset(), tmp_path, max_shard_bytes=4096)
        for info in manifest.shards:
            payload = (tmp_path / info.name).read_bytes()
            assert shard_digest(payload) == info.digest
            assert info.name == shard_name(info.digest)
            assert info.byte_size == len(payload)

    def test_rewrite_is_idempotent(self, tmp_path):
        dataset = make_dataset()
        first = write_store(dataset, tmp_path, max_shard_bytes=4096)
        second = write_store(dataset, tmp_path, max_shard_bytes=4096)
        assert [i.digest for i in first.shards] \
            == [i.digest for i in second.shards]
        # Only the expected files exist — no temporaries, no orphans.
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {i.name for i in first.shards} | {MANIFEST_NAME}

    def test_empty_dataset(self, tmp_path):
        manifest = write_store(PyraNetDataset(), tmp_path)
        assert manifest.n_entries == 0 and manifest.shards == []
        assert len(StoreReader(tmp_path).read_all()) == 0

    def test_max_entries_per_shard(self, tmp_path):
        manifest = ShardWriter(
            tmp_path, max_entries_per_shard=10).write(make_dataset(35))
        assert [i.n_entries for i in manifest.shards] == [10, 10, 10, 5]

    def test_writer_rejects_bad_bounds(self, tmp_path):
        with pytest.raises(ValueError):
            ShardWriter(tmp_path, max_shard_bytes=0)
        with pytest.raises(ValueError):
            ShardWriter(tmp_path, max_entries_per_shard=0)


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = write_store(make_dataset(), tmp_path, max_shard_bytes=2048)
        again = StoreManifest.from_json(manifest.to_json())
        assert again.to_dict() == manifest.to_dict()

    def test_layer_index_matches_dataset(self, tmp_path):
        dataset = make_dataset()
        manifest = write_store(dataset, tmp_path, max_shard_bytes=2048)
        assert manifest.layer_sizes() == dataset.layer_sizes()
        assert manifest.trainable_layers() == dataset.trainable_layers()
        assert manifest.complexity_histogram() \
            == dataset.complexity_histogram()

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ManifestError):
            StoreReader(tmp_path)

    def test_malformed_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("not json")
        with pytest.raises(ManifestError):
            StoreReader(tmp_path)

    def test_unsupported_version(self, tmp_path):
        manifest = write_store(make_dataset(10), tmp_path)
        data = manifest.to_dict()
        data["version"] = 999
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(data))
        with pytest.raises(ManifestError):
            StoreReader(tmp_path)


class TestSelect:
    def test_select_filters_rows(self, tmp_path):
        dataset = make_dataset()
        write_store(dataset, tmp_path, max_shard_bytes=2048)
        reader = StoreReader(tmp_path)
        for layer in dataset.trainable_layers():
            expected = [e.entry_id for e in dataset.layer(layer)]
            got = [e.entry_id for e in
                   StoreReader(tmp_path).select(layer=layer)]
            assert got == expected
        picked = reader.select(layer=2, complexity=Complexity.BASIC)
        assert all(e.layer == 2 and e.complexity == Complexity.BASIC
                   for e in picked)

    def test_select_opens_only_covering_shards(self, tmp_path):
        """The acceptance property: select(layer=L) touches exactly the
        shards whose manifest histogram contains layer L."""
        manifest = write_store(make_dataset(), tmp_path,
                               max_shard_bytes=2048)
        for layer in range(1, 7):
            reader = StoreReader(tmp_path)
            reader.select(layer=layer)
            covering = {i.name for i in manifest.shards
                        if str(layer) in i.histogram}
            assert set(reader.opened_shards) == covering
            assert len(covering) < len(manifest.shards)

    def test_unfiltered_iteration_opens_everything(self, tmp_path):
        manifest = write_store(make_dataset(), tmp_path,
                               max_shard_bytes=2048)
        reader = StoreReader(tmp_path)
        reader.read_all()
        assert reader.opened_shards == [i.name for i in manifest.shards]

    def test_read_metrics(self, tmp_path):
        write_store(make_dataset(), tmp_path, max_shard_bytes=2048)
        cache = ResultCache()
        reader = StoreReader(tmp_path, cache=cache)
        reader.read_all()
        cold = reader.metrics.cache_misses
        reader.read_all()
        assert cold > 0
        assert reader.metrics.cache_hits == cold
        trace = reader.trace()
        assert trace.pipeline == "store-read"
        assert trace.meta["shards_opened"] == len(reader.opened_shards)


def corrupt_one_shard(store_dir, manifest):
    """Flip bytes inside the largest shard; returns its name."""
    info = max(manifest.shards, key=lambda i: i.n_entries)
    path = store_dir / info.name
    payload = bytearray(path.read_bytes())
    payload[len(payload) // 2] ^= 0xFF
    path.write_bytes(bytes(payload))
    return info


class TestCorruption:
    def test_strict_raises_typed_error(self, tmp_path):
        manifest = write_store(make_dataset(), tmp_path,
                               max_shard_bytes=2048)
        info = corrupt_one_shard(tmp_path, manifest)
        reader = StoreReader(tmp_path, strict=True)
        with pytest.raises(ShardCorruptionError) as excinfo:
            reader.read_all()
        assert excinfo.value.shard == info.name
        assert excinfo.value.expected == info.digest

    def test_lenient_skips_and_reports(self, tmp_path):
        dataset = make_dataset()
        manifest = write_store(dataset, tmp_path, max_shard_bytes=2048)
        info = corrupt_one_shard(tmp_path, manifest)
        reader = StoreReader(tmp_path, strict=False)
        survivors = reader.read_all()
        assert len(survivors) == len(dataset) - info.n_entries
        (report,) = reader.corruption_reports
        assert report.shard == info.name
        assert report.n_entries_lost == info.n_entries
        assert report.reason == "checksum mismatch"

    def test_missing_shard_file(self, tmp_path):
        manifest = write_store(make_dataset(), tmp_path,
                               max_shard_bytes=2048)
        (tmp_path / manifest.shards[0].name).unlink()
        with pytest.raises(ShardCorruptionError):
            StoreReader(tmp_path).read_all()
        lenient = StoreReader(tmp_path, strict=False)
        lenient.read_all()
        assert lenient.corruption_reports[0].reason.startswith("unreadable")

    def test_valid_zlib_wrong_digest(self, tmp_path):
        """A shard swapped for different (but well-formed) content still
        fails the digest check."""
        manifest = write_store(make_dataset(), tmp_path,
                               max_shard_bytes=2048)
        info = manifest.shards[0]
        (tmp_path / info.name).write_bytes(zlib.compress(b"{}\n"))
        with pytest.raises(ShardCorruptionError) as excinfo:
            StoreReader(tmp_path).read_all()
        assert excinfo.value.reason == "checksum mismatch"

    def test_verify_sweeps_whole_store(self, tmp_path):
        manifest = write_store(make_dataset(), tmp_path,
                               max_shard_bytes=2048)
        corrupt_one_shard(tmp_path, manifest)
        reports = StoreReader(tmp_path, strict=False).verify()
        assert len(reports) == 1
        assert StoreReader(tmp_path, strict=False).read_all()


class TestUnicode:
    def test_non_ascii_round_trip_through_store(self, tmp_path):
        dataset = PyraNetDataset()
        dataset.add(DatasetEntry(
            entry_id="véhicule-1",
            code="module zähler_模块(input clk);\n"
                 "  // компаратор ±1 ≥ Ω\nendmodule",
            description="Ein Zähler — счётчик 計数器",
            layer=1,
        ))
        write_store(dataset, tmp_path)
        (entry,) = StoreReader(tmp_path).read_all()
        assert entry.to_dict() == dataset.entries[0].to_dict()
