"""Cross-validation: formal verdicts vs exhaustive simulation.

The formal engine and the event-driven simulator implement the same
Verilog semantics by entirely different means (BDD symbolic execution
vs delta-cycle interpretation).  For small modules we can enumerate
every input vector, so their agreement is checkable — a disagreement
in either direction is a bug in one of them.
"""

import itertools
import random

from repro.dataset.corrupt import operator_mutants
from repro.verilog import Simulator
from repro.verilog.formal import check_equivalence

N_INPUT_BITS = 9  # 3 inputs x 3 bits: 512 vectors, exhaustive is cheap

_BINOPS = ["&", "|", "^", "+", "-"]


def random_module(rng: random.Random, name: str = "dut") -> str:
    """A small random combinational module over 3-bit inputs.

    Expressions stay inside the formal subset (binary ops, ternary,
    reductions) so every generated module gets a definite verdict.
    """
    def operand() -> str:
        return rng.choice(["a", "b", "c"])

    def expr(depth: int) -> str:
        if depth <= 0 or rng.random() < 0.3:
            return operand()
        if rng.random() < 0.2:
            cond = f"{operand()} {rng.choice(['<', '>=', '=='])} {operand()}"
            return f"(({cond}) ? {expr(depth - 1)} : {expr(depth - 1)})"
        op = rng.choice(_BINOPS)
        return f"({expr(depth - 1)} {op} {expr(depth - 1)})"

    return (f"module {name}(input [2:0] a, input [2:0] b, input [2:0] c,\n"
            f"            output [2:0] y);\n"
            f"  assign y = {expr(rng.randint(1, 3))};\n"
            f"endmodule\n")


def exhaustive_outputs(code: str):
    """y for every (a, b, c), via the event-driven simulator."""
    sim = Simulator(code)
    table = []
    for a, b, c in itertools.product(range(8), repeat=3):
        sim.poke("a", a)
        sim.poke("b", b)
        sim.poke("c", c)
        table.append(sim.peek("y").to_bit_string())
    return table


class TestAgreementWithSimulation:
    def test_equivalent_pairs_agree(self):
        """Formal 'equivalent' <=> identical exhaustive truth tables,
        over randomly generated module pairs."""
        rng = random.Random(2024)
        checked = 0
        while checked < 12:
            code_a = random_module(rng)
            code_b = random_module(rng)
            report = check_equivalence(code_a, code_b)
            if report.status not in ("equivalent", "inequivalent"):
                continue  # budget blowups etc. make no claim
            same = exhaustive_outputs(code_a) == exhaustive_outputs(code_b)
            assert (report.status == "equivalent") == same, (
                f"formal={report.status} but exhaustive same={same}\n"
                f"{code_a}\n{code_b}")
            checked += 1

    def test_self_equivalence_always_holds(self):
        rng = random.Random(7)
        for _ in range(8):
            code = random_module(rng)
            report = check_equivalence(code, code)
            assert report.status == "equivalent", code

    def test_counterexamples_are_real(self):
        """Every inequivalence verdict must come with a concrete input
        that the simulator confirms distinguishes the designs."""
        rng = random.Random(99)
        found = 0
        while found < 6:
            code_a = random_module(rng)
            code_b = random_module(rng)
            report = check_equivalence(code_a, code_b)
            if report.status != "inequivalent":
                continue
            cex = report.counterexample
            values = []
            for code in (code_a, code_b):
                sim = Simulator(code)
                for name, value in cex["cycles"][0].items():
                    sim.poke(name, value)
                values.append(sim.peek_int(cex["output"]))
            assert values == [cex["value_a"], cex["value_b"]]
            assert values[0] != values[1]
            found += 1


class TestMutantRejection:
    def test_operator_mutants_formally_rejected(self):
        """Known-inequivalent mutants (single operator swaps) must be
        caught.  Some swaps can be semantic no-ops in context, so each
        mutant is first checked against exhaustive simulation; formal
        must agree with that ground truth exactly."""
        code = """
module alu(input [2:0] a, input [2:0] b, input [2:0] c,
           output [2:0] y);
  assign y = ((a & b) | (b ^ c)) + ((a < c) ? a : c);
endmodule
"""
        mutants = operator_mutants(code)
        assert len(mutants) >= 4
        truth = exhaustive_outputs(code)
        n_rejected = 0
        for mutant in mutants:
            report = check_equivalence(code, mutant)
            assert report.status in ("equivalent", "inequivalent"), (
                report.detail)
            really_same = exhaustive_outputs(mutant) == truth
            assert (report.status == "equivalent") == really_same
            if report.status == "inequivalent":
                n_rejected += 1
        # The swap set is chosen to be generically semantics-changing:
        # most mutants of this module must actually be rejected.
        assert n_rejected >= len(mutants) - 1

    def test_mutants_of_sequential_design_rejected(self):
        code = """
module acc(input clk, input [2:0] d, output reg [3:0] q);
  initial q = 0;
  always @(posedge clk) q <= q + d;
endmodule
"""
        mutants = operator_mutants(code)
        assert mutants  # the '+' swaps to '-'
        report = check_equivalence(code, mutants[0], bound=3)
        assert report.status == "inequivalent"
