"""Tests for structural metrics and the style linter."""

import pytest

from repro.verilog import lint, measure
from repro.verilog.parser import ParseError


FSM = """\
module fsm(input clk, input rst, input x, output reg z);
  localparam S0 = 2'd0, S1 = 2'd1;
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= S0;
    else case (state)
      S0: if (x) state <= S1;
      S1: state <= S0;
      default: state <= S0;
    endcase
  end
  always @(*) z = (state == S1);
endmodule
"""


class TestMetrics:
    def test_counts_basic_structure(self):
        metrics = measure(FSM)
        assert metrics.modules == 1
        assert metrics.ports == 4
        assert metrics.sequential_always == 1
        assert metrics.combinational_always == 1
        assert metrics.case_statements == 1

    def test_detects_fsm(self):
        assert measure(FSM).has_fsm

    def test_plain_counter_is_not_fsm(self):
        source = """
            module c(input clk, output reg [3:0] q);
              always @(posedge clk) q <= q + 1;
            endmodule"""
        assert not measure(source).has_fsm

    def test_memory_detected(self):
        source = """
            module ram(input clk, input [3:0] a, input [7:0] d,
                       input we, output [7:0] q);
              reg [7:0] mem [0:15];
              always @(posedge clk) if (we) mem[a] <= d;
              assign q = mem[a];
            endmodule"""
        metrics = measure(source)
        assert metrics.has_memory and metrics.memories == 1

    def test_hierarchy_detected(self):
        source = FSM + "\nmodule top(input c, r, x, output z);\n" \
                       "  fsm u(.clk(c), .rst(r), .x(x), .z(z));\n" \
                       "endmodule"
        metrics = measure(source)
        assert metrics.has_hierarchy and metrics.instances == 1
        assert metrics.modules == 2

    def test_line_count_ignores_blanks(self):
        assert measure("module m;\n\n\nendmodule\n").lines == 2

    def test_merge_max_fields(self):
        a = measure(FSM)
        merged = a.merge(a)
        assert merged.always_blocks == 2 * a.always_blocks
        assert merged.max_statement_depth == a.max_statement_depth

    def test_invalid_source_raises(self):
        with pytest.raises(ParseError):
            measure("module ((")


class TestLint:
    def test_clean_code_no_penalty(self):
        report = lint(
            "// doc\nmodule m(input a, output y);\n"
            "  assign y = ~a;\nendmodule\n")
        assert report.penalty == 0

    def test_blocking_in_clocked(self):
        report = lint(
            "module m(input clk, d, output reg q);\n"
            "  always @(posedge clk) q = d;\nendmodule")
        assert "S010" in report.codes()

    def test_nonblocking_in_comb(self):
        report = lint(
            "module m(input a, output reg y);\n"
            "  always @(*) y <= a;\nendmodule")
        assert "S011" in report.codes()

    def test_case_without_default(self):
        report = lint(
            "module m(input [1:0] s, input a, b, output reg y);\n"
            "  always @(*) case (s)\n"
            "    2'd0: y = a;\n    2'd1: y = b;\n  endcase\nendmodule")
        assert "S012" in report.codes()

    def test_incomplete_sensitivity(self):
        report = lint(
            "module m(input a, b, output reg y);\n"
            "  always @(a) y = a & b;\nendmodule")
        assert "S014" in report.codes()

    def test_unused_signal(self):
        report = lint(
            "module m(input a, output y);\n"
            "  wire dead_net;\n  assign y = a;\nendmodule")
        assert "S021" in report.codes()

    def test_mixed_indentation(self):
        report = lint(
            "module m(input a, output y);\n"
            "\tassign y = a;\n  wire w = a;\nendmodule")
        assert "W002" in report.codes()

    def test_parse_failure_is_fatal(self):
        report = lint("module ((")
        assert report.parse_failed
        assert report.penalty >= 20

    def test_penalty_capped_per_rule(self):
        # Dozens of long lines still cost at most 4 points.
        long_lines = "\n".join(
            f"  // {'x' * 130}" for _ in range(30))
        report = lint(
            f"module m(input a, output y);\n{long_lines}\n"
            "  assign y = a;\nendmodule")
        w001 = sum(v.penalty for v in report.violations
                   if v.code == "W001")
        assert w001 > 4.0
        assert report.penalty <= 6.0
