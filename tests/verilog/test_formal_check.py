"""Bounded equivalence / property checking over elaborated netlists."""

from repro.verilog import Simulator
from repro.verilog.formal import (
    FORMAL_REPORT_SCHEMA,
    FormalReport,
    check_equivalence,
    check_properties,
    verify_code,
    verify_design,
)

ADDER = """
module adder(input [3:0] a, input [3:0] b, output [4:0] y);
  assign y = a + b;
endmodule
"""

# Same function, different structure: an explicit ripple-carry chain.
# (Each carry is its own wire — bit-slicing one carry bus would read
# and write the same signal, which the signal-granular loop check
# conservatively rejects.)
ADDER_ALT = """
module adder(input [3:0] a, input [3:0] b, output [4:0] y);
  wire c1, c2, c3, c4;
  assign c1 = a[0] & b[0];
  assign c2 = (a[1] & b[1]) | ((a[1] ^ b[1]) & c1);
  assign c3 = (a[2] & b[2]) | ((a[2] ^ b[2]) & c2);
  assign c4 = (a[3] & b[3]) | ((a[3] ^ b[3]) & c3);
  assign y = {c4, (a ^ b) ^ {c3, c2, c1, 1'b0}};
endmodule
"""

SUBTRACTOR = """
module adder(input [3:0] a, input [3:0] b, output [4:0] y);
  assign y = a - b;
endmodule
"""

COUNTER = """
module counter(input clk, input rst, output reg [3:0] q);
  initial q = 0;
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule
"""

COUNTER_GATED = """
module counter(input clk, input rst, output reg [3:0] q);
  initial q = 0;
  always @(posedge clk) begin
    q <= rst ? 4'd0 : (q + 4'd1);
  end
endmodule
"""

COUNTER_SKIPS = """
module counter(input clk, input rst, output reg [3:0] q);
  initial q = 0;
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 2;
  end
endmodule
"""


class TestCombinationalEquivalence:
    def test_equivalent_rewrites(self):
        report = check_equivalence(ADDER, ADDER_ALT)
        assert report.status == "equivalent"
        assert report.ok
        assert report.counterexample is None
        assert report.n_inputs == 8 and report.n_outputs == 5

    def test_inequivalent_with_counterexample(self):
        report = check_equivalence(ADDER, SUBTRACTOR)
        assert report.status == "inequivalent"
        assert not report.ok
        cex = report.counterexample
        assert cex is not None and cex["cycle"] == 0
        assert cex["value_a"] != cex["value_b"]

    def test_counterexample_replays_in_simulator(self):
        report = check_equivalence(ADDER, SUBTRACTOR)
        cex = report.counterexample
        for source, expected in ((ADDER, cex["value_a"]),
                                 (SUBTRACTOR, cex["value_b"])):
            sim = Simulator(source)
            for name, value in cex["cycles"][0].items():
                sim.poke(name, value)
            assert sim.peek_int(cex["output"]) == expected

    def test_port_mismatch_is_unsupported(self):
        other = "module m(input [3:0] a, output [4:0] y);\n" \
                "  assign y = a;\nendmodule\n"
        report = check_equivalence(ADDER, other)
        assert report.status == "unsupported"
        assert "port" in report.detail

    def test_parse_error_is_error_status(self):
        report = check_equivalence(ADDER, "module broken(")
        assert report.status == "error"
        assert not report.ok


class TestSequentialEquivalence:
    def test_equivalent_counters(self):
        report = check_equivalence(COUNTER, COUNTER_GATED, bound=4)
        assert report.status == "equivalent"
        assert report.bound == 4
        assert report.n_state_bits == 8  # 4 bits of state in each design

    def test_inequivalent_counters_found_at_right_cycle(self):
        report = check_equivalence(COUNTER, COUNTER_SKIPS, bound=4)
        assert report.status == "inequivalent"
        # Both start at 0; they first differ after one un-reset edge.
        assert report.counterexample["cycle"] == 0
        assert report.counterexample["cycles"][0]["rst"] == 0

    def test_sequential_counterexample_replays(self):
        report = check_equivalence(COUNTER, COUNTER_SKIPS, bound=4)
        cex = report.counterexample
        observed = []
        for source in (COUNTER, COUNTER_SKIPS):
            sim = Simulator(source)
            for row in cex["cycles"]:
                for name, value in row.items():
                    sim.poke(name, value)
                sim.clock("clk")
            observed.append(sim.peek_int(cex["output"]))
        assert observed == [cex["value_a"], cex["value_b"]]

    def test_uninitialized_state_unsupported_for_equivalence(self):
        """Equivalence needs a constant start state; free state would
        make the verdict depend on unknowable power-on contents."""
        no_init = COUNTER.replace("initial q = 0;\n", "")
        report = check_equivalence(no_init, no_init, bound=2)
        assert report.status == "unsupported"


class TestUnsupportedSubset:
    def test_latch_is_unsupported(self):
        latch = """
        module latch(input en, input d, output reg q);
          always @(*) if (en) q = d;
        endmodule
        """
        ok, detail = verify_code(latch)
        assert not ok
        assert "q" in detail

    def test_combinational_loop_is_unsupported(self):
        loop = """
        module loop(input a, output y);
          wire t;
          assign t = y ^ a;
          assign y = t;
        endmodule
        """
        ok, detail = verify_code(loop)
        assert not ok

    def test_two_clocks_unsupported(self):
        two = """
        module two(input c1, input c2, input d, output reg q1, output reg q2);
          always @(posedge c1) q1 <= d;
          always @(posedge c2) q2 <= d;
        endmodule
        """
        ok, detail = verify_code(two)
        assert not ok

    def test_memory_unsupported(self):
        mem = """
        module ram(input clk, input [1:0] addr, input [7:0] din,
                   input we, output [7:0] dout);
          reg [7:0] store [0:3];
          always @(posedge clk) if (we) store[addr] <= din;
          assign dout = store[addr];
        endmodule
        """
        ok, detail = verify_code(mem)
        assert not ok


class TestProperties:
    def test_holds(self):
        report = check_properties(ADDER, ["y == a + b", "y <= 5'd30"])
        assert report.status == "holds"
        assert all(p["status"] == "holds" for p in report.properties)

    def test_fails_with_counterexample(self):
        report = check_properties(ADDER, ["y < 5'd16"])
        assert report.status == "fails"
        entry = report.properties[0]
        assert entry["status"] == "fails"
        cex = entry["counterexample"]
        sim = Simulator(ADDER)
        for name, value in cex["cycles"][0].items():
            sim.poke(name, value)
        assert sim.peek_int("y") >= 16

    def test_sequential_invariant_free_initial_state(self):
        """Without an initial block the checker quantifies over all
        start states — an invariant must hold from any of them."""
        no_init = COUNTER.replace("initial q = 0;\n", "")
        report = check_properties(no_init, ["q <= 4'd15"], bound=3)
        assert report.status == "holds"
        assert report.detail == "free initial state"

    def test_bad_assertion_syntax_is_error(self):
        report = check_properties(ADDER, ["y =="])
        assert report.status == "unsupported"
        assert report.properties[0]["status"] == "error"

    def test_mixed_results_overall_fails(self):
        report = check_properties(ADDER, ["y == a + b", "y == a"])
        assert report.status == "fails"
        statuses = [p["status"] for p in report.properties]
        assert statuses == ["holds", "fails"]


class TestVerify:
    def test_combinational_verified(self):
        report = verify_design(ADDER)
        assert report.status == "verified" and report.ok
        assert "combinational" in report.detail

    def test_sequential_verified(self):
        report = verify_design(COUNTER)
        assert report.status == "verified"
        assert "sequential" in report.detail

    def test_verify_code_never_raises(self):
        assert verify_code("module broken(")[0] is False
        assert verify_code("")[0] is False
        ok, detail = verify_code(ADDER)
        assert ok and detail


class TestReportContract:
    def test_schema_and_byte_identity(self):
        one = check_equivalence(ADDER, ADDER_ALT)
        two = check_equivalence(ADDER, ADDER_ALT)
        assert one.schema == FORMAL_REPORT_SCHEMA
        assert one.to_json() == two.to_json()

    def test_round_trip(self):
        report = check_equivalence(ADDER, SUBTRACTOR)
        back = FormalReport.from_dict(report.to_dict())
        assert back.to_json() == report.to_json()

    def test_no_wall_times_in_report(self):
        document = check_equivalence(ADDER, ADDER_ALT).to_dict()
        assert not any("time" in key or "wall" in key for key in document)
