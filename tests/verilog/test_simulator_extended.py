"""Extended simulator tests: less-common language corners."""

import pytest

from repro.verilog import ElaborationError, SimulationError, Simulator


class TestSelects:
    def test_indexed_part_select_read(self):
        sim = Simulator("""
            module m(input [15:0] data, input [1:0] idx,
                     output [3:0] nibble);
              assign nibble = data[idx*4 +: 4];
            endmodule""")
        sim.poke("data", 0xABCD)
        for idx, expected in ((0, 0xD), (1, 0xC), (2, 0xB), (3, 0xA)):
            sim.poke("idx", idx)
            assert sim.peek_int("nibble") == expected

    def test_indexed_part_select_write(self):
        sim = Simulator("""
            module m(input clk, input [1:0] idx, input [3:0] val,
                     output reg [15:0] data);
              always @(posedge clk) data[idx*4 +: 4] <= val;
            endmodule""")
        sim.poke("clk", 0)
        sim.poke("data", 0)
        for idx in range(4):
            sim.poke("idx", idx)
            sim.poke("val", idx + 1)
            sim.clock("clk")
        assert sim.peek_int("data") == 0x4321

    def test_minus_indexed_select(self):
        sim = Simulator("""
            module m(input [7:0] data, output [3:0] hi);
              assign hi = data[7 -: 4];
            endmodule""")
        sim.poke("data", 0xA5)
        assert sim.peek_int("hi") == 0xA

    def test_ascending_bit_range(self):
        sim = Simulator("""
            module m(input [0:7] data, output msb, output [0:3] top);
              assign msb = data[0];
              assign top = data[0:3];
            endmodule""")
        sim.poke("data", 0b10000001)
        assert sim.peek_int("msb") == 1  # data[0] is the MSB
        assert sim.peek_int("top") == 0b1000

    def test_variable_bit_write(self):
        sim = Simulator("""
            module m(input clk, input [2:0] pos, output reg [7:0] mask);
              always @(posedge clk) begin
                mask <= 0;
                mask[pos] <= 1'b1;
              end
            endmodule""")
        sim.poke("clk", 0)
        sim.poke("pos", 5)
        sim.clock("clk")
        assert sim.peek_int("mask") == 1 << 5

    def test_out_of_range_write_ignored(self):
        sim = Simulator("""
            module m(input clk, input [3:0] pos, output reg [7:0] q);
              initial q = 8'hFF;
              always @(posedge clk) q[pos] <= 1'b0;
            endmodule""")
        sim.poke("clk", 0)
        sim.poke("pos", 12)  # beyond [7:0]
        sim.clock("clk")
        assert sim.peek_int("q") == 0xFF


class TestCaseVariants:
    def test_casez_wildcards(self):
        sim = Simulator("""
            module m(input [3:0] req, output reg [1:0] grant);
              always @(*) casez (req)
                4'b1???: grant = 2'd3;
                4'b01??: grant = 2'd2;
                4'b001?: grant = 2'd1;
                default: grant = 2'd0;
              endcase
            endmodule""")
        sim.poke("req", 0b1010)
        assert sim.peek_int("grant") == 3
        sim.poke("req", 0b0110)
        assert sim.peek_int("grant") == 2
        sim.poke("req", 0b0011)
        assert sim.peek_int("grant") == 1
        sim.poke("req", 0b0001)
        assert sim.peek_int("grant") == 0

    def test_casex_treats_x_as_dont_care(self):
        sim = Simulator("""
            module m(input [1:0] s, output reg y);
              always @(*) casex (s)
                2'b1x: y = 1'b1;
                default: y = 1'b0;
              endcase
            endmodule""")
        sim.poke("s", 0b10)
        assert sim.peek_int("y") == 1
        sim.poke("s", 0b11)
        assert sim.peek_int("y") == 1
        sim.poke("s", 0b01)
        assert sim.peek_int("y") == 0

    def test_case_multiple_labels(self):
        sim = Simulator("""
            module m(input [2:0] v, output reg small);
              always @(*) case (v)
                3'd0, 3'd1, 3'd2: small = 1'b1;
                default: small = 1'b0;
              endcase
            endmodule""")
        sim.poke("v", 1)
        assert sim.peek_int("small") == 1
        sim.poke("v", 5)
        assert sim.peek_int("small") == 0


class TestSignedArithmetic:
    def test_signed_comparison(self):
        sim = Simulator("""
            module m(input signed [3:0] a, b, output lt);
              assign lt = (a < b);
            endmodule""")
        sim.poke("a", 0b1111)  # -1
        sim.poke("b", 0b0001)  # +1
        assert sim.peek_int("lt") == 1

    def test_dollar_signed_cast(self):
        sim = Simulator("""
            module m(input [3:0] a, output signed [7:0] s);
              assign s = $signed(a);
            endmodule""")
        sim.poke("a", 0b1000)
        assert sim.peek_signed("s") == -8

    def test_unsigned_mixing_defeats_sign(self):
        sim = Simulator("""
            module m(input signed [3:0] a, input [3:0] b, output lt);
              assign lt = (a < b);  // unsigned compare (mixed)
            endmodule""")
        sim.poke("a", 0b1111)  # 15 unsigned
        sim.poke("b", 0b0001)
        assert sim.peek_int("lt") == 0

    def test_arithmetic_right_shift_operator(self):
        sim = Simulator("""
            module m(input signed [7:0] x, output signed [7:0] y);
              assign y = x >>> 3;
            endmodule""")
        sim.poke("x", (-64) & 0xFF)
        assert sim.peek_signed("y") == -8


class TestTasksAndFunctions:
    def test_task_with_output(self):
        sim = Simulator("""
            module m;
              reg [7:0] result;
              task sum3;
                input [7:0] a, b, c;
                output [7:0] total;
                total = a + b + c;
              endtask
              initial sum3(8'd1, 8'd2, 8'd3, result);
            endmodule""")
        assert sim.peek_int("result") == 6

    def test_function_with_loop_and_locals(self):
        sim = Simulator("""
            module m(input [7:0] x, output [3:0] ones);
              function [3:0] count_ones;
                input [7:0] v;
                integer i;
                begin
                  count_ones = 0;
                  for (i = 0; i < 8; i = i + 1)
                    count_ones = count_ones + v[i];
                end
              endfunction
              assign ones = count_ones(x);
            endmodule""")
        sim.poke("x", 0b11010110)
        assert sim.peek_int("ones") == 5

    def test_clog2(self):
        sim = Simulator("""
            module m #(parameter DEPTH = 24)
                      (output [7:0] bits);
              assign bits = $clog2(DEPTH);
            endmodule""")
        assert sim.peek_int("bits") == 5


class TestParametersAndGenerate:
    def test_localparam_expression(self):
        sim = Simulator("""
            module m #(parameter W = 6)(output [7:0] v);
              localparam FULL = (1 << W) - 1;
              assign v = FULL;
            endmodule""")
        assert sim.peek_int("v") == 63

    def test_generate_if_selects_implementation(self):
        source = """
            module m #(parameter FAST = %d)(input [3:0] a, b,
                                            output [3:0] y);
              generate
                if (FAST) begin
                  assign y = a + b;
                end else begin
                  assign y = a - b;
                end
              endgenerate
            endmodule"""
        fast = Simulator(source % 1)
        fast.poke("a", 5)
        fast.poke("b", 3)
        assert fast.peek_int("y") == 8
        slow = Simulator(source % 0)
        slow.poke("a", 5)
        slow.poke("b", 3)
        assert slow.peek_int("y") == 2

    def test_parameter_override_rejects_unknown(self):
        with pytest.raises(ElaborationError):
            Simulator("module m #(parameter A = 1)(); endmodule",
                      top="m", params={"NOPE": 3})

    def test_defparam_like_nested_override(self):
        sim = Simulator("""
            module leaf #(parameter V = 1)(output [7:0] o);
              assign o = V;
            endmodule
            module m #(parameter K = 5)(output [7:0] o);
              leaf #(.V(K * 2)) u(.o(o));
            endmodule""", top="m", params={"K": 7})
        assert sim.peek_int("o") == 14


class TestDisplayFormats:
    def _run(self, fmt, value_expr):
        sim = Simulator(f"""
            module tb;
              initial $display("{fmt}", {value_expr});
            endmodule""")
        sim.run()
        return sim.output[0]

    def test_hex(self):
        assert self._run("%h", "16'hBEEF") == "beef"

    def test_octal(self):
        assert self._run("%o", "9'o723") == "723"

    def test_signed_decimal(self):
        assert self._run("%d", "-8'sd5") == "-5"

    def test_binary_with_x(self):
        sim = Simulator("""
            module tb;
              reg [3:0] v;
              initial begin
                v[1] = 1'b1;
                $display("%b", v);
              end
            endmodule""")
        sim.run()
        assert sim.output[0] == "xx1x"

    def test_percent_literal(self):
        assert self._run("100%%", "1'b0").startswith("100%")

    def test_width_padding(self):
        assert self._run("%5d", "8'd42") == "   42"


class TestMultipleEdgeDomains:
    def test_two_clocks(self):
        sim = Simulator("""
            module m(input clk_a, clk_b, output reg [3:0] ca, cb);
              initial begin ca = 0; cb = 0; end
              always @(posedge clk_a) ca <= ca + 1;
              always @(posedge clk_b) cb <= cb + 1;
            endmodule""")
        sim.poke("clk_a", 0)
        sim.poke("clk_b", 0)
        sim.clock("clk_a", 3)
        sim.clock("clk_b", 1)
        assert sim.peek_int("ca") == 3
        assert sim.peek_int("cb") == 1

    def test_negedge_process(self):
        sim = Simulator("""
            module m(input clk, output reg [3:0] n);
              initial n = 0;
              always @(negedge clk) n <= n + 1;
            endmodule""")
        # The first poke moves clk from x to 0 — an LRM negedge.
        sim.poke("clk", 0)
        sim.clock("clk", 2)  # plus two falling edges from full periods
        assert sim.peek_int("n") == 3

    def test_derived_clock(self):
        sim = Simulator("""
            module m(input clk, input rst, output reg [3:0] slow_count);
              reg div;
              always @(posedge clk)
                if (rst) div <= 0;
                else div <= ~div;
              always @(posedge div)
                if (!rst) slow_count <= slow_count + 1;
              initial slow_count = 0;
            endmodule""")
        sim.poke("clk", 0)
        sim.poke("rst", 1)
        sim.clock("clk")
        sim.poke("rst", 0)
        sim.clock("clk", 8)
        assert sim.peek_int("slow_count") == 4
