"""The hash-consed ROBDD engine behind the formal tier."""

import itertools

import pytest

from repro.verilog.formal import BDDBudgetError, BDDManager
from repro.verilog.formal.bdd import FALSE, TRUE


def three_vars(mgr):
    """Literals for vars 0, 1, 2 (allocation order fixes the index)."""
    return mgr.new_var(), mgr.new_var(), mgr.new_var()


class TestAlgebra:
    def test_constants(self):
        mgr = BDDManager()
        assert mgr.not_(TRUE) == FALSE
        assert mgr.not_(FALSE) == TRUE
        assert mgr.and_(TRUE, FALSE) == FALSE
        assert mgr.or_(TRUE, FALSE) == TRUE
        assert mgr.constant(True) == TRUE
        assert mgr.constant(False) == FALSE

    def test_var_roundtrip(self):
        mgr = BDDManager()
        a = mgr.new_var()
        assert mgr.not_(mgr.not_(a)) == a
        assert mgr.and_(a, a) == a
        assert mgr.or_(a, a) == a
        assert mgr.xor_(a, a) == FALSE
        assert mgr.xnor_(a, a) == TRUE

    def test_hash_consing_is_canonical(self):
        """Structurally equal functions intern to the same node id —
        equivalence is integer comparison, the engine's whole point."""
        mgr = BDDManager()
        a, b, c = three_vars(mgr)
        # De Morgan
        lhs = mgr.not_(mgr.and_(a, b))
        rhs = mgr.or_(mgr.not_(a), mgr.not_(b))
        assert lhs == rhs
        # Associativity / commutativity
        assert mgr.and_(mgr.and_(a, b), c) == mgr.and_(a, mgr.and_(b, c))
        assert mgr.or_(a, b) == mgr.or_(b, a)
        # XOR expansion
        assert mgr.xor_(a, b) == mgr.or_(mgr.and_(a, mgr.not_(b)),
                                         mgr.and_(mgr.not_(a), b))

    def test_ite_truth_table(self):
        mgr = BDDManager()
        a, b, c = three_vars(mgr)
        node = mgr.ite(a, b, c)
        for va, vb, vc in itertools.product([False, True], repeat=3):
            env = {0: va, 1: vb, 2: vc}
            assert mgr.eval_node(node, env) == (vb if va else vc)

    def test_and_all_or_all(self):
        mgr = BDDManager()
        vs = [mgr.new_var() for _ in range(4)]
        conj = mgr.and_all(vs)
        disj = mgr.or_all(vs)
        assert mgr.eval_node(conj, {i: True for i in range(4)})
        assert not mgr.eval_node(conj, {0: True, 1: True,
                                        2: True, 3: False})
        assert not mgr.eval_node(disj, {})
        assert mgr.eval_node(disj, {2: True})
        assert mgr.and_all([]) == TRUE
        assert mgr.or_all([]) == FALSE


class TestSat:
    def test_sat_one_satisfies(self):
        mgr = BDDManager()
        a, b, c = three_vars(mgr)
        node = mgr.and_(mgr.xor_(a, b), mgr.not_(c))
        assignment = mgr.sat_one(node)
        assert assignment is not None
        assert mgr.eval_node(node, assignment)

    def test_sat_one_false_is_none(self):
        mgr = BDDManager()
        assert mgr.sat_one(FALSE) is None

    def test_sat_one_true_is_empty(self):
        mgr = BDDManager()
        assert mgr.sat_one(TRUE) == {}

    def test_eval_missing_vars_read_false(self):
        """Don't-care inputs decode to 0, keeping counterexample
        replays deterministic."""
        mgr = BDDManager()
        a = mgr.new_var()
        assert mgr.eval_node(mgr.not_(a), {}) is True
        assert mgr.eval_node(a, {}) is False


class TestBudget:
    def test_budget_exhaustion_raises(self):
        mgr = BDDManager(node_budget=16)
        with pytest.raises(BDDBudgetError):
            vs = [mgr.new_var() for _ in range(12)]
            # A multiplier-style product of sums blows up any order.
            acc = TRUE
            for i in range(6):
                acc = mgr.and_(acc, mgr.or_(vs[i], vs[11 - i]))
                acc = mgr.xor_(acc, vs[i])

    def test_budget_not_hit_on_small_problems(self):
        mgr = BDDManager(node_budget=10_000)
        a = mgr.new_var()
        b = mgr.new_var()
        mgr.and_(mgr.or_(a, b), mgr.xor_(a, b))  # no raise
