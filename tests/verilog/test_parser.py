"""Unit tests for the Verilog parser."""

import pytest

from repro.verilog import ast_nodes as ast
from repro.verilog.parser import (
    ParseError,
    parse,
    parse_module,
    parse_number_literal,
)


class TestNumberLiterals:
    def test_plain_decimal(self):
        n = parse_number_literal("42")
        assert n.width is None and n.value == 42 and n.signed

    def test_sized_hex(self):
        n = parse_number_literal("8'hFF")
        assert (n.width, n.value) == (8, 255)

    def test_sized_binary(self):
        n = parse_number_literal("4'b1010")
        assert (n.width, n.value) == (4, 0b1010)

    def test_octal(self):
        n = parse_number_literal("6'o17")
        assert n.value == 0o17

    def test_signed_marker(self):
        assert parse_number_literal("4'sb1010").signed

    def test_x_digits(self):
        n = parse_number_literal("4'b1x0z")
        assert n.value == 0b1000
        assert n.xz_mask == 0b0101
        assert n.z_mask == 0b0001

    def test_question_mark_is_z(self):
        n = parse_number_literal("4'b10??")
        assert n.z_mask == 0b0011

    def test_top_x_extends(self):
        n = parse_number_literal("8'bx")
        assert n.xz_mask == 0xFF

    def test_underscores(self):
        assert parse_number_literal("16'hAB_CD").value == 0xABCD

    def test_truncation_to_width(self):
        assert parse_number_literal("4'hFF").value == 0xF


class TestModuleHeaders:
    def test_ansi_ports(self):
        m = parse_module(
            "module m(input a, output reg [3:0] y); endmodule")
        assert m.port_names() == ["a", "y"]
        assert m.find_port("y").net_kind == "reg"
        assert m.find_port("y").direction == "output"

    def test_shared_direction_carries(self):
        m = parse_module("module m(input [1:0] a, b, output y); endmodule")
        assert m.find_port("b").direction == "input"
        assert m.find_port("b").range is not None

    def test_non_ansi_ports_completed(self):
        m = parse_module("""
            module m(a, y);
              input [7:0] a;
              output reg y;
            endmodule""")
        assert m.find_port("a").direction == "input"
        assert m.find_port("y").direction == "output"
        assert m.find_port("y").net_kind == "reg"

    def test_parameter_port_list(self):
        m = parse_module(
            "module m #(parameter W = 8, D = 4)(input [W-1:0] a); endmodule")
        assert [p.name for p in m.parameters] == ["W", "D"]

    def test_empty_port_list(self):
        m = parse_module("module m(); endmodule")
        assert m.ports == []

    def test_no_port_list(self):
        m = parse_module("module m; endmodule")
        assert m.ports == []

    def test_multiple_modules(self):
        src = parse("module a; endmodule module b; endmodule")
        assert src.module_names() == ["a", "b"]

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse("module m(input a) endmodule")

    def test_unclosed_module_raises(self):
        with pytest.raises(ParseError):
            parse("module m(input a);")


class TestDeclarations:
    def test_wire_vector(self):
        m = parse_module("module m; wire [7:0] w; endmodule")
        decl = [i for i in m.items if isinstance(i, ast.Decl)][0]
        assert decl.kind == "wire" and decl.range is not None

    def test_memory(self):
        m = parse_module("module m; reg [7:0] mem [0:15]; endmodule")
        decl = [i for i in m.items if isinstance(i, ast.Decl)][0]
        assert len(decl.array_dims) == 1

    def test_signed_reg(self):
        m = parse_module("module m; reg signed [7:0] s; endmodule")
        decl = [i for i in m.items if isinstance(i, ast.Decl)][0]
        assert decl.signed

    def test_wire_with_init(self):
        m = parse_module("module m; wire w = 1'b1; endmodule")
        decl = [i for i in m.items if isinstance(i, ast.Decl)][0]
        assert decl.init is not None

    def test_localparam(self):
        m = parse_module("module m; localparam N = 4; endmodule")
        assert m.parameters[0].local

    def test_integer(self):
        m = parse_module("module m; integer i; endmodule")
        decl = [i for i in m.items if isinstance(i, ast.Decl)][0]
        assert decl.kind == "integer"


class TestStatements:
    def _body(self, text):
        m = parse_module(f"module m(input clk); {text} endmodule")
        always = [i for i in m.items if isinstance(i, ast.Always)][0]
        return always.body

    def test_nonblocking_assign(self):
        body = self._body("always @(posedge clk) q <= d;")
        assert isinstance(body, ast.Assign) and not body.blocking

    def test_blocking_assign(self):
        body = self._body("always @(*) y = a;")
        assert isinstance(body, ast.Assign) and body.blocking

    def test_if_else_chain(self):
        body = self._body(
            "always @(*) if (a) y = 1; else if (b) y = 2; else y = 3;")
        assert isinstance(body, ast.If)
        assert isinstance(body.else_stmt, ast.If)

    def test_case_with_default(self):
        body = self._body("""
            always @(*) case (sel)
              2'd0: y = a;
              2'd1, 2'd2: y = b;
              default: y = c;
            endcase""")
        assert isinstance(body, ast.Case)
        assert len(body.items) == 3
        assert len(body.items[1].exprs) == 2
        assert body.items[2].exprs == []

    def test_casez(self):
        body = self._body("always @(*) casez (x) 4'b1???: y = 1; endcase")
        assert body.kind == "casez"

    def test_for_loop(self):
        body = self._body(
            "always @(*) for (i = 0; i < 8; i = i + 1) y[i] = a[i];")
        assert isinstance(body, ast.For)

    def test_named_block_with_decls(self):
        body = self._body("""
            always @(posedge clk) begin : blk
              integer k;
              k = 0;
            end""")
        assert isinstance(body, ast.Block)
        assert body.name == "blk"
        assert body.decls[0].kind == "integer"

    def test_nonblocking_less_equal_ambiguity(self):
        # 'a <= b' target must not swallow '<=' as comparison.
        body = self._body("always @(posedge clk) q <= q <= 4;")
        assert isinstance(body, ast.Assign)
        assert isinstance(body.value, ast.Binary)
        assert body.value.op == "<="

    def test_delay_statement(self):
        m = parse_module("module m; initial #10 x = 1; endmodule")
        init = [i for i in m.items if isinstance(i, ast.Initial)][0]
        assert isinstance(init.body, ast.Delay)

    def test_forever_with_delay(self):
        m = parse_module(
            "module m; reg c; initial forever #5 c = ~c; endmodule")
        init = [i for i in m.items if isinstance(i, ast.Initial)][0]
        assert isinstance(init.body, ast.Forever)

    def test_system_task(self):
        m = parse_module(
            'module m; initial $display("hi %d", 3); endmodule')
        init = [i for i in m.items if isinstance(i, ast.Initial)][0]
        assert isinstance(init.body, ast.SystemTaskCall)
        assert init.body.name == "$display"

    def test_concat_lvalue(self):
        m = parse_module(
            "module m(input [3:0] a, b, output [4:0] s);"
            " assign {s[4], s[3:0]} = a + b; endmodule")
        ca = [i for i in m.items if isinstance(i, ast.ContinuousAssign)][0]
        assert isinstance(ca.target, ast.Concat)


class TestExpressions:
    def _expr(self, text):
        m = parse_module(f"module m; assign y = {text}; endmodule")
        return [i for i in m.items
                if isinstance(i, ast.ContinuousAssign)][0].value

    def test_precedence_mul_over_add(self):
        e = self._expr("a + b * c")
        assert e.op == "+" and e.right.op == "*"

    def test_precedence_shift_vs_add(self):
        e = self._expr("a << 1 + 2")
        assert e.op == "<<"
        assert e.right.op == "+"

    def test_ternary(self):
        e = self._expr("sel ? a : b")
        assert isinstance(e, ast.Ternary)

    def test_nested_ternary_right_assoc(self):
        e = self._expr("a ? b : c ? d : e")
        assert isinstance(e.if_false, ast.Ternary)

    def test_reduction_vs_bitwise(self):
        e = self._expr("&a & |b")
        assert e.op == "&"
        assert isinstance(e.left, ast.Unary) and e.left.op == "&"
        assert isinstance(e.right, ast.Unary) and e.right.op == "|"

    def test_concat_and_replicate(self):
        e = self._expr("{a, {4{b}}, c}")
        assert isinstance(e, ast.Concat)
        assert isinstance(e.parts[1], ast.Replicate)

    def test_part_select(self):
        e = self._expr("data[7:4]")
        assert isinstance(e, ast.Select) and e.kind == "part"

    def test_indexed_part_select(self):
        e = self._expr("data[i +: 8]")
        assert e.kind == "plus"

    def test_function_call(self):
        e = self._expr("f(a, b)")
        assert isinstance(e, ast.FunctionCall)
        assert len(e.args) == 2

    def test_system_function(self):
        e = self._expr("$clog2(DEPTH)")
        assert isinstance(e, ast.SystemCall)

    def test_hierarchical_reference(self):
        e = self._expr("u1.u2.sig")
        assert isinstance(e, ast.HierarchicalId)
        assert e.parts == ("u1", "u2", "sig")

    def test_equality_chain(self):
        e = self._expr("a == b")
        assert e.op == "=="

    def test_power(self):
        e = self._expr("2 ** n")
        assert e.op == "**"


class TestInstancesAndGenerate:
    def test_named_instance(self):
        m = parse_module(
            "module m; sub u1(.a(x), .b(y)); endmodule")
        inst = [i for i in m.items if isinstance(i, ast.Instance)][0]
        assert inst.module_name == "sub"
        assert [c.name for c in inst.connections] == ["a", "b"]

    def test_positional_instance(self):
        m = parse_module("module m; sub u1(x, y); endmodule")
        inst = [i for i in m.items if isinstance(i, ast.Instance)][0]
        assert all(c.name is None for c in inst.connections)

    def test_parameterised_instance(self):
        m = parse_module(
            "module m; sub #(.W(8)) u1(.a(x)); endmodule")
        inst = [i for i in m.items if isinstance(i, ast.Instance)][0]
        assert inst.param_overrides[0].name == "W"

    def test_open_connection(self):
        m = parse_module("module m; sub u1(.a(x), .b()); endmodule")
        inst = [i for i in m.items if isinstance(i, ast.Instance)][0]
        assert inst.connections[1].expr is None

    def test_multiple_instances_one_statement(self):
        m = parse_module("module m; sub u1(a), u2(b); endmodule")
        instances = [i for i in m.items if isinstance(i, ast.Instance)]
        assert [i.instance_name for i in instances] == ["u1", "u2"]

    def test_gate_primitives(self):
        m = parse_module("module m; and g1(y, a, b); not (n, a); endmodule")
        gates = [i for i in m.items if isinstance(i, ast.GateInstance)]
        assert [g.gate_kind for g in gates] == ["and", "not"]

    def test_generate_for(self):
        m = parse_module("""
            module m;
              genvar i;
              generate
                for (i = 0; i < 4; i = i + 1) begin : g
                  wire w;
                end
              endgenerate
            endmodule""")
        gen = [i for i in m.items if isinstance(i, ast.GenerateFor)][0]
        assert gen.genvar == "i" and gen.label == "g"

    def test_generate_if_else(self):
        m = parse_module("""
            module m;
              generate
                if (1) begin wire a; end
                else begin wire b; end
              endgenerate
            endmodule""")
        gen = [i for i in m.items if isinstance(i, ast.GenerateIf)][0]
        assert gen.then_items and gen.else_items


class TestFunctionsAndTasks:
    def test_function_non_ansi(self):
        m = parse_module("""
            module m;
              function [7:0] add1;
                input [7:0] x;
                add1 = x + 1;
              endfunction
            endmodule""")
        f = [i for i in m.items if isinstance(i, ast.FunctionDecl)][0]
        assert f.name == "add1"
        assert len(f.inputs) == 1

    def test_function_ansi(self):
        m = parse_module("""
            module m;
              function [7:0] mix(input [7:0] a, input [7:0] b);
                mix = a ^ b;
              endfunction
            endmodule""")
        f = [i for i in m.items if isinstance(i, ast.FunctionDecl)][0]
        assert len(f.inputs) == 2

    def test_task(self):
        m = parse_module("""
            module m;
              task show;
                input [7:0] v;
                $display("%d", v);
              endtask
            endmodule""")
        t = [i for i in m.items if isinstance(i, ast.TaskDecl)][0]
        assert t.name == "show"


class TestErrors:
    @pytest.mark.parametrize("source", [
        "module m(input a); assign = 1; endmodule",
        "module m; always @(posedge) x <= 1; endmodule",
        "module m; case endmodule",
        "module 123m; endmodule",
        "endmodule",
        "module m; assign y 1; endmodule",
        "module m; if; endmodule",
    ])
    def test_invalid_sources_raise(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_error_carries_position(self):
        try:
            parse("module m;\n  assign y = ;\nendmodule")
        except ParseError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected ParseError")

    def test_parse_module_rejects_two_modules(self):
        with pytest.raises(ParseError):
            parse_module("module a; endmodule module b; endmodule")
