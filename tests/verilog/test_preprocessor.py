"""Tests for the Verilog preprocessor."""

import pytest

from repro.verilog.preprocessor import (
    Preprocessor,
    PreprocessorError,
    preprocess,
)


class TestDefines:
    def test_object_macro(self):
        result = preprocess("`define W 8\nwire [`W-1:0] x;")
        assert "wire [8-1:0] x;" in result.text

    def test_function_macro(self):
        result = preprocess(
            "`define MAX(a, b) ((a) > (b) ? (a) : (b))\n"
            "assign y = `MAX(p, q);")
        assert "((p) > (q) ? (p) : (q))" in result.text

    def test_nested_macro_expansion(self):
        result = preprocess(
            "`define A 4\n`define B (`A + 1)\nwire [`B:0] x;")
        assert "(4 + 1)" in result.text

    def test_undef(self):
        result = preprocess("`define X 1\n`undef X\n`ifdef X\nyes\n`endif")
        assert "yes" not in result.text

    def test_multiline_define(self):
        result = preprocess(
            "`define LONG first \\\nsecond\n`LONG")
        assert "first" in result.text and "second" in result.text

    def test_unknown_macro_left_in_place(self):
        result = preprocess("assign x = `MYSTERY;")
        assert "`MYSTERY" in result.text


class TestConditionals:
    def test_ifdef_taken(self):
        result = preprocess("`define F\n`ifdef F\nkeep\n`else\ndrop\n`endif")
        assert "keep" in result.text and "drop" not in result.text

    def test_ifdef_not_taken(self):
        result = preprocess("`ifdef F\ndrop\n`else\nkeep\n`endif")
        assert "keep" in result.text and "drop" not in result.text

    def test_ifndef(self):
        result = preprocess("`ifndef F\nkeep\n`endif")
        assert "keep" in result.text

    def test_elsif(self):
        result = preprocess(
            "`define B\n`ifdef A\n1\n`elsif B\n2\n`else\n3\n`endif")
        stripped = result.text.strip()
        assert stripped == "2"

    def test_nested_conditionals(self):
        result = preprocess(
            "`define O\n`ifdef O\n`ifdef I\nx\n`else\ny\n`endif\n`endif")
        assert "y" in result.text and "x" not in result.text.replace(
            "y", "")

    def test_unterminated_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("`ifdef X\nnever closed")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("`endif")


class TestIncludes:
    def test_resolved_include(self):
        result = preprocess(
            '`include "defs.vh"\nwire [`W:0] x;',
            include_files={"defs.vh": "`define W 7"})
        assert "wire [7:0] x;" in result.text
        assert result.missing_includes == []

    def test_missing_include_recorded(self):
        result = preprocess('`include "ghost.vh"\nmodule m; endmodule')
        assert result.missing_includes == ["ghost.vh"]
        assert "module m" in result.text

    def test_nested_includes(self):
        result = preprocess(
            '`include "a.vh"',
            include_files={"a.vh": '`include "b.vh"', "b.vh": "deep"})
        assert "deep" in result.text

    def test_include_cycle_guard(self):
        with pytest.raises(PreprocessorError):
            preprocess('`include "a.vh"',
                       include_files={"a.vh": '`include "a.vh"'})


class TestDirectiveStripping:
    def test_timescale_recorded_and_stripped(self):
        result = preprocess("`timescale 1ns/1ps\nmodule m; endmodule")
        assert result.timescale == "1ns/1ps"
        assert "timescale" not in result.text

    def test_default_nettype_stripped(self):
        result = preprocess("`default_nettype none\nmodule m; endmodule")
        assert "default_nettype" not in result.text

    def test_celldefine_stripped(self):
        result = preprocess("`celldefine\nmodule m; endmodule\n"
                            "`endcelldefine")
        assert "celldefine" not in result.text

    def test_predefined_macros(self):
        result = Preprocessor(predefined={"SIM": "1"}).run(
            "`ifdef SIM\nsim_only\n`endif")
        assert "sim_only" in result.text
