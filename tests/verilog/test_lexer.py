"""Unit tests for the Verilog lexer."""

import pytest

from repro.verilog.lexer import LexError, Lexer, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_keywords_recognised(self):
        assert kinds("module endmodule wire reg") == [TokenKind.KEYWORD] * 4

    def test_identifiers(self):
        toks = tokenize("foo _bar baz123 a$b")
        assert [t.kind for t in toks[:-1]] == [TokenKind.IDENT] * 4
        assert toks[3].text == "a$b"

    def test_escaped_identifier(self):
        toks = tokenize(r"\weird+name another")
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].text == r"\weird+name"
        assert toks[1].text == "another"

    def test_system_identifier(self):
        toks = tokenize("$display $finish")
        assert all(t.kind is TokenKind.SYSTEM_IDENT for t in toks[:-1])

    def test_string_literal_with_escapes(self):
        toks = tokenize(r'"hello\nworld"')
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].text == "hello\nworld"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestNumbers:
    def test_plain_decimal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.NUMBER
        assert toks[0].text == "42"

    def test_sized_hex(self):
        assert texts("8'hFF") == ["8'hFF"]

    def test_sized_binary_with_xz(self):
        assert texts("4'b10xz") == ["4'b10xz"]

    def test_signed_literal(self):
        assert texts("4'sb1010") == ["4'sb1010"]

    def test_unsized_based(self):
        assert texts("'b0 'hFF") == ["'b0", "'hFF"]

    def test_size_with_space_before_base(self):
        toks = tokenize("8 'd255")
        assert toks[0].kind is TokenKind.NUMBER
        assert "255" in toks[0].text

    def test_underscores_allowed(self):
        assert texts("32'hDEAD_BEEF") == ["32'hDEAD_BEEF"]

    def test_real_number(self):
        assert texts("3.14") == ["3.14"]

    def test_scientific_notation(self):
        assert texts("1e9 2.5e-3") == ["1e9", "2.5e-3"]

    def test_invalid_base_raises(self):
        with pytest.raises(LexError):
            tokenize("8'q12")


class TestOperators:
    def test_multichar_operators_maximal_munch(self):
        assert texts("<<< >>> === !== <= >= << >>") == [
            "<<<", ">>>", "===", "!==", "<=", ">=", "<<", ">>"]

    def test_indexed_part_select_tokens(self):
        assert texts("a[3+:2]")[1:] == ["[", "3", "+:", "2", "]"]

    def test_reduction_tokens(self):
        assert texts("~& ~| ~^") == ["~&", "~|", "~^"]


class TestTrivia:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_attribute_skipped(self):
        assert texts("(* full_case *) a") == ["a"]

    def test_sensitivity_star_not_eaten_as_attribute(self):
        assert texts("@(*)") == ["@", "(", "*", ")"]

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestTokenHelpers:
    def test_is_op(self):
        tok = tokenize("+")[0]
        assert tok.is_op("+", "-")
        assert not tok.is_op("-")

    def test_is_kw(self):
        tok = tokenize("module")[0]
        assert tok.is_kw("module")
        assert not tok.is_kw("endmodule")

    def test_iterating_lexer_terminates(self):
        toks = list(Lexer("a b c"))
        assert toks[-1].kind is TokenKind.EOF
