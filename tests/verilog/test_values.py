"""Unit and property tests for four-state vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.verilog.sim.values import Vec4, concat_all


def v(text, signed=False):
    return Vec4.from_string(text, signed)


class TestConstruction:
    def test_from_int_masks_to_width(self):
        assert Vec4.from_int(0x1FF, 8).to_int() == 0xFF

    def test_from_int_negative_two_complement(self):
        value = Vec4.from_int(-1, 8)
        assert value.to_int() == 0xFF

    def test_all_x(self):
        assert Vec4.all_x(4).to_bit_string() == "xxxx"

    def test_all_z(self):
        assert Vec4.all_z(4).to_bit_string() == "zzzz"

    def test_from_string_roundtrip(self):
        assert v("10xz").to_bit_string() == "10xz"

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Vec4(0)

    def test_val_bits_inside_xz_cleared(self):
        value = Vec4(4, val=0b1111, xz=0b0011, z=0)
        assert value.val == 0b1100

    def test_to_int_raises_on_unknown(self):
        with pytest.raises(ValueError):
            v("1x").to_int()

    def test_to_int_or_none(self):
        assert v("1x").to_int_or_none() is None
        assert v("10").to_int_or_none() == 2


class TestBitwise:
    def test_and_truth_table_with_x(self):
        # MSB-first "01" & "xx": bit1 = 0&x = 0, bit0 = 1&x = x.
        assert v("01").bit_and(v("xx")).to_bit_string() == "0x"

    def test_or_truth_table_with_x(self):
        # bit1 = 0|x = x, bit0 = 1|x = 1.
        assert v("01").bit_or(v("xx")).to_bit_string() == "x1"

    def test_xor_propagates_x(self):
        assert v("10").bit_xor(v("x1")).to_bit_string() == "x1"

    def test_z_behaves_as_x(self):
        assert v("01").bit_and(v("zz")).to_bit_string() == "0x"

    def test_not(self):
        assert v("10x").bit_not().to_bit_string() == "01x"

    def test_widths_extend(self):
        result = Vec4.from_int(0xF, 4).bit_and(Vec4.from_int(0xFF, 8))
        assert result.width == 8
        assert result.to_int() == 0x0F


class TestReductions:
    def test_reduce_and(self):
        assert v("1111").reduce_and().to_int() == 1
        assert v("1101").reduce_and().to_int() == 0
        assert v("11x1").reduce_and().has_unknown
        # A known zero decides the result even with x present.
        assert v("10x1").reduce_and().to_int() == 0

    def test_reduce_or(self):
        assert v("0000").reduce_or().to_int() == 0
        assert v("00x0").reduce_or().has_unknown
        assert v("01x0").reduce_or().to_int() == 1

    def test_reduce_xor_parity(self):
        assert v("1110").reduce_xor().to_int() == 1
        assert v("1111").reduce_xor().to_int() == 0
        assert v("1x11").reduce_xor().has_unknown


class TestArithmetic:
    def test_add_wraps(self):
        result = Vec4.from_int(0xFF, 8).add(Vec4.from_int(1, 8))
        assert result.to_int() == 0

    def test_add_with_x_poisons(self):
        assert v("1x").add(v("01")).has_unknown

    def test_sub(self):
        assert Vec4.from_int(5, 8).sub(Vec4.from_int(7, 8)).to_int() == 0xFE

    def test_signed_mul(self):
        a = Vec4.from_int(-3 & 0xF, 4, signed=True)
        b = Vec4.from_int(2, 4, signed=True)
        assert a.mul(b).to_signed_int() == -6

    def test_div_by_zero_is_x(self):
        assert Vec4.from_int(5, 8).div(Vec4.from_int(0, 8)).has_unknown

    def test_signed_div_truncates_toward_zero(self):
        a = Vec4.from_int(-7 & 0xFF, 8, signed=True)
        b = Vec4.from_int(2, 8, signed=True)
        assert a.div(b).to_signed_int() == -3

    def test_mod_sign_follows_dividend(self):
        a = Vec4.from_int(-7 & 0xFF, 8, signed=True)
        b = Vec4.from_int(2, 8, signed=True)
        assert a.mod(b).to_signed_int() == -1

    def test_power(self):
        assert Vec4.from_int(2, 8).power(Vec4.from_int(5, 8)).to_int() == 32

    def test_neg(self):
        assert Vec4.from_int(1, 8).neg().to_int() == 0xFF


class TestShifts:
    def test_shl(self):
        assert Vec4.from_int(0b0011, 4).shl(Vec4.from_int(2, 4)).to_int() == 0b1100

    def test_shl_overflow_drops(self):
        assert Vec4.from_int(0b1000, 4).shl(Vec4.from_int(1, 4)).to_int() == 0

    def test_shr(self):
        assert Vec4.from_int(0b1100, 4).shr(Vec4.from_int(2, 4)).to_int() == 0b0011

    def test_shift_by_width_or_more_is_zero(self):
        assert Vec4.from_int(0xF, 4).shr(Vec4.from_int(4, 4)).to_int() == 0

    def test_ashr_signed_fills_sign(self):
        a = Vec4.from_int(0b1000, 4, signed=True)
        assert a.ashr(Vec4.from_int(2, 4)).to_bit_string() == "1110"

    def test_ashr_unsigned_is_logical(self):
        a = Vec4.from_int(0b1000, 4)
        assert a.ashr(Vec4.from_int(2, 4)).to_int() == 0b0010

    def test_shift_x_amount_poisons(self):
        assert Vec4.from_int(1, 4).shl(v("x")).has_unknown


class TestComparisons:
    def test_eq_known(self):
        assert Vec4.from_int(5, 4).eq(Vec4.from_int(5, 4)).to_int() == 1

    def test_eq_decided_false_despite_x(self):
        # 10 vs 0x: MSB differs, so == is known 0.
        assert v("10").eq(v("0x")).to_int() == 0

    def test_eq_undecidable_is_x(self):
        assert v("1x").eq(v("11")).has_unknown

    def test_case_eq_matches_patterns(self):
        assert v("1x").case_eq(v("1x")).to_int() == 1
        assert v("1x").case_eq(v("1z")).to_int() == 0

    def test_relational_signed(self):
        a = Vec4.from_int(-1 & 0xF, 4, signed=True)
        b = Vec4.from_int(1, 4, signed=True)
        assert a.lt(b).to_int() == 1

    def test_relational_unsigned(self):
        a = Vec4.from_int(0xF, 4)
        b = Vec4.from_int(1, 4)
        assert a.lt(b).to_int() == 0

    def test_relational_with_x_is_x(self):
        assert v("1x").lt(v("10")).has_unknown


class TestLogical:
    def test_truthiness(self):
        assert Vec4.from_int(2, 4).truthiness() is True
        assert Vec4.from_int(0, 4).truthiness() is False
        assert v("0x").truthiness() is None
        assert v("1x").truthiness() is True

    def test_logical_and_short_decides(self):
        assert Vec4.from_int(0, 1).logical_and(v("x")).to_int() == 0

    def test_logical_or_short_decides(self):
        assert Vec4.from_int(1, 1).logical_or(v("x")).to_int() == 1

    def test_logical_not(self):
        assert Vec4.from_int(0, 4).logical_not().to_int() == 1
        assert v("000x").logical_not().has_unknown


class TestStructure:
    def test_concat(self):
        result = v("10").concat(v("01"))
        assert result.to_bit_string() == "1001"

    def test_concat_all_order(self):
        result = concat_all([v("1"), v("0"), v("x")])
        assert result.to_bit_string() == "10x"

    def test_replicate(self):
        assert v("10").replicate(3).to_bit_string() == "101010"

    def test_replicate_zero_rejected(self):
        with pytest.raises(ValueError):
            v("1").replicate(0)

    def test_slice(self):
        assert v("1100").slice(3, 2).to_bit_string() == "11"

    def test_slice_out_of_range_reads_x(self):
        assert v("10").slice(4, 3).to_bit_string() == "xx"

    def test_set_slice(self):
        result = v("0000").set_slice(2, 1, v("11"))
        assert result.to_bit_string() == "0110"

    def test_resize_zero_extend(self):
        assert Vec4.from_int(5, 4).resize(8).to_bit_string() == "00000101"

    def test_resize_sign_extend(self):
        value = Vec4.from_int(0b1100, 4, signed=True)
        assert value.resize(8, True).to_bit_string() == "11111100"

    def test_resize_x_sign_extends_x(self):
        value = Vec4.from_string("x100", signed=True)
        assert value.resize(6, True).to_bit_string() == "xxx100"

    def test_resize_truncate(self):
        assert Vec4.from_int(0xAB, 8).resize(4).to_int() == 0xB


# -- property-based tests -----------------------------------------------------

widths = st.integers(min_value=1, max_value=64)


@st.composite
def int_pairs(draw):
    width = draw(widths)
    mask = (1 << width) - 1
    return (width,
            draw(st.integers(min_value=0, max_value=mask)),
            draw(st.integers(min_value=0, max_value=mask)))


class TestProperties:
    @given(int_pairs())
    def test_add_matches_python(self, triple):
        width, a, b = triple
        result = Vec4.from_int(a, width).add(Vec4.from_int(b, width))
        assert result.to_int() == (a + b) & ((1 << width) - 1)

    @given(int_pairs())
    def test_and_or_de_morgan(self, triple):
        width, a, b = triple
        va, vb = Vec4.from_int(a, width), Vec4.from_int(b, width)
        lhs = va.bit_and(vb).bit_not()
        rhs = va.bit_not().bit_or(vb.bit_not())
        assert lhs == rhs

    @given(int_pairs())
    def test_xor_self_inverse(self, triple):
        width, a, b = triple
        va, vb = Vec4.from_int(a, width), Vec4.from_int(b, width)
        assert va.bit_xor(vb).bit_xor(vb) == va

    @given(int_pairs())
    def test_sub_add_roundtrip(self, triple):
        width, a, b = triple
        va, vb = Vec4.from_int(a, width), Vec4.from_int(b, width)
        assert va.sub(vb).add(vb) == va

    @given(st.text(alphabet="01xz", min_size=1, max_size=32))
    def test_bit_string_roundtrip(self, text):
        assert Vec4.from_string(text).to_bit_string() == text

    @given(st.text(alphabet="01xz", min_size=1, max_size=24),
           st.text(alphabet="01xz", min_size=1, max_size=24))
    def test_concat_width_and_parts(self, left, right):
        result = Vec4.from_string(left).concat(Vec4.from_string(right))
        assert result.width == len(left) + len(right)
        assert result.to_bit_string() == left + right

    @given(st.text(alphabet="01", min_size=1, max_size=32))
    def test_double_not_identity(self, text):
        value = Vec4.from_string(text)
        assert value.bit_not().bit_not() == value

    @given(int_pairs())
    def test_eq_agrees_with_python(self, triple):
        width, a, b = triple
        result = Vec4.from_int(a, width).eq(Vec4.from_int(b, width))
        assert result.to_int() == int(a == b)

    @given(widths, st.data())
    def test_resize_preserves_value_when_widening(self, width, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        vec = Vec4.from_int(value, width)
        assert vec.resize(width + 8).to_int() == value
