"""Tests for compile checking with the paper's failure taxonomy."""

import pytest

from repro.verilog import Category, Severity, check, has_module_declaration


GOOD = """\
module good(input a, input b, output y);
  wire t;
  assign t = a & b;
  assign y = ~t;
endmodule
"""


class TestStatusClassification:
    def test_clean(self):
        assert check(GOOD).status == "clean"

    def test_syntax_error(self):
        result = check("module m(input a output y); endmodule")
        assert result.status == "syntax"
        assert result.syntax_errors

    def test_unknown_module_is_dependency(self):
        result = check("module m; ghost u(.a(1'b0)); endmodule")
        assert result.status == "dependency"
        assert "ghost" in result.dependency_issues[0].message

    def test_undefined_identifier_is_dependency(self):
        result = check(
            "module m(output y); assign y = external_net; endmodule")
        assert result.status == "dependency"

    def test_missing_include_is_dependency(self):
        result = check('`include "nowhere.vh"\nmodule m; endmodule')
        assert result.status == "dependency"

    def test_syntax_beats_dependency(self):
        result = check(
            "module m; ghost u(.a(1'b0)) endmodule")  # missing ';'
        assert result.status == "syntax"

    def test_no_module_is_syntax(self):
        assert check("wire x;").status == "syntax"

    def test_known_sibling_module_ok(self):
        source = GOOD + "\nmodule top(input a, b, output y);\n" \
                        "  good u(.a(a), .b(b), .y(y));\nendmodule\n"
        assert check(source).status == "clean"

    def test_extra_modules_parameter(self):
        result = check("module m; lib_cell u(.a(1'b0)); endmodule",
                       extra_modules=["lib_cell"])
        assert result.status == "clean"


class TestScopeResolution:
    def test_function_locals_resolve(self):
        source = """
            module m(input [3:0] x, output [3:0] y);
              function [3:0] inc;
                input [3:0] v;
                inc = v + 1;
              endfunction
              assign y = inc(x);
            endmodule"""
        assert check(source).status == "clean"

    def test_block_locals_resolve(self):
        source = """
            module m(input clk, output reg [3:0] q);
              always @(posedge clk) begin : blk
                integer i;
                for (i = 0; i < 4; i = i + 1)
                  q[i] <= ~q[i];
              end
            endmodule"""
        assert check(source).status == "clean"

    def test_genvar_resolves(self):
        source = """
            module m(input [3:0] a, output [3:0] y);
              genvar g;
              generate
                for (g = 0; g < 4; g = g + 1) begin : bits
                  assign y[g] = ~a[g];
                end
              endgenerate
            endmodule"""
        assert check(source).status == "clean"

    def test_parameters_resolve(self):
        source = """
            module m #(parameter W = 4)(input [W-1:0] a,
                                        output [W-1:0] y);
              localparam HALF = W / 2;
              assign y = a << HALF;
            endmodule"""
        assert check(source).status == "clean"

    def test_instance_connections_allow_implicit_nets(self):
        source = GOOD + """
            module top(input p, q, output r);
              good u(.a(p), .b(q), .y(implicit_wire));
              assign r = p;
            endmodule"""
        # Implicit nets in connections are legal Verilog.
        assert check(source).status == "clean"

    def test_duplicate_reports_collapsed(self):
        result = check(
            "module m(output y, output z);\n"
            "  assign y = ghost;\n  assign z = ghost;\nendmodule")
        ghost_reports = [d for d in result.diagnostics
                         if "ghost" in d.message]
        assert len(ghost_reports) == 1


class TestDiagnostics:
    def test_positions_reported(self):
        result = check("module m;\n  assign y = ;\nendmodule")
        assert result.syntax_errors[0].line == 2

    def test_category_enum(self):
        result = check("module m; ghost u(); endmodule")
        diag = result.dependency_issues[0]
        assert diag.category is Category.DEPENDENCY
        assert diag.severity is Severity.ERROR

    def test_str_rendering(self):
        result = check("module m; ghost u(); endmodule")
        text = str(result.dependency_issues[0])
        assert "dependency" in text


class TestModuleDeclarationFilter:
    def test_positive(self):
        assert has_module_declaration(GOOD)

    def test_negative(self):
        assert not has_module_declaration("// nothing here\nwire x;")

    def test_commented_module_ignored(self):
        assert not has_module_declaration("// module fake(input a);")
        assert not has_module_declaration("/* module fake; */")

    def test_escaped_identifier_module(self):
        assert has_module_declaration("module \\weird-name (a); endmodule")
