"""Digest-keyed elaboration memo: exact counters, persistent warmth."""

import pytest

from repro.obs import Observability
from repro.pipeline.diskcache import DiskCache
from repro.verilog import ElaborationError, ParseError
from repro.verilog.formal import ElaborationMemo, memo_key

MODULE = "module t(input a, output y);\n  assign y = ~a;\nendmodule\n"
OTHER = "module u(input a, output y);\n  assign y = a;\nendmodule\n"


class TestMemoKey:
    def test_content_addressed(self):
        assert memo_key(MODULE) == memo_key(MODULE)
        assert memo_key(MODULE) != memo_key(OTHER)
        assert memo_key(MODULE) != memo_key(MODULE + " ")

    def test_top_and_params_discriminate(self):
        assert memo_key(MODULE, top="t") != memo_key(MODULE)
        assert memo_key(MODULE, params={"W": 8}) != memo_key(MODULE)
        assert (memo_key(MODULE, params={"W": 8, "D": 2})
                == memo_key(MODULE, params={"D": 2, "W": 8}))


class TestMemoryTier:
    def test_hit_miss_counters_are_exact(self):
        memo = ElaborationMemo()
        memo.elaborate(MODULE)          # miss
        memo.elaborate(MODULE)          # hit
        memo.elaborate(OTHER)           # miss
        memo.elaborate(MODULE)          # hit
        memo.elaborate(OTHER)           # hit
        assert memo.stats() == (3, 2)
        assert len(memo) == 2

    def test_same_design_object_returned(self):
        memo = ElaborationMemo()
        assert memo.elaborate(MODULE) is memo.elaborate(MODULE)

    def test_counters_flow_into_observability(self):
        obs = Observability()
        memo = ElaborationMemo(obs=obs)
        memo.elaborate(MODULE)
        memo.elaborate(MODULE)
        assert obs.registry.counter("formal.memo.hit").value == 1
        assert obs.registry.counter("formal.memo.miss").value == 1

    def test_errors_not_cached(self):
        memo = ElaborationMemo()
        for _ in range(2):
            with pytest.raises(ParseError):
                memo.elaborate("module broken(")
        with pytest.raises(ElaborationError):
            memo.elaborate("")
        # Every failing call was a miss; nothing poisoned the memo.
        assert memo.stats() == (0, 3)
        assert len(memo) == 0


class TestDiskTier:
    def test_warmth_survives_memo_instances(self, tmp_path):
        disk = DiskCache(tmp_path / "memo")
        cold = ElaborationMemo(disk=disk)
        cold.elaborate(MODULE)
        assert cold.stats() == (0, 1)

        warm = ElaborationMemo(disk=DiskCache(tmp_path / "memo"))
        design = warm.elaborate(MODULE)
        # Fresh process-level dict, but the disk tier answers: no
        # re-elaboration, and the counters prove it.
        assert warm.stats() == (1, 0)
        assert design.signals["y"].width == 1

    def test_disk_miss_falls_back_to_elaboration(self, tmp_path):
        memo = ElaborationMemo(disk=DiskCache(tmp_path / "memo"))
        memo.elaborate(MODULE)
        memo2 = ElaborationMemo(disk=DiskCache(tmp_path / "memo"))
        memo2.elaborate(OTHER)  # never seen: true miss through both tiers
        assert memo2.stats() == (0, 1)
