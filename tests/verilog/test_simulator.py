"""Integration tests for the event-driven simulator."""

import pytest

from repro.verilog import Simulator, SimulationError, ElaborationError
from repro.verilog.sim.values import Vec4


class TestCombinational:
    def test_adder_with_carry(self):
        sim = Simulator("""
            module adder(input [7:0] a, b, input cin,
                         output [7:0] sum, output cout);
              assign {cout, sum} = a + b + cin;
            endmodule""")
        sim.poke("a", 200)
        sim.poke("b", 100)
        sim.poke("cin", 1)
        assert sim.peek_int("sum") == (200 + 100 + 1) % 256
        assert sim.peek_int("cout") == 1

    def test_mux_case(self):
        sim = Simulator("""
            module mux(input [1:0] sel, input [7:0] a, b, c, d,
                       output reg [7:0] y);
              always @(*) case (sel)
                2'd0: y = a; 2'd1: y = b; 2'd2: y = c; default: y = d;
              endcase
            endmodule""")
        for name, value in (("a", 10), ("b", 20), ("c", 30), ("d", 40)):
            sim.poke(name, value)
        for sel, expected in ((0, 10), (1, 20), (2, 30), (3, 40)):
            sim.poke("sel", sel)
            assert sim.peek_int("y") == expected

    def test_ternary_priority_encoder(self):
        sim = Simulator("""
            module enc(input [3:0] req, output [1:0] grant, output valid);
              assign grant = req[3] ? 2'd3 : req[2] ? 2'd2 :
                             req[1] ? 2'd1 : 2'd0;
              assign valid = |req;
            endmodule""")
        sim.poke("req", 0b0110)
        assert sim.peek_int("grant") == 2
        assert sim.peek_int("valid") == 1
        sim.poke("req", 0)
        assert sim.peek_int("valid") == 0

    def test_comb_always_if_chain(self):
        sim = Simulator("""
            module abs(input signed [7:0] x, output reg [7:0] y);
              always @(*) begin
                if (x < 0) y = -x;
                else y = x;
              end
            endmodule""")
        sim.poke("x", (-5) & 0xFF)
        assert sim.peek_int("y") == 5
        sim.poke("x", 7)
        assert sim.peek_int("y") == 7

    def test_reduction_and_concat(self):
        sim = Simulator("""
            module m(input [3:0] a, output p, output [7:0] d);
              assign p = ^a;
              assign d = {a, ~a};
            endmodule""")
        sim.poke("a", 0b1011)
        assert sim.peek_int("p") == 1
        assert sim.peek_int("d") == (0b1011 << 4) | 0b0100

    def test_shifts_signed_unsigned(self):
        sim = Simulator("""
            module sh(input signed [7:0] s, input [2:0] n,
                      output signed [7:0] ar, output [7:0] lr);
              assign ar = s >>> n;
              assign lr = s >> n;
            endmodule""")
        sim.poke("s", 0b10000000)
        sim.poke("n", 2)
        assert sim.peek_int("ar") == 0b11100000
        assert sim.peek_int("lr") == 0b00100000

    def test_function_evaluation(self):
        sim = Simulator("""
            module m(input [7:0] x, output [7:0] y);
              function [7:0] double;
                input [7:0] v;
                double = v << 1;
              endfunction
              assign y = double(x) + 1;
            endmodule""")
        sim.poke("x", 5)
        assert sim.peek_int("y") == 11

    def test_recursive_function(self):
        sim = Simulator("""
            module m(input [3:0] n, output [15:0] f);
              function [15:0] fact;
                input [3:0] k;
                if (k <= 1) fact = 1;
                else fact = k * fact(k - 1);
              endfunction
              assign f = fact(n);
            endmodule""")
        sim.poke("n", 5)
        assert sim.peek_int("f") == 120

    def test_for_loop_in_comb(self):
        sim = Simulator("""
            module popcount(input [7:0] x, output reg [3:0] n);
              integer i;
              always @(*) begin
                n = 0;
                for (i = 0; i < 8; i = i + 1)
                  n = n + x[i];
              end
            endmodule""")
        sim.poke("x", 0b10110101)
        assert sim.peek_int("n") == 5


class TestSequential:
    def test_counter_with_async_reset(self):
        sim = Simulator("""
            module counter(input clk, rst_n, en, output reg [7:0] q);
              always @(posedge clk or negedge rst_n)
                if (!rst_n) q <= 0;
                else if (en) q <= q + 1;
            endmodule""")
        sim.poke("clk", 0)
        sim.poke("rst_n", 0)
        assert sim.peek_int("q") == 0
        sim.poke("rst_n", 1)
        sim.poke("en", 1)
        sim.clock("clk", 5)
        assert sim.peek_int("q") == 5
        sim.poke("en", 0)
        sim.clock("clk", 3)
        assert sim.peek_int("q") == 5
        sim.poke("rst_n", 0)
        assert sim.peek_int("q") == 0

    def test_nonblocking_swap(self):
        sim = Simulator("""
            module swap(input clk, output reg [3:0] a, b);
              initial begin a = 1; b = 2; end
              always @(posedge clk) begin
                a <= b;
                b <= a;
              end
            endmodule""")
        sim.poke("clk", 0)
        assert (sim.peek_int("a"), sim.peek_int("b")) == (1, 2)
        sim.clock("clk")
        assert (sim.peek_int("a"), sim.peek_int("b")) == (2, 1)
        sim.clock("clk")
        assert (sim.peek_int("a"), sim.peek_int("b")) == (1, 2)

    def test_blocking_order_within_block(self):
        sim = Simulator("""
            module m(input clk, output reg [3:0] y);
              reg [3:0] t;
              always @(posedge clk) begin
                t = 4'd3;
                y = t + 1;
              end
            endmodule""")
        sim.poke("clk", 0)
        sim.clock("clk")
        assert sim.peek_int("y") == 4

    def test_shift_register(self):
        sim = Simulator("""
            module sr(input clk, input d, output reg [3:0] q);
              always @(posedge clk) q <= {q[2:0], d};
            endmodule""")
        sim.poke("clk", 0)
        for bit in (1, 0, 1, 1):
            sim.poke("d", bit)
            sim.clock("clk")
        assert sim.peek_int("q") == 0b1011

    def test_fsm_two_process(self):
        sim = Simulator("""
            module fsm(input clk, rst, input x, output reg z);
              localparam S0 = 2'd0, S1 = 2'd1, S2 = 2'd2;
              reg [1:0] state, next;
              always @(posedge clk or posedge rst)
                if (rst) state <= S0;
                else state <= next;
              always @(*) begin
                next = state;
                z = 1'b0;
                case (state)
                  S0: if (x) next = S1;
                  S1: if (x) next = S2; else next = S0;
                  S2: begin z = x; if (!x) next = S0; end
                  default: next = S0;
                endcase
              end
            endmodule""")
        sim.poke("clk", 0)
        sim.poke("rst", 1)
        sim.clock("clk")
        sim.poke("rst", 0)
        # Detect "11" then output follows x in S2.
        sim.poke("x", 1)
        sim.clock("clk")  # S0 -> S1
        sim.clock("clk")  # S1 -> S2
        assert sim.peek_int("z") == 1

    def test_memory_write_read(self):
        sim = Simulator("""
            module ram(input clk, we, input [3:0] addr,
                       input [7:0] din, output [7:0] dout);
              reg [7:0] mem [0:15];
              always @(posedge clk) if (we) mem[addr] <= din;
              assign dout = mem[addr];
            endmodule""")
        sim.poke("clk", 0)
        sim.poke("we", 1)
        for addr in range(4):
            sim.poke("addr", addr)
            sim.poke("din", addr * 11)
            sim.clock("clk")
        sim.poke("we", 0)
        for addr in range(4):
            sim.poke("addr", addr)
            assert sim.peek_int("dout") == addr * 11

    def test_uninitialised_reg_is_x(self):
        sim = Simulator("""
            module m(input clk, output reg [3:0] q);
              always @(posedge clk) q <= q + 1;
            endmodule""")
        assert sim.peek("q").has_unknown
        sim.poke("clk", 0)
        sim.clock("clk")
        assert sim.peek("q").has_unknown  # x + 1 is still x


class TestHierarchy:
    def test_ripple_carry_generate(self):
        sim = Simulator("""
            module fa(input a, b, cin, output s, cout);
              assign s = a ^ b ^ cin;
              assign cout = (a & b) | (cin & (a ^ b));
            endmodule
            module rca #(parameter N = 8)(
                input [N-1:0] a, b, input cin,
                output [N-1:0] sum, output cout);
              wire [N:0] c;
              assign c[0] = cin;
              genvar i;
              generate for (i = 0; i < N; i = i + 1) begin : g
                fa u(.a(a[i]), .b(b[i]), .cin(c[i]),
                     .s(sum[i]), .cout(c[i+1]));
              end endgenerate
              assign cout = c[N];
            endmodule""", top="rca", params={"N": 4})
        sim.poke("a", 9)
        sim.poke("b", 8)
        sim.poke("cin", 0)
        assert sim.peek_int("sum") == 1  # 17 mod 16
        assert sim.peek_int("cout") == 1

    def test_parameter_override_through_hierarchy(self):
        sim = Simulator("""
            module reg_n #(parameter W = 1)(input clk, input [W-1:0] d,
                                            output reg [W-1:0] q);
              always @(posedge clk) q <= d;
            endmodule
            module top(input clk, input [15:0] d, output [15:0] q);
              reg_n #(.W(16)) u(.clk(clk), .d(d), .q(q));
            endmodule""", top="top")
        sim.poke("clk", 0)
        sim.poke("d", 0xBEEF)
        sim.clock("clk")
        assert sim.peek_int("q") == 0xBEEF

    def test_peek_into_hierarchy(self):
        sim = Simulator("""
            module inner(input [3:0] x, output [3:0] y);
              wire [3:0] mid = x + 1;
              assign y = mid + 1;
            endmodule
            module outer(input [3:0] x, output [3:0] y);
              inner u(.x(x), .y(y));
            endmodule""", top="outer")
        sim.poke("x", 3)
        assert sim.peek_int("u.mid") == 4
        assert sim.peek_int("y") == 5

    def test_unknown_module_raises(self):
        with pytest.raises(ElaborationError):
            Simulator("module m; ghost u(); endmodule")

    def test_recursive_instantiation_rejected(self):
        with pytest.raises(ElaborationError):
            Simulator("module m; m u(); endmodule")


class TestTristateAndNets:
    def test_single_driver_z_release(self):
        sim = Simulator("""
            module t(input en, input [3:0] d, output [3:0] y);
              assign y = en ? d : 4'bz;
            endmodule""")
        sim.poke("en", 1)
        sim.poke("d", 5)
        assert sim.peek_int("y") == 5
        sim.poke("en", 0)
        assert sim.peek("y").to_bit_string() == "zzzz"

    def test_two_driver_conflict_is_x(self):
        sim = Simulator("""
            module t(input a, b, output y);
              assign y = a;
              assign y = b;
            endmodule""")
        sim.poke("a", 1)
        sim.poke("b", 0)
        assert sim.peek("y").has_unknown

    def test_two_driver_agreement(self):
        sim = Simulator("""
            module t(input a, output y);
              assign y = a;
              assign y = a;
            endmodule""")
        sim.poke("a", 1)
        assert sim.peek_int("y") == 1

    def test_partial_bit_drivers(self):
        sim = Simulator("""
            module t(input [1:0] a, b, output [3:0] y);
              assign y[1:0] = a;
              assign y[3:2] = b;
            endmodule""")
        sim.poke("a", 0b01)
        sim.poke("b", 0b10)
        assert sim.peek_int("y") == 0b1001

    def test_gate_primitives(self):
        sim = Simulator("""
            module g(input a, b, output o_and, o_nor, o_not);
              and g1(o_and, a, b);
              nor g2(o_nor, a, b);
              not g3(o_not, a);
            endmodule""")
        sim.poke("a", 1)
        sim.poke("b", 0)
        assert sim.peek_int("o_and") == 0
        assert sim.peek_int("o_nor") == 0
        assert sim.peek_int("o_not") == 0

    def test_procedural_assign_to_net_rejected(self):
        sim_src = """
            module bad(input a, output wire y);
              always @(*) y = a;
            endmodule"""
        with pytest.raises(SimulationError):
            sim = Simulator(sim_src)
            sim.poke("a", 1)


class TestThreads:
    def test_initial_delays_and_finish(self):
        sim = Simulator("""
            module tb;
              reg [3:0] x;
              initial begin
                x = 1;
                #5 x = 2;
                #5 x = 3;
                $finish;
              end
            endmodule""")
        sim.run()
        assert sim.finished
        assert sim.time == 10
        assert sim.peek_int("x") == 3

    def test_always_clock_generator(self):
        sim = Simulator("""
            module tb;
              reg clk;
              reg [7:0] n;
              initial begin clk = 0; n = 0; #20 $finish; end
              always #5 clk = ~clk;
              always @(posedge clk) n <= n + 1;
            endmodule""")
        sim.run()
        assert sim.peek_int("n") == 2  # edges at t=5, 15

    def test_display_output(self):
        sim = Simulator("""
            module tb;
              initial begin
                $display("value=%d", 8'd42);
                $display("hex=%h bin=%b", 8'hA5, 4'b1010);
              end
            endmodule""")
        sim.run()
        assert sim.output[0] == "value=42"
        assert sim.output[1] == "hex=a5 bin=1010"

    def test_event_control_in_initial(self):
        sim = Simulator("""
            module tb;
              reg clk;
              reg done;
              initial begin
                done = 0;
                @(posedge clk) done = 1;
              end
              initial begin
                clk = 0;
                #5 clk = 1;
              end
            endmodule""")
        sim.run()
        assert sim.peek_int("done") == 1

    def test_combinational_loop_detected(self):
        # A feedback loop through definite values oscillates forever.
        # (Loops through x, like `assign y = ~y`, settle at x instead.)
        sim_src = """
            module osc;
              reg a;
              wire b;
              assign b = ~a;
              always @(*) a = b;
              initial a = 1'b0;
            endmodule"""
        with pytest.raises(SimulationError):
            Simulator(sim_src)

    def test_x_feedback_settles_at_x(self):
        sim = Simulator("""
            module fb(input en, output y);
              assign y = en ^ y;
            endmodule""")
        sim.poke("en", 1)
        assert sim.peek("y").has_unknown


class TestXPropagation:
    def test_x_select_index_reads_x(self):
        sim = Simulator("""
            module m(input [1:0] sel, input [3:0] d, output y);
              assign y = d[sel];
            endmodule""")
        sim.poke("d", 0b1010)
        assert sim.peek("y").has_unknown  # sel is x
        sim.poke("sel", 1)
        assert sim.peek_int("y") == 1

    def test_if_with_x_condition_takes_else(self):
        sim = Simulator("""
            module m(input c, output reg [1:0] y);
              always @(*) if (c) y = 1; else y = 2;
            endmodule""")
        # c unknown -> else branch (strict truth).
        assert sim.peek_int("y") == 2
