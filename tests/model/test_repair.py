"""Tests for the compiler-feedback repair loop."""

import random

import pytest

from repro.corpus import mutate
from repro.corpus.templates import generate_design, generate_random_design
from repro.model.repair import RepairResult, _insert_semicolon, repair
from repro.verilog import check


def _clean(seed=0):
    return generate_design("up_counter", random.Random(seed)).source


class TestRepairRules:
    def test_already_clean_untouched(self):
        source = _clean()
        result = repair(source)
        assert result.fixed
        assert result.code == source
        assert result.iterations == 0

    def test_restores_missing_endmodule(self):
        broken = _clean().replace("endmodule", "")
        result = repair(broken)
        assert result.fixed, result.actions
        assert check(result.code).status != "syntax"

    def test_fixes_begin_typo(self):
        broken = _clean().replace("begin", "begn", 1)
        result = repair(broken)
        assert result.fixed, result.actions

    def test_strips_garbage(self):
        source = _clean()
        broken = source[:40] + " @@ %% ## " + source[40:]
        result = repair(broken)
        assert result.fixed, result.actions

    def test_inserts_missing_semicolon(self):
        source = "module m(input a, output y);\n  assign y = ~a\nendmodule\n"
        result = repair(source)
        assert result.fixed, result.actions
        assert check(result.code).status == "clean"

    def test_dependency_issue_is_acceptable(self):
        source = ("module m(input a, output y);\n"
                  "  sub u(.a(a), .y(y))\nendmodule\n")  # missing ';'
        result = repair(source)
        assert result.fixed
        assert result.final_status == "dependency"

    def test_gives_up_on_hopeless_input(self):
        result = repair(")))((( nonsense", max_iterations=3)
        assert not result.fixed


class TestInsertSemicolon:
    """The column-driven insertion path (regression: the old
    heuristic patched only the line *above* the diagnostic, so a
    missing semicolon reported on line 1 was unfixable)."""

    def test_line_one_error_fixed_via_column(self):
        code = "module m(input a, output y); assign y = a endmodule\n"
        report = check(code)
        diag = report.diagnostics[0]
        assert diag.line == 1 and diag.column > 1
        result = repair(code)
        assert result.fixed, result.actions
        assert check(result.code).status == "clean"

    def test_column_splices_within_line(self):
        code = "module m(input a, output y); assign y = a endmodule\n"
        diag = check(code).diagnostics[0]
        fixed = _insert_semicolon(code, diag.line, diag.column)
        assert fixed is not None
        assert "assign y = a; endmodule" in fixed

    def test_no_column_falls_back_to_previous_line(self):
        code = "module m(input a, output y);\n  assign y = a\nendmodule\n"
        fixed = _insert_semicolon(code, 3, 0)
        assert fixed is not None
        assert fixed.split("\n")[1].endswith(";")

    def test_out_of_range_line_is_refused(self):
        assert _insert_semicolon("module m;\nendmodule\n", 99) is None
        assert _insert_semicolon("module m;\nendmodule\n", 0) is None

    def test_never_doubles_a_semicolon(self):
        code = "module m(input a, output y);\n  assign y = a;\nendmodule\n"
        assert _insert_semicolon(code, 3, 0) is None


class TestRepairResultReport:
    def test_round_trip(self):
        result = RepairResult(
            code="module m; endmodule", fixed=True, iterations=2,
            actions=["insert_semicolon", "strip_garbage"],
            final_status="clean")
        again = RepairResult.from_dict(result.to_dict())
        assert again.to_json() == result.to_json()

    def test_golden_bytes(self):
        result = RepairResult(
            code="module m; endmodule", fixed=True, iterations=2,
            actions=["insert_semicolon"], final_status="clean")
        assert result.to_json() == (
            '{"actions": ["insert_semicolon"], '
            '"code": "module m; endmodule", '
            '"final_status": "clean", "fixed": true, "iterations": 2}')

    def test_schema_identifier(self):
        assert RepairResult.schema == "pyranet/repair-result/v1"


class TestRepairOverMutations:
    def test_repairs_most_syntax_mutations(self):
        fixed = 0
        total = 0
        for seed in range(20):
            design = generate_random_design(random.Random(seed))
            broken = mutate.break_syntax(design.source,
                                         random.Random(seed + 500))
            if check(broken.source).status != "syntax":
                continue  # mutation happened to stay legal
            total += 1
            if repair(broken.source).fixed:
                fixed += 1
        assert total >= 10
        # Truncation is often unrecoverable; everything else should fix.
        assert fixed / total >= 0.5, (fixed, total)
