"""Tests for the compiler-feedback repair loop."""

import random

import pytest

from repro.corpus import mutate
from repro.corpus.templates import generate_design, generate_random_design
from repro.model.repair import repair
from repro.verilog import check


def _clean(seed=0):
    return generate_design("up_counter", random.Random(seed)).source


class TestRepairRules:
    def test_already_clean_untouched(self):
        source = _clean()
        result = repair(source)
        assert result.fixed
        assert result.code == source
        assert result.iterations == 0

    def test_restores_missing_endmodule(self):
        broken = _clean().replace("endmodule", "")
        result = repair(broken)
        assert result.fixed, result.actions
        assert check(result.code).status != "syntax"

    def test_fixes_begin_typo(self):
        broken = _clean().replace("begin", "begn", 1)
        result = repair(broken)
        assert result.fixed, result.actions

    def test_strips_garbage(self):
        source = _clean()
        broken = source[:40] + " @@ %% ## " + source[40:]
        result = repair(broken)
        assert result.fixed, result.actions

    def test_inserts_missing_semicolon(self):
        source = "module m(input a, output y);\n  assign y = ~a\nendmodule\n"
        result = repair(source)
        assert result.fixed, result.actions
        assert check(result.code).status == "clean"

    def test_dependency_issue_is_acceptable(self):
        source = ("module m(input a, output y);\n"
                  "  sub u(.a(a), .y(y))\nendmodule\n")  # missing ';'
        result = repair(source)
        assert result.fixed
        assert result.final_status == "dependency"

    def test_gives_up_on_hopeless_input(self):
        result = repair(")))((( nonsense", max_iterations=3)
        assert not result.fixed


class TestRepairOverMutations:
    def test_repairs_most_syntax_mutations(self):
        fixed = 0
        total = 0
        for seed in range(20):
            design = generate_random_design(random.Random(seed))
            broken = mutate.break_syntax(design.source,
                                         random.Random(seed + 500))
            if check(broken.source).status != "syntax":
                continue  # mutation happened to stay legal
            total += 1
            if repair(broken.source).fixed:
                fixed += 1
        assert total >= 10
        # Truncation is often unrecoverable; everything else should fix.
        assert fixed / total >= 0.5, (fixed, total)
