"""Tests for the retrieval-augmented conditional code model."""

import random

import pytest

from repro.corpus.templates import generate_design
from repro.eval.functional import run_functional_test
from repro.model.generator import (
    CODELLAMA_7B,
    CODELLAMA_13B,
    ConditionalCodeModel,
    ModelProfile,
    extract_param_hints,
)
from repro.model.interfaces import TrainingExample


QUIET = ModelProfile(
    name="quiet", copy_noise=0.0, syntax_noise=0.0,
    retrieval_sharpness=1.5, pretrain_size=0, pretrain_bug_rate=0.0,
)


def _train_on(model, family, seed=0, weight=1.0, ranking=20):
    design = generate_design(family, random.Random(seed))
    model.train_batch([TrainingExample(
        description=design.description, code=design.source,
        ranking=ranking)], weight)
    return design


class TestParamHints:
    @pytest.mark.parametrize("text,expected", [
        ("a 8-bit adder", {"WIDTH": 8}),
        ("modulo-10 counter", {"MODULO": 10}),
        ("fifo with depth 4 and 16-bit data",
         {"DEPTH": 4, "WIDTH": 16}),
        ("4-to-1 multiplexer", {"INPUTS": 4}),
        ("1-to-8 demultiplexer", {"OUTPUTS": 8}),
        ("divide-by-4 clock divider", {"DIVIDE_BY": 4}),
        ("no numbers here", {}),
    ])
    def test_extraction(self, text, expected):
        assert extract_param_hints(text) == expected


class TestRetrievalTraining:
    def test_untrained_quiet_model_emits_fallback(self):
        model = ConditionalCodeModel(QUIET, seed=0)
        out = model.generate("anything", rng=random.Random(0),
                             module_header="module top_module (\n  input a\n);")
        assert "top_module" in out

    def test_trained_model_reproduces_design(self):
        model = ConditionalCodeModel(QUIET, seed=0)
        design = _train_on(model, "full_adder")
        out = model.generate(design.description, temperature=0.1,
                             rng=random.Random(0))
        outcome = run_functional_test(out, design.spec, n_vectors=16)
        assert outcome.passed, (outcome.failure_kind, outcome.detail)

    def test_retrieves_right_family_among_many(self):
        model = ConditionalCodeModel(QUIET, seed=0)
        for family in ("full_adder", "mux", "up_counter", "alu",
                       "parity"):
            _train_on(model, family)
        target = generate_design("parity", random.Random(50),
                                 module_name="top_module")
        out = model.generate(target.description, temperature=0.1,
                             rng=random.Random(1),
                             module_header=target.spec.port_header())
        assert "even_parity" in out

    def test_zero_weight_examples_never_retrieved(self):
        model = ConditionalCodeModel(QUIET, seed=0)
        poisoned = _train_on(model, "half_adder", weight=0.0)
        good = _train_on(model, "mux", weight=1.0)
        out = model.generate(poisoned.description, temperature=0.1,
                             rng=random.Random(2))
        # The only positive-weight memory is the mux.
        assert "sel" in out

    def test_loss_weight_biases_retrieval(self):
        """Two exemplars match a prompt equally; the heavier one is
        retrieved far more often."""
        model = ConditionalCodeModel(QUIET, seed=0, recency_decay=0.0)
        desc = "a widget frobnicator circuit"
        model.train_batch([TrainingExample(
            description=desc,
            code="module heavy_widget_frobnicator_circuit(); endmodule",
        )], 1.0)
        model.train_batch([TrainingExample(
            description=desc,
            code="module light_widget_frobnicator_circuit(); endmodule",
        )], 0.1)
        heavy_hits = 0
        for i in range(60):
            out = model.generate(desc, temperature=1.0,
                                 rng=random.Random(i))
            if "heavy" in out:
                heavy_hits += 1
        assert heavy_hits > 45

    def test_recency_biases_retrieval(self):
        model = ConditionalCodeModel(QUIET, seed=0, recency_decay=3.0)
        desc = "a widget frobnicator circuit"
        model.train_batch([TrainingExample(
            description=desc,
            code="module old_one_widget_frobnicator_circuit(); endmodule",
        )], 1.0)
        # Interleave unrelated items to age the first entry.
        for i in range(20):
            model.train_batch([TrainingExample(
                description=f"filler number_{i} gadget",
                code=f"module filler_number_{i}_gadget(); endmodule")],
                1.0)
        model.train_batch([TrainingExample(
            description=desc,
            code="module fresh_one_widget_frobnicator_circuit(); endmodule",
        )], 1.0)
        fresh_hits = 0
        for i in range(40):
            out = model.generate(desc, temperature=1.0,
                                 rng=random.Random(i))
            if "fresh_one" in out:
                fresh_hits += 1
        assert fresh_hits > 25

    def test_coherence_prior_penalises_broken_memory(self):
        model = ConditionalCodeModel(QUIET, seed=0, recency_decay=0.0)
        desc = "a widget frobnicator circuit"
        model.train_batch([TrainingExample(
            description=desc,
            code="module broken_widget_frobnicator(input a, output y);\n"
                 "  assign y = ghost_circuit_signal;\nendmodule")], 1.0)
        model.train_batch([TrainingExample(
            description=desc,
            code="module sound_widget_frobnicator(input a, output y);\n"
                 "  assign y = a;  // circuit\nendmodule")], 1.0)
        sound_hits = 0
        for i in range(40):
            out = model.generate(desc, temperature=1.0,
                                 rng=random.Random(i))
            if "sound" in out:
                sound_hits += 1
        assert sound_hits > 28


class TestAdaptation:
    def test_module_renamed_to_header(self):
        model = ConditionalCodeModel(QUIET, seed=0)
        design = _train_on(model, "comparator")
        target = generate_design("comparator", random.Random(9),
                                 params=design.spec.params,
                                 module_name="top_module")
        out = model.generate(design.description, temperature=0.1,
                             rng=random.Random(0),
                             module_header=target.spec.port_header())
        assert "module top_module" in out

    def test_width_adapted_from_description(self):
        model = ConditionalCodeModel(QUIET, seed=0)
        _train_on(model, "register", seed=1)  # some WIDTH
        target = generate_design("register", random.Random(2),
                                 params={"WIDTH": 12},
                                 module_name="top_module")
        out = model.generate(
            "Design a 12-bit register with clock-enable. On a rising "
            "clock edge, q loads d when en is high; rst clears q.",
            temperature=0.1, rng=random.Random(0),
            module_header=target.spec.port_header())
        outcome = run_functional_test(out, target.spec, n_vectors=16)
        assert outcome.passed, (outcome.failure_kind, outcome.detail)


class TestNoise:
    def test_noise_dilutes_with_finetuning(self):
        model = ConditionalCodeModel(CODELLAMA_7B, seed=0)
        before = model._effective_noise()
        for seed in range(30):
            _train_on(model, "mux", seed=seed)
        after = model._effective_noise()
        assert after < before
        # But never below the base-model floor.
        assert after >= CODELLAMA_7B.copy_noise * 0.30 - 1e-9

    def test_profiles_ordering(self):
        assert CODELLAMA_13B.copy_noise < CODELLAMA_7B.copy_noise
        assert CODELLAMA_13B.pretrain_size > CODELLAMA_7B.pretrain_size
