"""Tests for the numpy transformer (including a gradient check)."""

import random

import numpy as np
import pytest

from repro.model.interfaces import TrainingExample
from repro.model.tinyformer import TinyTransformer, TransformerConfig


def small_model(seed=0, lr=2e-3):
    return TinyTransformer(config=TransformerConfig(
        d_model=32, n_heads=2, n_layers=1, d_ff=48, max_len=96,
        learning_rate=lr, seed=seed))


EXAMPLE = TrainingExample(
    description="an and gate",
    code="module g(input a, input b, output y);\n"
         "assign y = a & b;\nendmodule",
)
OTHER = TrainingExample(
    description="a half adder",
    code="module h(input a, input b, output s);\n"
         "assign s = a ^ b;\nendmodule",
)


class TestTraining:
    def test_loss_decreases(self):
        model = small_model()
        before = model.sequence_loss(EXAMPLE)
        for _ in range(25):
            model.train_batch([EXAMPLE], 1.0)
        after = model.sequence_loss(EXAMPLE)
        assert after < before - 0.05

    def test_zero_weight_changes_nothing(self):
        model = small_model()
        before = model.sequence_loss(EXAMPLE)
        for _ in range(5):
            model.train_batch([EXAMPLE], 0.0)
        assert model.sequence_loss(EXAMPLE) == pytest.approx(before)

    def test_weighted_training_prefers_heavy_sample(self):
        heavy = small_model(seed=1)
        for _ in range(20):
            heavy.train_batch([EXAMPLE], 1.0)
            heavy.train_batch([OTHER], 0.05)
        light = small_model(seed=1)
        for _ in range(20):
            light.train_batch([EXAMPLE], 0.05)
            light.train_batch([OTHER], 1.0)
        # Each model should fit its heavy sample better than the other
        # model fits it.
        assert heavy.sequence_loss(EXAMPLE) < light.sequence_loss(EXAMPLE)
        assert light.sequence_loss(OTHER) < heavy.sequence_loss(OTHER)

    def test_vocabulary_grows_with_new_tokens(self):
        model = small_model()
        before = len(model.vocab)
        model.train_batch([TrainingExample(
            description="exotic", code="module zzz_unique(); endmodule")],
            1.0)
        assert len(model.vocab) > before

    def test_train_stats(self):
        model = small_model()
        stats = model.train_batch([EXAMPLE, OTHER], 0.5)
        assert stats.examples == 2
        assert stats.tokens > 10
        assert stats.effective_weight == pytest.approx(1.0)


class TestGradients:
    def test_numerical_gradient_check(self):
        """Finite-difference check of backprop on a few parameters."""
        model = small_model(seed=3)
        ids = model.encode_example(EXAMPLE)[:12]

        def loss_of() -> float:
            logits, _ = model._forward(ids[:-1])
            targets = np.array(ids[1:])
            T = len(targets)
            logits = logits - logits.max(-1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(-1, keepdims=True)
            picked = probs[np.arange(T), targets]
            return float(-np.log(picked + 1e-12).sum())

        # Analytic gradients.
        logits, cache = model._forward(ids[:-1])
        targets = np.array(ids[1:])
        T = len(targets)
        shifted = logits - logits.max(-1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(-1, keepdims=True)
        dlogits = probs.copy()
        dlogits[np.arange(T), targets] -= 1.0
        grads = {k: np.zeros_like(v) for k, v in model._params.items()}
        model._backward(dlogits, cache, grads)

        eps = 1e-5
        for key in ("l0.wq", "l0.w1", "lnfg"):
            param = model._params[key]
            flat_index = 3 % param.size
            original = param.flat[flat_index]
            param.flat[flat_index] = original + eps
            plus = loss_of()
            param.flat[flat_index] = original - eps
            minus = loss_of()
            param.flat[flat_index] = original
            numeric = (plus - minus) / (2 * eps)
            analytic = grads[key].flat[flat_index]
            assert numeric == pytest.approx(analytic, rel=2e-2,
                                            abs=1e-4), key


class TestGeneration:
    def test_generation_returns_text(self):
        model = small_model()
        for _ in range(5):
            model.train_batch([EXAMPLE], 1.0)
        out = model.generate("an and gate", temperature=0.5,
                             rng=random.Random(0), max_tokens=30)
        assert isinstance(out, str)

    def test_generation_deterministic_per_rng(self):
        model = small_model()
        model.train_batch([EXAMPLE], 1.0)
        a = model.generate("an and gate", rng=random.Random(5),
                           max_tokens=20)
        b = model.generate("an and gate", rng=random.Random(5),
                           max_tokens=20)
        assert a == b

    def test_memorisation_at_low_temperature(self):
        """Enough epochs on one tiny example approach memorisation."""
        model = small_model(lr=5e-3)
        target = TrainingExample(description="tiny wire",
                                 code="module w; endmodule")
        for _ in range(150):
            model.train_batch([target], 1.0)
        out = model.generate("tiny wire", temperature=0.05,
                             rng=random.Random(0), max_tokens=8)
        assert "module" in out
