"""Tests for the weighted n-gram language model."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.ngram import NGramLM

CLEAN = ("module add(input a, input b, output s);\n"
         "assign s = a ^ b;\nendmodule\n")
OTHER = ("module ff(input clk, input d, output reg q);\n"
         "always @(posedge clk) q <= d;\nendmodule\n")


class TestTraining:
    def test_training_reduces_perplexity(self):
        lm = NGramLM(order=3)
        before = lm.perplexity(CLEAN)
        lm.train(CLEAN)
        after = lm.perplexity(CLEAN)
        assert after < before

    def test_zero_weight_is_noop(self):
        lm = NGramLM()
        lm.train(CLEAN, weight=0.0)
        assert lm.trained_tokens == 0
        assert not lm.counts

    def test_weight_scales_counts(self):
        light = NGramLM()
        light.train(CLEAN, weight=0.1)
        heavy = NGramLM()
        heavy.train(CLEAN, weight=1.0)
        context = next(iter(heavy.counts))
        token = next(iter(heavy.counts[context]))
        assert heavy.counts[context][token] == pytest.approx(
            10 * light.counts[context][token])

    def test_weighting_shifts_distribution(self):
        """Upweighting one corpus lowers its perplexity relative to a
        uniform mix — the core loss-weighting effect."""
        uniform = NGramLM()
        uniform.train(CLEAN, 1.0)
        uniform.train(OTHER, 1.0)
        weighted = NGramLM()
        weighted.train(CLEAN, 1.0)
        weighted.train(OTHER, 0.1)
        assert weighted.perplexity(CLEAN) <= uniform.perplexity(CLEAN)

    def test_decay(self):
        lm = NGramLM()
        lm.train(CLEAN)
        context = next(iter(lm.counts))
        token = next(iter(lm.counts[context]))
        before = lm.counts[context][token]
        lm.decay(0.5)
        assert lm.counts[context][token] == pytest.approx(before / 2)

    def test_decay_validates(self):
        with pytest.raises(ValueError):
            NGramLM().decay(0.0)
        with pytest.raises(ValueError):
            NGramLM().decay(1.5)


class TestProbability:
    def test_probabilities_sum_near_one(self):
        lm = NGramLM(order=2)
        lm.train(CLEAN)
        history = ["assign"]
        total = sum(lm.prob(t, history) for t in lm.vocab)
        assert 0.5 < total <= 1.01

    def test_backoff_on_unseen_context(self):
        lm = NGramLM(order=3)
        lm.train(CLEAN)
        p = lm.prob("assign", ["zzz", "qqq"])
        assert p > 0

    def test_unseen_token_small_but_positive(self):
        lm = NGramLM()
        lm.train(CLEAN)
        assert 0 < lm.prob("neverseen", ["assign"]) < 0.3

    def test_perplexity_of_unrelated_text_higher(self):
        lm = NGramLM()
        lm.train(CLEAN)
        assert lm.perplexity(OTHER) > lm.perplexity(CLEAN)

    def test_corpus_perplexity(self):
        lm = NGramLM()
        lm.train(CLEAN)
        lm.train(OTHER)
        value = lm.corpus_perplexity([CLEAN, OTHER])
        assert math.isfinite(value) and value > 1


class TestSampling:
    def test_sample_deterministic_at_zero_temp(self):
        lm = NGramLM()
        lm.train(CLEAN)
        a = lm.sample(random.Random(0), temperature=0.0, max_tokens=30)
        b = lm.sample(random.Random(99), temperature=0.0, max_tokens=30)
        assert a == b

    def test_sample_starts_like_training_data(self):
        lm = NGramLM()
        lm.train(CLEAN, 5.0)
        tokens = lm.sample(random.Random(1), temperature=0.2,
                           max_tokens=10)
        assert tokens[0] == "module"

    def test_sample_respects_prefix(self):
        lm = NGramLM()
        lm.train(CLEAN)
        tokens = lm.sample(random.Random(0), prefix=["assign"],
                           max_tokens=5)
        assert tokens[0] == "assign"

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.1, max_value=2.0))
    def test_sampling_never_crashes(self, temperature):
        lm = NGramLM()
        lm.train(CLEAN)
        tokens = lm.sample(random.Random(3), temperature=temperature,
                           max_tokens=40)
        assert isinstance(tokens, list)
