"""Tests for code/text tokenization and the vocabulary."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.tokenizer import (
    Vocabulary,
    detokenize,
    tokenize_code,
    tokenize_text,
)
from repro.verilog import check, parse


CODE = """\
module counter #(parameter W = 4)(input clk, output reg [W-1:0] q);
  // increments forever
  always @(posedge clk)
    q <= q + 1'b1;
endmodule
"""


class TestCodeTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize_code("assign y = a ^ b;", keep_newlines=False)
        assert tokens == ["assign", "y", "=", "a", "^", "b", ";"]

    def test_comments_dropped(self):
        tokens = tokenize_code(CODE, keep_newlines=False)
        assert "increments" not in tokens

    def test_sized_literal_is_one_token(self):
        tokens = tokenize_code("q <= 8'hFF;", keep_newlines=False)
        assert "8'hFF" in tokens

    def test_multichar_operators(self):
        tokens = tokenize_code("a <= b >>> 2", keep_newlines=False)
        assert "<=" in tokens and ">>>" in tokens

    def test_newlines_collapsed(self):
        tokens = tokenize_code("a\n\n\nb")
        assert tokens.count("\n") == 1

    def test_broken_input_does_not_crash(self):
        tokens = tokenize_code("module @@@ \x00\x01 xyz")
        assert "module" in tokens and "xyz" in tokens


class TestDetokenize:
    def test_roundtrip_compiles(self):
        tokens = tokenize_code(CODE, keep_newlines=False)
        rebuilt = detokenize(tokens)
        assert check(rebuilt).status == "clean"

    def test_roundtrip_preserves_ast_shape(self):
        tokens = tokenize_code(CODE, keep_newlines=False)
        rebuilt = detokenize(tokens)
        original = parse(CODE).modules[0]
        recovered = parse(rebuilt).modules[0]
        assert original.name == recovered.name
        assert original.port_names() == recovered.port_names()

    @pytest.mark.parametrize("family", ["alu", "sync_fifo", "lfsr",
                                        "traffic_light", "mux"])
    def test_roundtrip_all_kinds(self, family):
        import random

        from repro.corpus.templates import generate_design

        design = generate_design(family, random.Random(1))
        rebuilt = detokenize(
            tokenize_code(design.source, keep_newlines=False))
        assert check(rebuilt).status == "clean", family


class TestTextTokenizer:
    def test_lowercases_and_strips_stopwords(self):
        tokens = tokenize_text("Design a 8-bit Counter with THE enable")
        assert "counter" in tokens
        assert "8" in tokens
        assert "the" not in tokens and "a" not in tokens

    def test_empty(self):
        assert tokenize_text("") == []


class TestVocabulary:
    def test_specials_reserved(self):
        vocab = Vocabulary()
        assert vocab.id_to_token[:4] == ["<pad>", "<bos>", "<eos>",
                                         "<unk>"]

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        a = vocab.add("wire")
        b = vocab.add("wire")
        assert a == b

    def test_encode_unknown_maps_to_unk(self):
        vocab = Vocabulary()
        assert vocab.encode(["mystery"]) == [Vocabulary.UNK]

    def test_encode_grow(self):
        vocab = Vocabulary()
        ids = vocab.encode(["x", "y", "x"], grow=True)
        assert ids[0] == ids[2] != ids[1]

    def test_decode_skips_specials(self):
        vocab = Vocabulary()
        ids = vocab.encode(["module", "m"], grow=True)
        decoded = vocab.decode([vocab.BOS] + ids + [vocab.EOS])
        assert decoded == ["module", "m"]

    def test_build_with_min_count(self):
        vocab = Vocabulary.build([["a", "a", "b"]], min_count=2)
        assert "a" in vocab.token_to_id
        assert "b" not in vocab.token_to_id

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(
        ["module", "wire", "assign", "q", "<=", "8'hFF"]), max_size=20))
    def test_encode_decode_roundtrip(self, tokens):
        vocab = Vocabulary()
        ids = vocab.encode(tokens, grow=True)
        assert vocab.decode(ids) == tokens
