"""Labelling/reporting details of curriculum phases and training logs."""

from repro.dataset.records import Complexity, DatasetEntry, PyraNetDataset
from repro.finetune.curriculum import Phase, curriculum_phases, random_phases


def _dataset():
    ds = PyraNetDataset()
    for i, (layer, tier) in enumerate([(1, Complexity.BASIC),
                                       (1, Complexity.EXPERT),
                                       (2, Complexity.BASIC)]):
        ds.add(DatasetEntry(entry_id=str(i), code="module m; endmodule",
                            ranking=20, complexity=tier, layer=layer))
    return ds


class TestPhaseLabels:
    def test_basic_tier_label_not_mixed(self):
        """Complexity.BASIC is IntEnum 0 — must not read as 'mixed'."""
        phases = curriculum_phases(_dataset())
        labels = [p.label for p in phases]
        assert "L1/Basic" in labels
        assert "L1/Expert" in labels
        assert not any("mixed" in label for label in labels)

    def test_random_phases_are_mixed(self):
        phases = random_phases(_dataset(), batch_size=10)
        assert all("mixed" in p.label for p in phases)

    def test_phase_is_immutable_tuple(self):
        phases = curriculum_phases(_dataset())
        assert isinstance(phases[0].entries, tuple)
