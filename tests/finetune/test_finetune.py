"""Tests for weight schedules, curriculum phases, and the trainer."""

import random
from typing import List

import pytest

from repro.dataset.records import (
    CompileStatus,
    Complexity,
    DatasetEntry,
    PyraNetDataset,
)
from repro.finetune.curriculum import (
    anti_curriculum_phases,
    curriculum_phases,
    layered_random_phases,
    random_phases,
)
from repro.finetune.trainer import (
    Trainer,
    finetune_pyranet_architecture,
    finetune_pyranet_dataset,
)
from repro.finetune.weighting import (
    PAPER_WEIGHTS,
    inverse_schedule,
    no_layer6_schedule,
    paper_schedule,
    top_layers_only,
    uniform_schedule,
)
from repro.model.interfaces import FineTunable, TrainStats


def make_dataset() -> PyraNetDataset:
    """A small dataset spanning all layers and complexities."""
    dataset = PyraNetDataset()
    rankings = {1: 20, 2: 17, 3: 12, 4: 7, 5: 2, 6: 0}
    index = 0
    for layer, ranking in rankings.items():
        for complexity in Complexity:
            for copy in range(2):
                index += 1
                dataset.add(DatasetEntry(
                    entry_id=f"e{index}",
                    code=f"module m{index}; endmodule",
                    description=f"design {index}",
                    ranking=ranking,
                    complexity=complexity,
                    compile_status=(CompileStatus.DEPENDENCY if layer == 6
                                    else CompileStatus.CLEAN),
                    layer=layer,
                ))
    return dataset


class RecordingModel(FineTunable):
    """Captures the (example, weight) stream the trainer produces."""

    def __init__(self):
        self.stream: List = []
        self.phase_breaks = 0

    def train_batch(self, examples, loss_weight):
        for example in examples:
            self.stream.append((example, loss_weight))
        return TrainStats(examples=len(examples),
                          effective_weight=loss_weight * len(examples))

    def finish_phase(self):
        self.phase_breaks += 1

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None):
        return "module stub(); endmodule"


class TestSchedules:
    def test_paper_weights_exact(self):
        schedule = paper_schedule()
        assert [schedule.weight_for(n) for n in range(1, 7)] == [
            1.0, 0.8, 0.6, 0.4, 0.2, 0.1]
        assert PAPER_WEIGHTS[1] == 1.0 and PAPER_WEIGHTS[6] == 0.1

    def test_uniform(self):
        schedule = uniform_schedule()
        assert all(schedule.weight_for(n) == 1.0 for n in range(1, 7))

    def test_inverse_is_mirror(self):
        schedule = inverse_schedule()
        assert schedule.weight_for(1) == PAPER_WEIGHTS[6]
        assert schedule.weight_for(6) == PAPER_WEIGHTS[1]

    def test_top_layers_only(self):
        schedule = top_layers_only(2)
        assert schedule.weight_for(2) == 1.0
        assert schedule.weight_for(3) == 0.0

    def test_no_layer6(self):
        schedule = no_layer6_schedule()
        assert schedule.weight_for(6) == 0.0
        assert schedule.weight_for(1) == 1.0

    def test_unknown_layer_weight_zero(self):
        assert paper_schedule().weight_for(9) == 0.0


class TestCurriculum:
    def test_phase_order_layers_then_complexity(self):
        phases = curriculum_phases(make_dataset())
        keys = [(p.layer, int(p.complexity)) for p in phases]
        assert keys == sorted(keys)
        assert keys[0] == (1, 0)
        assert keys[-1] == (6, 3)

    def test_all_entries_covered_once(self):
        dataset = make_dataset()
        phases = curriculum_phases(dataset)
        seen = [e.entry_id for p in phases for e in p.entries]
        assert sorted(seen) == sorted(e.entry_id for e in dataset)

    def test_anti_curriculum_reverses_within_layer(self):
        phases = anti_curriculum_phases(make_dataset())
        layer1 = [int(p.complexity) for p in phases if p.layer == 1]
        assert layer1 == sorted(layer1, reverse=True)
        layers = [p.layer for p in phases]
        assert layers == sorted(layers)  # layer walk unchanged

    def test_random_phases_cover_everything(self):
        dataset = make_dataset()
        phases = random_phases(dataset, seed=3, batch_size=7)
        seen = [e.entry_id for p in phases for e in p.entries]
        assert sorted(seen) == sorted(e.entry_id for e in dataset)
        assert all(p.layer == 0 for p in phases)

    def test_random_phases_shuffled(self):
        dataset = make_dataset()
        stream = [e.entry_id for p in random_phases(dataset, seed=1)
                  for e in p.entries]
        assert stream != [e.entry_id for e in dataset]

    def test_layered_random_keeps_layer_walk(self):
        phases = layered_random_phases(make_dataset(), seed=2)
        assert [p.layer for p in phases] == [1, 2, 3, 4, 5, 6]


class TestTrainer:
    def test_architecture_recipe_weights(self):
        model = RecordingModel()
        finetune_pyranet_architecture(model, make_dataset(), seed=0)
        weights = {}
        for example, weight in model.stream:
            weights.setdefault(example.layer, set()).add(weight)
        assert weights[1] == {1.0}
        assert weights[6] == {0.1}
        assert weights[3] == {0.6}

    def test_architecture_recipe_order(self):
        model = RecordingModel()
        finetune_pyranet_architecture(model, make_dataset(), seed=0)
        layer_stream = [example.layer for example, _ in model.stream]
        assert layer_stream == sorted(layer_stream)
        # Complexity ascends within each layer.
        for layer in range(1, 7):
            tiers = [example.complexity for example, _ in model.stream
                     if example.layer == layer]
            assert tiers == sorted(tiers)

    def test_dataset_recipe_uniform_weights(self):
        model = RecordingModel()
        finetune_pyranet_dataset(model, make_dataset(), seed=0)
        assert {weight for _, weight in model.stream} == {1.0}

    def test_epochs_multiply_stream(self):
        dataset = make_dataset()
        single = RecordingModel()
        finetune_pyranet_architecture(single, dataset, epochs=1, seed=0)
        triple = RecordingModel()
        finetune_pyranet_architecture(triple, dataset, epochs=3, seed=0)
        assert len(triple.stream) == 3 * len(single.stream)

    def test_training_log_totals(self):
        model = RecordingModel()
        log = finetune_pyranet_architecture(model, make_dataset(), seed=0)
        assert log.total.examples == len(make_dataset())
        assert len(log.phases) == len(log.phase_labels())
        assert model.phase_breaks == len(log.phases)

    def test_trainer_custom_schedule(self):
        model = RecordingModel()
        trainer = Trainer(schedule=no_layer6_schedule())
        phases = curriculum_phases(make_dataset())
        trainer.run(model, phases)
        layer6_weights = {w for ex, w in model.stream if ex.layer == 6}
        assert layer6_weights == {0.0}
