"""EvalConfig: validation, serialisation, and the legacy-kwarg shim."""

import json

import pytest

from repro.eval.config import DEFAULT_KS, EvalConfig
from repro.eval.harness import evaluate_model, resolve_config
from repro.eval.problems.machine import build_machine_problems
from tests.eval.test_harness import OracleModel


class TestConfigObject:
    def test_defaults(self):
        config = EvalConfig()
        assert config.n_samples == 10
        assert config.repair_budget == 0
        assert config.ks == DEFAULT_KS

    def test_frozen(self):
        with pytest.raises(AttributeError):
            EvalConfig().n_samples = 3

    def test_validation(self):
        with pytest.raises(ValueError, match="n_samples"):
            EvalConfig(n_samples=0)
        with pytest.raises(ValueError, match="n_test_vectors"):
            EvalConfig(n_test_vectors=0)
        with pytest.raises(ValueError, match="repair_budget"):
            EvalConfig(repair_budget=-1)

    def test_ks_list_coerced_to_tuple(self):
        assert EvalConfig(ks=[1, 2]).ks == (1, 2)

    def test_with_overrides(self):
        base = EvalConfig(seed=3)
        changed = base.with_overrides(repair_budget=2, n_samples=4)
        assert changed.repair_budget == 2
        assert changed.n_samples == 4
        assert changed.seed == 3
        assert base.repair_budget == 0  # original untouched

    def test_round_trip(self):
        config = EvalConfig(n_samples=4, temperature=0.5, seed=9,
                            repair_budget=3, model_name="m")
        again = EvalConfig.from_json(config.to_json())
        assert again == config

    def test_from_dict_ignores_unknown_and_schema(self):
        config = EvalConfig.from_dict({
            "schema": EvalConfig.schema, "n_samples": 2,
            "not_a_field": True})
        assert config.n_samples == 2

    def test_golden_bytes(self):
        assert EvalConfig(n_samples=2, seed=1).to_json() == (
            '{"ks": [1, 5, 10], "model_name": null, "n_samples": 2, '
            '"n_test_vectors": 32, "repair_budget": 0, "seed": 1, '
            '"temperature": 0.8}')


class TestResolveConfig:
    def test_plain_config_passthrough(self):
        config = EvalConfig(n_samples=3)
        assert resolve_config(config, {}) is config

    def test_no_args_yields_defaults(self):
        assert resolve_config(None, {}) == EvalConfig()

    def test_legacy_kwargs_warn_and_map(self):
        with pytest.warns(DeprecationWarning, match="EvalConfig"):
            config = resolve_config(None, {"n_samples": 3, "seed": 7})
        assert config == EvalConfig(n_samples=3, seed=7)

    def test_config_plus_legacy_rejected(self):
        with pytest.raises(TypeError):
            resolve_config(EvalConfig(), {"n_samples": 3})

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="bogus"):
            resolve_config(None, {"bogus": 1})


class TestLegacyParity:
    def test_legacy_call_matches_config_call(self):
        problems = build_machine_problems()[:2]
        model = OracleModel(problems)
        config_report = evaluate_model(
            model, problems,
            EvalConfig(n_samples=2, seed=4, n_test_vectors=6))
        with pytest.warns(DeprecationWarning):
            legacy_report = evaluate_model(
                model, problems, n_samples=2, seed=4, n_test_vectors=6)
        config_results = json.dumps(
            [result.to_dict() for result in config_report.results],
            sort_keys=True)
        legacy_results = json.dumps(
            [result.to_dict() for result in legacy_report.results],
            sort_keys=True)
        assert config_results == legacy_results
