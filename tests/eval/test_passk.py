"""Tests for the unbiased pass@k estimator."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.eval.passk import mean_pass_at_k, pass_at_k


class TestPassAtK:
    def test_all_pass(self):
        assert pass_at_k(10, 10, 1) == pytest.approx(1.0)

    def test_none_pass(self):
        assert pass_at_k(10, 0, 5) == 0.0

    def test_known_value(self):
        # n=10, c=5, k=1 -> 0.5 exactly.
        assert pass_at_k(10, 5, 1) == pytest.approx(0.5)

    def test_known_combinatorial_value(self):
        # n=4, c=2, k=2: 1 - C(2,2)/C(4,2) = 1 - 1/6.
        assert pass_at_k(4, 2, 2) == pytest.approx(1 - 1 / 6)

    def test_k_exceeding_failures_is_one(self):
        assert pass_at_k(10, 8, 5) == pytest.approx(1.0)

    @pytest.mark.parametrize("n,c,k", [
        (0, 0, 1), (5, 6, 1), (5, -1, 1), (5, 2, 0), (5, 2, 6),
    ])
    def test_invalid_inputs_raise(self, n, c, k):
        with pytest.raises(ValueError):
            pass_at_k(n, c, k)

    @given(st.integers(1, 40), st.data())
    def test_monotone_in_k(self, n, data):
        c = data.draw(st.integers(0, n))
        ks = [k for k in (1, 2, 5, 10) if k <= n]
        values = [pass_at_k(n, c, k) for k in ks]
        assert values == sorted(values)

    @given(st.integers(1, 40), st.data())
    def test_monotone_in_c(self, n, data):
        k = data.draw(st.integers(1, n))
        values = [pass_at_k(n, c, k) for c in range(n + 1)]
        assert values == sorted(values)
        assert 0.0 <= values[0] and values[-1] <= 1.0 + 1e-12

    @given(st.integers(1, 30), st.data())
    def test_matches_exact_combinatorics(self, n, data):
        c = data.draw(st.integers(0, n))
        k = data.draw(st.integers(1, n))
        expected = 1.0 - (math.comb(n - c, k) / math.comb(n, k)
                          if n - c >= k else 0.0)
        assert pass_at_k(n, c, k) == pytest.approx(expected)


class TestMean:
    def test_empty(self):
        assert mean_pass_at_k([], 1) == 0.0

    def test_average(self):
        outcomes = [(10, 10), (10, 0)]
        assert mean_pass_at_k(outcomes, 1) == pytest.approx(0.5)
