"""Tests for the table/pyramid renderers and the model registry."""

import pytest

from repro.core.pyranet import TableOneRow
from repro.eval.report import render_gains_table, render_pyramid, render_table
from repro.model.registry import build_registry, render_table2


def _row(label):
    return TableOneRow(
        label,
        {"pass@1": 41.9, "pass@5": 46.1, "pass@10": 46.8},
        {"pass@1": 19.2, "pass@5": 23.0, "pass@10": 25.0},
    )


class TestRenderTable:
    def test_contains_all_cells(self):
        text = render_table("Table I", [_row("codellama baseline")])
        assert "codellama baseline" in text
        for value in ("41.9", "46.1", "46.8", "19.2", "23.0", "25.0"):
            assert value in text

    def test_header_sections(self):
        text = render_table("T", [_row("x")])
        assert "Verilog-Machine" in text
        assert "Verilog-Human" in text
        assert "pass@10" in text

    def test_rows_aligned(self):
        text = render_table("T", [_row("a"), _row("bb")])
        lines = [l for l in text.splitlines() if "|" in l]
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # every row the same width


class TestRenderGains:
    def test_signed_deltas(self):
        text = render_gains_table(
            "Table III",
            [("model", "vs Baseline", [16.1, 16.8, 21.0,
                                       25.0, 27.0, 30.7]),
             ("model", "vs SOTA", [-0.7, -0.6, 1.0, -0.6, 0.7, -0.8])],
        )
        assert "+16.1" in text
        assert "-0.7" in text


class TestRenderPyramid:
    def test_shares_sum_to_100(self):
        text = render_pyramid("Fig 1", {1: 10, 2: 40, 6: 50})
        assert "Layer 1:" in text and "Layer 6:" in text
        assert "( 50.0%)" in text

    def test_empty_layers_shown(self):
        text = render_pyramid("Fig 1", {2: 5})
        assert "Layer 5:        0" in text


class TestRegistry:
    def test_three_models(self):
        assert len(build_registry()) == 3

    def test_render_contains_models_and_substrate(self):
        text = render_table2()
        assert "CodeLlama-7b-Instruct" in text
        assert "DeepSeek-Coder-7B-Instruct-v1.5" in text
        assert "substrate transformer" in text
