"""Tests for the functional test harness."""

import random

import pytest

from repro.corpus import mutate
from repro.corpus.templates import generate_design
from repro.eval.functional import run_functional_test


@pytest.fixture(scope="module")
def adder():
    return generate_design("ripple_carry_adder", random.Random(0),
                           params={"WIDTH": 8})


@pytest.fixture(scope="module")
def counter():
    return generate_design("up_counter", random.Random(0),
                           params={"WIDTH": 4})


class TestOutcomes:
    def test_reference_passes(self, adder):
        outcome = run_functional_test(adder.source, adder.spec,
                                      n_vectors=24)
        assert outcome.passed
        assert outcome.vectors_run == 24

    def test_sequential_reference_passes(self, counter):
        outcome = run_functional_test(counter.source, counter.spec,
                                      n_vectors=24)
        assert outcome.passed

    def test_parse_failure_reported(self, adder):
        outcome = run_functional_test("module broken((", adder.spec)
        assert not outcome.passed
        assert outcome.failure_kind == "parse"

    def test_interface_mismatch_reported(self, adder):
        wrong = ("module top(input x, output z);\n"
                 "  assign z = x;\nendmodule")
        outcome = run_functional_test(wrong, adder.spec)
        assert outcome.failure_kind == "interface"

    def test_width_mismatch_reported(self, adder):
        narrow = ("module top(input [3:0] a, input [3:0] b, input cin,\n"
                  "           output [3:0] sum, output cout);\n"
                  "  assign {cout, sum} = a + b + cin;\nendmodule")
        outcome = run_functional_test(narrow, adder.spec)
        assert outcome.failure_kind == "interface"
        assert "4 bits" in outcome.detail

    def test_functional_bug_caught(self, adder):
        corrupted = mutate.corrupt_function(
            adder.source, random.Random(1)).source
        outcome = run_functional_test(corrupted, adder.spec,
                                      n_vectors=32)
        assert not outcome.passed
        assert outcome.failure_kind == "mismatch"
        assert outcome.mismatches

    def test_dependency_code_fails_elaboration(self, adder):
        broken = mutate.break_dependency(
            adder.source, random.Random(2)).source
        outcome = run_functional_test(broken, adder.spec)
        assert not outcome.passed
        assert outcome.failure_kind in ("elaborate", "runtime",
                                        "interface")

    def test_deterministic(self, adder):
        a = run_functional_test(adder.source, adder.spec, seed=7)
        b = run_functional_test(adder.source, adder.spec, seed=7)
        assert a.passed == b.passed
        assert a.vectors_run == b.vectors_run

    def test_finds_named_module_among_many(self, adder):
        multi = ("module helper(input p, output q);\n"
                 "  assign q = p;\nendmodule\n" + adder.source)
        outcome = run_functional_test(multi, adder.spec, n_vectors=8)
        assert outcome.passed

    def test_mealy_output_checked_with_inputs_held(self):
        design = generate_design("pwm", random.Random(0),
                                 params={"WIDTH": 4})
        outcome = run_functional_test(design.source, design.spec,
                                      n_vectors=24)
        assert outcome.passed


class TestRobustness:
    def test_infinite_loop_candidate_reported(self, adder):
        looping = """
            module top_module(input [7:0] a, input [7:0] b, input cin,
                              output [7:0] sum, output cout);
              reg a_reg;
              wire w;
              assign w = ~a_reg;
              always @(*) a_reg = w;
              initial a_reg = 0;
              assign {cout, sum} = a + b + cin;
            endmodule"""
        outcome = run_functional_test(looping, adder.spec)
        assert not outcome.passed
        assert outcome.failure_kind in ("elaborate", "runtime")

    def test_x_output_is_a_failure(self, adder):
        lazy = ("module top(input [7:0] a, input [7:0] b, input cin,\n"
                "           output [7:0] sum, output cout);\n"
                "  // never drives sum\n"
                "  assign cout = 1'b0;\nendmodule")
        outcome = run_functional_test(lazy, adder.spec, n_vectors=4)
        assert not outcome.passed


class TestOutcomeReport:
    """TestOutcome/Mismatch as Reportable documents."""

    def _outcome(self):
        from repro.eval.functional import Mismatch, TestOutcome

        return TestOutcome(
            passed=False, failure_kind="mismatch",
            detail="1/4 vectors wrong", vectors_run=4,
            mismatches=[Mismatch(vector_index=2, output="y",
                                 expected=1, actual=0,
                                 inputs={"a": 1})])

    def test_round_trip(self):
        from repro.eval.functional import TestOutcome

        outcome = self._outcome()
        again = TestOutcome.from_dict(outcome.to_dict())
        assert again.to_json() == outcome.to_json()
        assert again.mismatches[0].vector_index == 2

    def test_golden_bytes(self):
        assert self._outcome().to_json() == (
            '{"detail": "1/4 vectors wrong", '
            '"failure_kind": "mismatch", '
            '"mismatches": [{"actual": 0, "expected": 1, '
            '"inputs": {"a": 1}, "output": "y", "vector_index": 2}], '
            '"passed": false, "vectors_run": 4}')

    def test_schema_identifier(self):
        from repro.eval.functional import TestOutcome

        assert TestOutcome.schema == "pyranet/test-outcome/v1"

    def test_live_outcome_serialises(self, adder):
        from repro.eval.functional import TestOutcome, run_functional_test

        outcome = run_functional_test(
            "not verilog", adder.spec, n_vectors=4)
        again = TestOutcome.from_dict(outcome.to_dict())
        assert again.to_json() == outcome.to_json()
        assert not again.passed
