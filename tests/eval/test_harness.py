"""Tests for problem suites and the evaluation loop."""

import random

import pytest

from repro.eval.harness import EvalReport, ProblemResult, evaluate_model
from repro.eval.problems.human import build_human_problems
from repro.eval.problems.machine import build_machine_problems
from repro.model.interfaces import FineTunable, TrainStats


class OracleModel(FineTunable):
    """Always emits the reference implementation (pass@k = 100)."""

    def __init__(self, problems):
        self._by_description = {}
        for problem in problems:
            from repro.corpus.templates import generate_design

            family = problem.spec.family
            design = generate_design(
                family, random.Random(0), params=problem.spec.params,
                module_name=problem.spec.module_name)
            self._by_description[problem.description] = design.source

    def train_batch(self, examples, loss_weight):
        return TrainStats()

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None):
        return self._by_description.get(
            description, "module top_module(); endmodule")


class JunkModel(FineTunable):
    """Always emits garbage (pass@k = 0)."""

    def train_batch(self, examples, loss_weight):
        return TrainStats()

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None):
        return "this is not verilog at all"


class TestProblemSuites:
    def test_machine_suite_size(self):
        assert len(build_machine_problems()) >= 40

    def test_human_suite_size(self):
        assert len(build_human_problems()) >= 25

    def test_all_problems_have_golden(self):
        for problem in build_machine_problems() + build_human_problems():
            assert problem.spec.golden is not None
            assert problem.module_header.startswith("module top_module")

    def test_reference_solutions_pass_own_testbench(self):
        """Subset check: the spec's own rendered design must pass."""
        from repro.corpus.templates import generate_design
        from repro.eval.functional import run_functional_test

        for problem in build_machine_problems()[::7]:
            design = generate_design(
                problem.spec.family, random.Random(0),
                params=problem.spec.params,
                module_name=problem.spec.module_name)
            outcome = run_functional_test(design.source, problem.spec,
                                          n_vectors=12)
            assert outcome.passed, problem.problem_id

    def test_human_descriptions_are_paraphrased(self):
        """Human descriptions must not echo the machine describer."""
        from repro.corpus.templates import get_family

        for problem in build_human_problems():
            family = get_family(problem.spec.family)
            # The expanded keyword is the canonical term; at most a few
            # human prompts may use it verbatim.
            assert problem.suite == "human"

    def test_problem_ids_unique(self):
        problems = build_machine_problems() + build_human_problems()
        ids = [p.problem_id for p in problems]
        assert len(set(ids)) == len(ids)


class TestEvaluateModel:
    def test_oracle_scores_100(self):
        problems = build_machine_problems()[:5]
        report = evaluate_model(OracleModel(problems), problems,
                                n_samples=3, n_test_vectors=8)
        assert report.pass_at(1) == pytest.approx(100.0)

    def test_junk_scores_0(self):
        problems = build_machine_problems()[:5]
        report = evaluate_model(JunkModel(), problems, n_samples=3,
                                n_test_vectors=8)
        assert report.pass_at(1) == 0.0
        assert report.failure_histogram().get("parse", 0) > 0

    def test_report_summary_shape(self):
        problems = build_machine_problems()[:3]
        report = evaluate_model(JunkModel(), problems, n_samples=10,
                                n_test_vectors=4)
        summary = report.summary()
        assert set(summary) == {"pass@1", "pass@5", "pass@10"}

    def test_deterministic_across_runs(self):
        from repro.model.generator import CODELLAMA_7B, ConditionalCodeModel

        problems = build_machine_problems()[:4]
        model = ConditionalCodeModel(CODELLAMA_7B, seed=5)
        a = evaluate_model(model, problems, n_samples=4, seed=9,
                           n_test_vectors=8)
        model2 = ConditionalCodeModel(CODELLAMA_7B, seed=5)
        b = evaluate_model(model2, problems, n_samples=4, seed=9,
                           n_test_vectors=8)
        assert a.summary() == b.summary()

    def test_problem_result_pass_at(self):
        result = ProblemResult(problem_id="p", n_samples=10, n_passed=5)
        assert result.pass_at(1) == pytest.approx(0.5)
