"""Tests for problem suites and the evaluation loop."""

import random

import pytest

from repro.eval.config import EvalConfig
from repro.eval.harness import (
    EvalReport,
    ProblemResult,
    evaluate_model,
    sample_seed,
)
from repro.eval.problems.human import build_human_problems
from repro.eval.problems.machine import build_machine_problems
from repro.model.interfaces import FineTunable, TrainStats
from repro.pipeline import ParallelExecutor, ResultCache


class OracleModel(FineTunable):
    """Always emits the reference implementation (pass@k = 100)."""

    def __init__(self, problems):
        self._by_description = {}
        for problem in problems:
            from repro.corpus.templates import generate_design

            family = problem.spec.family
            design = generate_design(
                family, random.Random(0), params=problem.spec.params,
                module_name=problem.spec.module_name)
            self._by_description[problem.description] = design.source

    def train_batch(self, examples, loss_weight):
        return TrainStats()

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None):
        return self._by_description.get(
            description, "module top_module(); endmodule")


class JunkModel(FineTunable):
    """Always emits garbage (pass@k = 0)."""

    def train_batch(self, examples, loss_weight):
        return TrainStats()

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None):
        return "this is not verilog at all"


class TestProblemSuites:
    def test_machine_suite_size(self):
        assert len(build_machine_problems()) >= 40

    def test_human_suite_size(self):
        assert len(build_human_problems()) >= 25

    def test_all_problems_have_golden(self):
        for problem in build_machine_problems() + build_human_problems():
            assert problem.spec.golden is not None
            assert problem.module_header.startswith("module top_module")

    def test_reference_solutions_pass_own_testbench(self):
        """Subset check: the spec's own rendered design must pass."""
        from repro.corpus.templates import generate_design
        from repro.eval.functional import run_functional_test

        for problem in build_machine_problems()[::7]:
            design = generate_design(
                problem.spec.family, random.Random(0),
                params=problem.spec.params,
                module_name=problem.spec.module_name)
            outcome = run_functional_test(design.source, problem.spec,
                                          n_vectors=12)
            assert outcome.passed, problem.problem_id

    def test_human_descriptions_are_paraphrased(self):
        """Human descriptions must not echo the machine describer."""
        from repro.corpus.templates import get_family

        for problem in build_human_problems():
            family = get_family(problem.spec.family)
            # The expanded keyword is the canonical term; at most a few
            # human prompts may use it verbatim.
            assert problem.suite == "human"

    def test_problem_ids_unique(self):
        problems = build_machine_problems() + build_human_problems()
        ids = [p.problem_id for p in problems]
        assert len(set(ids)) == len(ids)


class TestEvaluateModel:
    def test_oracle_scores_100(self):
        problems = build_machine_problems()[:5]
        report = evaluate_model(
            OracleModel(problems), problems,
            EvalConfig(n_samples=3, n_test_vectors=8))
        assert report.pass_at(1) == pytest.approx(100.0)

    def test_junk_scores_0(self):
        problems = build_machine_problems()[:5]
        report = evaluate_model(
            JunkModel(), problems,
            EvalConfig(n_samples=3, n_test_vectors=8))
        assert report.pass_at(1) == 0.0
        assert report.failure_histogram().get("parse", 0) > 0

    def test_report_summary_shape(self):
        problems = build_machine_problems()[:3]
        report = evaluate_model(
            JunkModel(), problems,
            EvalConfig(n_samples=10, n_test_vectors=4))
        summary = report.summary()
        assert set(summary) == {"pass@1", "pass@5", "pass@10"}

    def test_deterministic_across_runs(self):
        from repro.model.generator import CODELLAMA_7B, ConditionalCodeModel

        problems = build_machine_problems()[:4]
        model = ConditionalCodeModel(CODELLAMA_7B, seed=5)
        a = evaluate_model(
            model, problems,
            EvalConfig(n_samples=4, seed=9, n_test_vectors=8))
        model2 = ConditionalCodeModel(CODELLAMA_7B, seed=5)
        b = evaluate_model(
            model2, problems,
            EvalConfig(n_samples=4, seed=9, n_test_vectors=8))
        assert a.summary() == b.summary()

    def test_problem_result_pass_at(self):
        result = ProblemResult(problem_id="p", n_samples=10, n_passed=5)
        assert result.pass_at(1) == pytest.approx(0.5)

    def test_parallel_and_serial_reports_agree(self):
        from repro.model.generator import CODELLAMA_7B, ConditionalCodeModel

        problems = build_machine_problems()[:6]
        config = EvalConfig(n_samples=4, seed=9, n_test_vectors=8)
        serial = evaluate_model(
            ConditionalCodeModel(CODELLAMA_7B, seed=5), problems,
            config, executor=ParallelExecutor.serial())
        threaded = evaluate_model(
            ConditionalCodeModel(CODELLAMA_7B, seed=5), problems,
            config, executor=ParallelExecutor(mode="thread", max_workers=4))
        assert [r.to_dict() for r in serial.results] == [
            r.to_dict() for r in threaded.results]

    def test_trace_reports_fanout_and_cache(self):
        problems = build_machine_problems()[:4]
        report = evaluate_model(
            JunkModel(), problems,
            EvalConfig(n_samples=5, n_test_vectors=4))
        trace = report.trace
        assert trace is not None
        stage = trace.stage("sample+simulate")
        assert stage.n_in == 4 and stage.n_out == 4
        assert stage.wall_time_s >= 0.0
        # JunkModel emits one distinct completion per problem: 4 misses,
        # the other 16 samples hit the outcome cache.
        assert stage.cache_misses == 4
        assert stage.cache_hits == 16

    def test_shared_cache_reused_across_models(self):
        problems = build_machine_problems()[:3]
        cache = ResultCache()
        config = EvalConfig(n_samples=3, n_test_vectors=4)
        first = evaluate_model(JunkModel(), problems, config, cache=cache)
        second = evaluate_model(JunkModel(), problems, config, cache=cache)
        assert second.trace.stage("sample+simulate").cache_misses == 0
        assert first.summary() == second.summary()

    def test_report_json_round_trip(self):
        problems = build_machine_problems()[:3]
        report = evaluate_model(
            JunkModel(), problems,
            EvalConfig(n_samples=4, n_test_vectors=4))
        restored = EvalReport.from_json(report.to_json())
        assert restored.suite == report.suite
        assert restored.model_name == report.model_name
        assert [r.to_dict() for r in restored.results] == [
            r.to_dict() for r in report.results]
        assert restored.trace.to_dict() == report.trace.to_dict()
        assert restored.summary() == report.summary()


class TestSampleSeeding:
    def test_pinned_values(self):
        """Regression pin: per-sample seeds are part of the protocol —
        a change here silently reshuffles every sampled completion."""
        assert sample_seed(0, 0, 0) == 18089622622667645874
        assert sample_seed(9, 2, 3) == 16124740195836742067
        assert sample_seed(12, 0, 7) == 4186393702693507101

    def test_distinct_across_axes(self):
        seeds = {
            sample_seed(seed, p, s)
            for seed in range(3) for p in range(5) for s in range(5)
        }
        assert len(seeds) == 3 * 5 * 5

    def test_stable_across_processes(self):
        """The mix must not depend on interpreter hash randomisation."""
        import subprocess
        import sys

        script = (
            "from repro.eval.harness import sample_seed;"
            "print(sample_seed(9, 2, 3))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
            cwd=__file__.rsplit("/tests/", 1)[0],
        ).stdout.strip()
        assert int(out) == sample_seed(9, 2, 3)
