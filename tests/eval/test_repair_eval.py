"""pass@k(repair_budget): parity at r=0, monotonicity, round trips."""

import json
import random

import pytest

from repro.corpus.templates import generate_design
from repro.eval.config import EvalConfig
from repro.eval.harness import evaluate_model
from repro.eval.problems.machine import build_machine_problems
from repro.eval.repair_eval import (
    RepairEvalReport,
    RepairProblemResult,
    evaluate_with_repair,
)
from repro.model.interfaces import FineTunable, TrainStats


class BreakyOracleModel(FineTunable):
    """Emits the reference solution with 0–2 semicolons removed,
    chosen by the per-sample RNG — so some samples fail at first and
    need exactly that many repair iterations to pass."""

    def __init__(self, problems):
        self._sources = {}
        for problem in problems:
            design = generate_design(
                problem.spec.family, random.Random(0),
                params=problem.spec.params,
                module_name=problem.spec.module_name)
            self._sources[problem.description] = design.source

    def train_batch(self, examples, loss_weight):
        return TrainStats()

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None):
        source = self._sources.get(
            description, "module top_module(); endmodule")
        breaks = (rng or random.Random(0)).choice([0, 1, 1, 2])
        for _ in range(breaks):
            index = source.rindex(";")
            source = source[:index] + source[index + 1:]
        return source


@pytest.fixture(scope="module")
def problems():
    return build_machine_problems()[:3]


@pytest.fixture(scope="module")
def model(problems):
    return BreakyOracleModel(problems)


def _results_json(results):
    return json.dumps([result.to_dict() for result in results],
                      sort_keys=True)


CONFIG = EvalConfig(n_samples=4, seed=2, n_test_vectors=6)


class TestZeroBudgetParity:
    def test_r0_byte_identical_to_evaluate_model(self, problems, model):
        classic = evaluate_model(model, problems, CONFIG)
        repair = evaluate_with_repair(
            model, problems, CONFIG.with_overrides(repair_budget=0))
        assert _results_json(repair.base_results()) == \
            _results_json(classic.results)

    def test_base_results_stable_under_budget(self, problems, model):
        """More budget never changes the r=0 column."""
        classic = evaluate_model(model, problems, CONFIG)
        repaired = evaluate_with_repair(
            model, problems, CONFIG.with_overrides(repair_budget=2))
        assert _results_json(repaired.base_results()) == \
            _results_json(classic.results)


class TestMonotonicity:
    def test_pass_rate_non_decreasing_in_budget(self, problems, model):
        rates = []
        for budget in (0, 1, 2, 3):
            report = evaluate_with_repair(
                model, problems,
                CONFIG.with_overrides(repair_budget=budget))
            rates.append(report.pass_at(1))
        assert rates == sorted(rates)
        # The broken-oracle model is always rescuable within budget 2.
        assert rates[-1] > rates[0]

    def test_passed_at_cumulative_per_problem(self, problems, model):
        report = evaluate_with_repair(
            model, problems, CONFIG.with_overrides(repair_budget=3))
        for result in report.results:
            assert result.passed_at == sorted(result.passed_at)
            assert len(result.passed_at) == 4
            assert result.n_repaired >= 0

    def test_fix_rate_curve_monotone_in_unit_interval(self, problems,
                                                      model):
        report = evaluate_with_repair(
            model, problems, CONFIG.with_overrides(repair_budget=2))
        curve = report.fix_rate_curve()
        assert len(curve) == 3
        assert curve == sorted(curve)
        assert all(0.0 <= rate <= 1.0 for rate in curve)
        assert curve[0] == 0.0  # zero iterations fix nothing

    def test_full_budget_rescues_all_breaks(self, problems, model):
        """Every break is 1–2 missing semicolons: budget 2 fixes all."""
        report = evaluate_with_repair(
            model, problems, CONFIG.with_overrides(repair_budget=2))
        assert report.pass_at(1) == 100.0


class TestReportShape:
    def test_round_trip(self, problems, model):
        report = evaluate_with_repair(
            model, problems, CONFIG.with_overrides(repair_budget=2))
        again = RepairEvalReport.from_json(report.to_json())
        assert _results_json(again.results) == \
            _results_json(report.results)
        assert again.repair_budget == 2
        assert again.config == report.config

    def test_summary_at_budget_levels(self, problems, model):
        report = evaluate_with_repair(
            model, problems, CONFIG.with_overrides(repair_budget=2))
        classic = report.summary(ks=(1,), budget=0)["pass@1"]
        repaired = report.summary(ks=(1,))["pass@1"]
        assert repaired >= classic

    def test_deterministic(self, problems, model):
        config = CONFIG.with_overrides(repair_budget=1)
        first = evaluate_with_repair(model, problems, config)
        second = evaluate_with_repair(model, problems, config)
        assert _results_json(first.results) == \
            _results_json(second.results)


class TestRepairProblemResult:
    def test_pass_at_budget_argument(self):
        result = RepairProblemResult(
            problem_id="p", n_samples=4, passed_at=[1, 2, 4])
        assert result.pass_at(1, budget=0) < result.pass_at(1, budget=2)
        assert result.pass_at(1) == result.pass_at(1, budget=2)
        # Budgets beyond the recorded curve clamp to the last entry.
        assert result.pass_at(1, budget=99) == result.pass_at(1)

    def test_round_trip(self):
        result = RepairProblemResult(
            problem_id="p", n_samples=4, passed_at=[1, 3],
            failure_kinds={"mismatch": 3})
        again = RepairProblemResult.from_dict(result.to_dict())
        assert again.to_dict() == result.to_dict()

    def test_base_result_projection(self):
        result = RepairProblemResult(
            problem_id="p", n_samples=4, passed_at=[2, 4],
            failure_kinds={"mismatch": 2})
        base = result.base_result()
        assert base.n_passed == 2
        assert base.failure_kinds == {"mismatch": 2}
