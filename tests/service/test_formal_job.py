"""The ``formal`` job type and the sampling-cache digest fix."""

import os

import pytest

from repro.obs import Observability
from repro.service import PyraNetService
from repro.store import MANIFEST_NAME, StoreManifest, StoreReader


@pytest.fixture
def service(tmp_path):
    svc = PyraNetService(tmp_path / "svc", n_workers=2,
                         obs=Observability(), durable=False)
    yield svc
    svc.stop()


def run_all(service):
    return service.pool.run_pending()


def curate(service, store="unit", seed=5, files=40, key="c"):
    sub = service.submit(
        "curate",
        {"n_github_files": files, "n_llm_prompts": 2,
         "n_queries_per_prompt": 2, "seed": seed, "store": store},
        idempotency_key=key)
    run_all(service)
    record = service.job(sub["job_id"])
    assert record["status"] == "done", record["error"]
    return record


class TestFormalJob:
    def test_formal_job_persists_verdicts(self, service):
        curate(service)
        sub = service.submit("formal", {"store": "unit", "bound": 2},
                             idempotency_key="f")
        run_all(service)
        record = service.job(sub["job_id"])
        assert record["status"] == "done", record["error"]
        result = record["result"]
        assert result["store"] == "unit"
        assert result["n_entries"] > 0
        assert result["n_checked"] <= result["n_entries"]
        assert result["n_verified"] <= result["n_checked"]
        # Memo counters are exact: one miss per distinct checked source.
        memo = result["memo"]
        assert memo["hits"] + memo["misses"] == result["n_checked"]

        # The verdicts are on disk, not just in the job result.
        store_dir = service.context.store_dir("unit")
        reader = StoreReader(store_dir)
        entries = list(reader)
        assert len(entries) == result["n_entries"]
        flagged = [e for e in entries if e.verified]
        assert len(flagged) == result["n_verified"]
        for entry in flagged:
            assert entry.ranking == 20
            assert entry.verified_detail

    def test_verified_facet_served_after_formal(self, service):
        curate(service)
        before = service.facets("unit")
        # Curation already populates the tier; the formal job recomputes
        # it over whatever is in the store.
        assert set(before["verified"]) == {"n_verified", "n_layer_1"}
        service.submit("formal", {"store": "unit"}, idempotency_key="f")
        run_all(service)
        after = service.facets("unit")
        assert set(after["verified"]) == {"n_verified", "n_layer_1"}
        assert (after["verified"]["n_layer_1"]
                == after["layers"].get("1", {}).get("n_entries", 0))
        record = [r for r in service.jobs() if r["type"] == "formal"][-1]
        assert (after["verified"]["n_verified"]
                == service.job(record["job_id"])["result"]["n_verified"])

    def test_formal_job_is_idempotent(self, service):
        """Two formal runs over the same rows produce byte-identical
        shards (content-addressed) and the same verdict counts; only
        the manifest's job provenance differs."""
        curate(service)
        store_dir = service.context.store_dir("unit")
        observed = []
        for key in ("f1", "f2"):
            service.submit("formal", {"store": "unit"},
                           idempotency_key=key)
            run_all(service)
            record = [r for r in service.jobs()
                      if r["type"] == "formal"][-1]
            result = service.job(record["job_id"])["result"]
            manifest = StoreManifest.load(store_dir)
            observed.append((result["n_verified"],
                             result["verified_facet"],
                             [s.digest for s in manifest.shards]))
        assert observed[0] == observed[1]

    def test_formal_requires_store_param(self, service):
        with pytest.raises(ValueError):
            service.submit("formal", {})

    def test_unknown_store_fails_cleanly(self, service):
        sub = service.submit("formal", {"store": "ghost"},
                             idempotency_key="g")
        run_all(service)
        assert service.job(sub["job_id"])["status"] in ("failed", "dead")


class TestSamplingCacheDigest:
    def test_rewrite_with_equal_mtime_still_refreshes(self, service):
        """Regression: the cached SamplingService was keyed on manifest
        st_mtime_ns, so a rewrite that lands on the same timestamp (or
        restores it) served stale samples.  Content digest keys don't
        care about timestamps."""
        curate(service, seed=1, files=30, key="c1")
        manifest_path = (service.context.store_dir("unit")
                         / MANIFEST_NAME)
        first_stat = manifest_path.stat()
        first = service.sample("unit", n=10_000)  # populates the cache

        curate(service, seed=2, files=50, key="c2")
        # Force the new manifest onto the old timestamp, byte-exactly
        # simulating a same-mtime rewrite.
        os.utime(manifest_path, ns=(first_stat.st_atime_ns,
                                    first_stat.st_mtime_ns))
        assert manifest_path.stat().st_mtime_ns == first_stat.st_mtime_ns

        second = service.sample("unit", n=10_000)
        n_now = StoreManifest.load(manifest_path.parent).n_entries
        assert second["n"] == n_now
        assert second["n"] != first["n"]

    def test_unchanged_manifest_reuses_reader(self, service):
        curate(service)
        service.sample("unit", n=2)
        reader_one = service._readers["unit"][1]
        service.sample("unit", n=2)
        assert service._readers["unit"][1] is reader_one
