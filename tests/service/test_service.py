"""PyraNetService + WorkerPool behaviour, driven in-process (no HTTP)."""

import pytest

from repro.obs import Observability
from repro.service import (
    HANDLERS,
    PyraNetService,
    UnknownJobError,
    UnknownStoreError,
    register_handler,
)


@pytest.fixture
def service(tmp_path):
    svc = PyraNetService(tmp_path / "svc", n_workers=2,
                         obs=Observability(), durable=False)
    yield svc
    svc.stop()


def run_all(service):
    return service.pool.run_pending()


class TestJobLifecycle:
    def test_probe_job_runs_to_done(self, service):
        sub = service.submit("probe", {"spin": 3},
                             idempotency_key="p")
        assert sub["created"] and sub["status"] == "queued"
        assert run_all(service) == 1
        record = service.job(sub["job_id"])
        assert record["status"] == "done"
        assert record["result"]["spin"] == 3
        assert record["result"]["digest"]

    def test_probe_digest_is_deterministic(self, tmp_path):
        digests = []
        for name in ("a", "b"):
            svc = PyraNetService(tmp_path / name, durable=False)
            sub = svc.submit("probe", {"spin": 4}, idempotency_key="k")
            svc.pool.run_pending()
            digests.append(svc.job(sub["job_id"])["result"]["digest"])
        assert digests[0] == digests[1]

    def test_unknown_job_type_rejected_at_submit(self, service):
        with pytest.raises(ValueError, match="unknown job type"):
            service.submit("mine-bitcoin", {})

    def test_unknown_job_id_raises(self, service):
        with pytest.raises(UnknownJobError):
            service.job("job-nope")
        with pytest.raises(UnknownJobError):
            service.job_report("job-nope")

    def test_jobs_listing_in_submission_order(self, service):
        ids = [service.submit("probe", {"n": i})["job_id"]
               for i in range(3)]
        assert [row["job_id"] for row in service.jobs()] == ids

    def test_job_record_excludes_report_payload(self, service):
        sub = service.submit("probe", {"spin": 1})
        run_all(service)
        assert "report" not in service.job(sub["job_id"])
        assert service.job_report(sub["job_id"])["report"]["spans"]


class TestQuarantine:
    def test_poisoned_job_fails_without_stalling_the_pool(self, service):
        def explode(job, ctx, obs):
            raise RuntimeError("poisoned payload")

        register_handler("explode-test", explode)
        try:
            bad = service.submit("explode-test", {})
            good = service.submit("probe", {"spin": 1})
            assert run_all(service) == 2
        finally:
            HANDLERS.pop("explode-test")

        failed = service.job(bad["job_id"])
        assert failed["status"] == "failed"
        assert "poisoned payload" in failed["error"]
        assert service.job(good["job_id"])["status"] == "done"

    def test_dead_letter_surfaces_in_job_report(self, service):
        def explode(job, ctx, obs):
            raise RuntimeError("always broken")

        register_handler("explode-test", explode)
        try:
            sub = service.submit("explode-test", {})
            run_all(service)
        finally:
            HANDLERS.pop("explode-test")

        report = service.job_report(sub["job_id"])
        assert report["status"] == "failed"
        assert report["quarantine"]["site"] == "service.job"
        assert report["quarantine"]["error_type"] == "RuntimeError"
        assert report["dead_letter_total"] >= 1
        assert report["resilience"]["quarantined"] >= 1

    def test_transient_failure_is_retried_to_success(self, service):
        calls = []

        def flaky(job, ctx, obs):
            calls.append(1)
            if len(calls) == 1:
                raise OSError("transient")
            return {"ok": True}

        register_handler("flaky-test", flaky)
        try:
            sub = service.submit("flaky-test", {})
            run_all(service)
        finally:
            HANDLERS.pop("flaky-test")

        assert len(calls) == 2  # DEFAULT_JOB_RETRY.max_attempts
        assert service.job(sub["job_id"])["status"] == "done"


class TestThreadedWorkers:
    def test_start_stop_drains_in_flight_jobs(self, tmp_path):
        svc = PyraNetService(tmp_path, n_workers=2, durable=False,
                             poll_interval=0.01)
        subs = [svc.submit("probe", {"spin": 2, "n": i})
                for i in range(6)]
        svc.start()
        assert svc.healthz()["workers_running"]
        svc.stop(drain_queue=True)
        assert not svc.healthz()["workers_running"]
        for sub in subs:
            assert svc.job(sub["job_id"])["status"] == "done"
        assert svc.queue.depth() == 0

    def test_start_is_idempotent(self, tmp_path):
        svc = PyraNetService(tmp_path, n_workers=1, durable=False)
        svc.start()
        svc.start()
        assert sum(t.is_alive() for t in svc.pool._threads) == 1
        svc.stop()


class TestHealthAndReport:
    def test_healthz_shape(self, service):
        service.submit("probe", {"spin": 1})
        run_all(service)
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["queue"]["done"] == 1
        assert health["depth"] == 0
        assert health["metrics"]["service.jobs.submitted"] == 1
        assert health["metrics"]["service.jobs.finished"] == 1

    def test_run_report_carries_job_spans(self, service):
        service.submit("probe", {"spin": 1})
        run_all(service)
        report = service.run_report()
        names = {span["name"] for span in report["spans"]}
        assert "service.job.execute" in names

    def test_job_latency_histogram_is_fed(self, service):
        service.submit("probe", {"spin": 1})
        run_all(service)
        histogram = service.obs.registry.histogram("service.job.latency_s")
        assert histogram.count == 1


class TestStoreEndpoints:
    def test_unknown_store_raises(self, service):
        with pytest.raises(UnknownStoreError):
            service.facets("nope")
        with pytest.raises(UnknownStoreError):
            service.sample("nope")

    def test_bad_store_name_rejected(self, service):
        with pytest.raises(ValueError):
            service.facets("../escape")

    def test_curate_store_facets_sample_round_trip(self, service):
        sub = service.submit(
            "curate",
            {"n_github_files": 30, "n_llm_prompts": 2,
             "n_queries_per_prompt": 2, "seed": 5, "store": "unit"},
            idempotency_key="c")
        run_all(service)
        record = service.job(sub["job_id"])
        assert record["status"] == "done", record["error"]
        assert record["result"]["store"] == "unit"

        stores = service.stores()
        assert [row["name"] for row in stores] == ["unit"]
        assert stores[0]["n_entries"] == record["result"]["n_entries"]

        facets = service.facets("unit")
        assert facets["n_entries"] == record["result"]["n_entries"]
        assert sum(facets["complexity"].values()) == facets["n_entries"]

        sample = service.sample("unit", n=3)
        assert sample["n"] == 3
        layer = int(next(iter(facets["layers"])))
        filtered = service.sample("unit", n=2, layer=layer)
        assert all(row["layer"] == layer for row in filtered["rows"])

    def test_sampling_reader_refreshes_when_store_rewritten(
            self, service):
        for seed, files in ((1, 30), (2, 40)):
            service.submit(
                "curate",
                {"n_github_files": files, "n_llm_prompts": 2,
                 "n_queries_per_prompt": 2, "seed": seed,
                 "store": "rw"},
                idempotency_key=f"c{seed}")
            run_all(service)
            facets = service.facets("rw")
            sample = service.sample("rw", n=10_000)
            assert sample["n"] == facets["n_entries"]
