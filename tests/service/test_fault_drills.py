"""Service fault drills: worker crashes, torn journals, dead letters.

The acceptance property throughout: a job interrupted by a simulated
``kill -9`` (plus, for good measure, a torn queue-journal entry) and
re-run on a reopened service produces a store and result digests
byte-identical to an uninterrupted run.
"""

import hashlib

import pytest

from repro.obs import Observability
from repro.resilience import FaultPlan, FaultRule, Resilience, SimulatedCrash
from repro.service import PyraNetService
from repro.service.workers import DEFAULT_JOB_RETRY, JOB_SITE

pytestmark = pytest.mark.faults

CURATE_PARAMS = {
    "n_github_files": 60,
    "n_llm_prompts": 2,
    "n_queries_per_prompt": 2,
    "seed": 11,
    "store": "drill",
}
KEY = "curate-drill"


def make_service(root, fault_plan=None):
    obs = Observability()
    resilience = Resilience(retry=DEFAULT_JOB_RETRY,
                            fault_plan=fault_plan, obs=obs)
    return PyraNetService(root, n_workers=1, obs=obs,
                          resilience=resilience)


def store_fingerprint(store_dir):
    """name -> content digest for every file in a store directory."""
    return {
        path.name: hashlib.blake2b(path.read_bytes(),
                                   digest_size=16).hexdigest()
        for path in sorted(store_dir.iterdir()) if path.is_file()
    }


def run_uninterrupted(root):
    service = make_service(root)
    sub = service.submit("curate", CURATE_PARAMS, idempotency_key=KEY)
    assert service.pool.run_pending() == 1
    record = service.job(sub["job_id"])
    assert record["status"] == "done", record["error"]
    service.stop()
    return record, store_fingerprint(root / "stores" / "drill")


class TestCrashRecovery:
    def crash_plan(self):
        # Kill the worker dead partway through the syntax stage — after
        # earlier stages have journaled batches, before the store write.
        return FaultPlan([FaultRule(site="stage.syntax_check",
                                    kind="crash", ordinals=(5,))])

    def test_killed_job_resumes_byte_identical(self, tmp_path):
        golden, golden_store = run_uninterrupted(tmp_path / "clean")

        crashed = make_service(tmp_path / "svc",
                               fault_plan=self.crash_plan())
        sub = crashed.submit("curate", CURATE_PARAMS,
                             idempotency_key=KEY)
        with pytest.raises(SimulatedCrash):
            crashed.pool.run_pending()
        # The worker died mid-job: journaled as running, store unwritten,
        # but the job's own checkpoint journal survives.
        assert crashed.queue.get(sub["job_id"]).status == "running"
        job_ckpt = tmp_path / "svc" / "jobs" / sub["job_id"] / "checkpoint"
        assert list(job_ckpt.glob("journal-*.ckpt"))
        assert not (tmp_path / "svc" / "stores" / "drill").exists()

        # Reopen (no fault plan — the "new process"): the job is
        # re-queued and resumes from its checkpoint.
        reopened = make_service(tmp_path / "svc")
        record = reopened.job(sub["job_id"])
        assert record["status"] == "queued"
        assert record["recovered"] == 1
        assert reopened.pool.run_pending() == 1

        final = reopened.job(sub["job_id"])
        assert final["status"] == "done", final["error"]
        assert final["result"]["dataset_digest"] == \
            golden["result"]["dataset_digest"]
        assert final["result"]["manifest_digest"] == \
            golden["result"]["manifest_digest"]
        assert (store_fingerprint(tmp_path / "svc" / "stores" / "drill")
                == golden_store)
        reopened.stop()

    def test_crash_plus_torn_queue_journal(self, tmp_path):
        """The double failure: the worker dies AND the queue's last
        journal entry (the claim) is torn.  Replay forgets the claim,
        the job is still queued, and the re-run is byte-identical."""
        golden, golden_store = run_uninterrupted(tmp_path / "clean")

        crashed = make_service(tmp_path / "svc",
                               fault_plan=self.crash_plan())
        sub = crashed.submit("curate", CURATE_PARAMS,
                             idempotency_key=KEY)
        with pytest.raises(SimulatedCrash):
            crashed.pool.run_pending()

        journal = sorted(
            (tmp_path / "svc" / "queue").glob("journal-*.ckpt"))[-1]
        blob = journal.read_bytes()
        journal.write_bytes(blob[:len(blob) // 2])

        reopened = make_service(tmp_path / "svc")
        record = reopened.job(sub["job_id"])
        assert record["status"] == "queued"
        assert record["recovered"] == 0  # the claim was forgotten, not died
        assert reopened.pool.run_pending() == 1

        final = reopened.job(sub["job_id"])
        assert final["status"] == "done", final["error"]
        assert final["result"]["dataset_digest"] == \
            golden["result"]["dataset_digest"]
        assert (store_fingerprint(tmp_path / "svc" / "stores" / "drill")
                == golden_store)
        reopened.stop()


class TestSeededFaultAbsorption:
    def test_seeded_transient_faults_change_nothing(self, tmp_path):
        """A seeded schedule of transient stage faults is absorbed by
        the job's retry shields — same bytes as the clean run."""
        golden, golden_store = run_uninterrupted(tmp_path / "clean")

        plan = FaultPlan.seeded(
            seed=CURATE_PARAMS["seed"],
            sites=["stage.syntax_check", "stage.rank_label"],
            n_faults=2, max_ordinal=10)
        service = make_service(tmp_path / "svc", fault_plan=plan)
        sub = service.submit("curate", CURATE_PARAMS,
                             idempotency_key=KEY)
        assert service.pool.run_pending() == 1
        record = service.job(sub["job_id"])
        assert record["status"] == "done", record["error"]
        assert record["result"]["dataset_digest"] == \
            golden["result"]["dataset_digest"]
        assert (store_fingerprint(tmp_path / "svc" / "stores" / "drill")
                == golden_store)
        assert plan.report()  # the faults really fired
        service.stop()


class TestDeadLetterPath:
    def test_persistent_fault_dead_letters_into_job_report(self, tmp_path):
        """A job whose every attempt faults is quarantined: failed in
        the queue, dead-lettered in the runtime, and both surface in
        ``/jobs/<id>/report``."""
        plan = FaultPlan([FaultRule(
            site=JOB_SITE, ordinals=tuple(range(DEFAULT_JOB_RETRY.max_attempts)),
            exception="RuntimeError", message="wedged dependency")])
        service = make_service(tmp_path, fault_plan=plan)
        sub = service.submit("probe", {"spin": 1}, idempotency_key="p")
        assert service.pool.run_pending() == 1

        report = service.job_report(sub["job_id"])
        assert report["status"] == "failed"
        assert "wedged dependency" in report["error"]
        assert report["quarantine"]["site"] == JOB_SITE
        assert report["quarantine"]["attempts"] == \
            DEFAULT_JOB_RETRY.max_attempts
        assert report["dead_letter_total"] == 1
        assert report["resilience"]["quarantined"] == 1

        # The pool survived: the next job runs clean.
        ok = service.submit("probe", {"spin": 1}, idempotency_key="q")
        assert service.pool.run_pending() == 1
        assert service.job(ok["job_id"])["status"] == "done"
        service.stop()
