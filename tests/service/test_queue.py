"""Unit tests for job records and the persistent job queue."""

import pytest

from repro.obs import Observability
from repro.service import Job, JobQueue, job_id_for, params_digest
from repro.service.jobs import auto_key


class TestJobRecords:
    def test_job_id_is_deterministic(self):
        assert job_id_for("curate", "k1") == job_id_for("curate", "k1")
        assert job_id_for("curate", "k1") != job_id_for("curate", "k2")
        assert job_id_for("curate", "k1") != job_id_for("eval", "k1")
        assert job_id_for("curate", "k1").startswith("job-")

    def test_params_digest_ignores_key_order(self):
        assert (params_digest({"a": 1, "b": 2})
                == params_digest({"b": 2, "a": 1}))
        assert params_digest({"a": 1}) != params_digest({"a": 2})

    def test_dict_round_trip(self):
        job = Job(job_id="job-x", type="probe", params={"spin": 3},
                  idempotency_key="k", seq=4, status="failed",
                  attempts=2, worker="w", error="boom",
                  quarantine={"site": "s"}, result={"n": 1},
                  report={"spans": []}, wall_s=1.5, recovered=1)
        assert Job.from_dict(job.to_dict()) == job

    def test_summary_has_no_payloads(self):
        job = Job(job_id="job-x", type="probe",
                  result={"big": "x" * 100}, report={"big": "y" * 100})
        row = job.summary()
        assert "result" not in row and "report" not in row
        assert row["job_id"] == "job-x"

    def test_auto_keys_are_unique_per_seq(self):
        assert (auto_key(0, "probe", {"a": 1})
                != auto_key(1, "probe", {"a": 1}))


class TestQueueBasics:
    def test_submit_claim_finish(self, tmp_path):
        queue = JobQueue(tmp_path, durable=False)
        job, created = queue.submit("probe", {"spin": 1},
                                    idempotency_key="k")
        assert created and job.status == "queued" and job.seq == 0
        assert queue.depth() == 1

        claimed = queue.claim(worker="w0")
        assert claimed.job_id == job.job_id
        assert claimed.status == "running" and claimed.attempts == 1
        assert queue.depth() == 0

        queue.finish(job.job_id, result={"ok": True}, wall_s=0.5)
        final = queue.get(job.job_id)
        assert final.status == "done" and final.result == {"ok": True}
        assert queue.counts() == {"queued": 0, "running": 0,
                                  "done": 1, "failed": 0}

    def test_fifo_order(self, tmp_path):
        queue = JobQueue(tmp_path, durable=False)
        ids = [queue.submit("probe", {"n": i})[0].job_id
               for i in range(5)]
        assert [queue.claim().job_id for _ in range(5)] == ids
        assert queue.claim() is None

    def test_fail_records_error_and_quarantine(self, tmp_path):
        queue = JobQueue(tmp_path, durable=False)
        job, _ = queue.submit("probe", {})
        queue.claim()
        queue.fail(job.job_id, error="ValueError: no",
                   quarantine={"site": "service.job"})
        final = queue.get(job.job_id)
        assert final.status == "failed"
        assert final.error == "ValueError: no"
        assert final.quarantine == {"site": "service.job"}

    def test_idempotent_submission_dedupes(self, tmp_path):
        queue = JobQueue(tmp_path, durable=False)
        first, created = queue.submit("probe", {"spin": 1},
                                      idempotency_key="same")
        again, dup = queue.submit("probe", {"spin": 999},
                                  idempotency_key="same")
        assert created and not dup
        assert again.job_id == first.job_id
        assert again.params == {"spin": 1}  # the original submission wins
        assert queue.depth() == 1

    def test_same_key_different_type_is_a_different_job(self, tmp_path):
        queue = JobQueue(tmp_path, durable=False)
        a, _ = queue.submit("probe", {}, idempotency_key="k")
        b, created = queue.submit("curate", {}, idempotency_key="k")
        assert created and a.job_id != b.job_id

    def test_anonymous_submissions_never_dedupe(self, tmp_path):
        queue = JobQueue(tmp_path, durable=False)
        a, _ = queue.submit("probe", {"spin": 1})
        b, created = queue.submit("probe", {"spin": 1})
        assert created and a.job_id != b.job_id
        assert queue.depth() == 2

    def test_unknown_job_operations_raise(self, tmp_path):
        queue = JobQueue(tmp_path, durable=False)
        assert queue.get("job-nope") is None
        with pytest.raises(KeyError):
            queue.finish("job-nope")
        with pytest.raises(KeyError):
            queue.fail("job-nope", error="x")

    def test_depth_gauge_tracks_queue(self, tmp_path):
        obs = Observability()
        queue = JobQueue(tmp_path, obs=obs, durable=False)
        gauge = obs.registry.gauge("service.queue.depth")
        queue.submit("probe", {})
        queue.submit("probe", {})
        assert gauge.value == 2
        job = queue.claim()
        assert gauge.value == 1
        queue.finish(job.job_id)
        assert gauge.value == 1
        queue.claim()
        assert gauge.value == 0


class TestQueuePersistence:
    def test_reopen_restores_state(self, tmp_path):
        queue = JobQueue(tmp_path)
        done, _ = queue.submit("probe", {"spin": 1}, idempotency_key="a")
        queue.claim()
        queue.finish(done.job_id, result={"digest": "d"}, wall_s=0.1)
        failed, _ = queue.submit("probe", {}, idempotency_key="b")
        queue.claim()
        queue.fail(failed.job_id, error="boom")
        queued, _ = queue.submit("probe", {}, idempotency_key="c")
        queue.journal_shutdown("test")

        reopened = JobQueue(tmp_path)
        assert reopened.counts() == {"queued": 1, "running": 0,
                                     "done": 1, "failed": 1}
        assert reopened.get(done.job_id).result == {"digest": "d"}
        assert reopened.get(failed.job_id).error == "boom"
        assert reopened.claim().job_id == queued.job_id

    def test_reopen_keeps_dedup_keys(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit("probe", {}, idempotency_key="k")
        reopened = JobQueue(tmp_path)
        again, created = reopened.submit("probe", {},
                                         idempotency_key="k")
        assert not created and again.job_id == job.job_id

    def test_seq_continues_across_reopen(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit("probe", {})
        reopened = JobQueue(tmp_path)
        job, _ = reopened.submit("probe", {})
        assert job.seq == 1

    def test_running_job_is_requeued_on_reopen(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit("probe", {}, idempotency_key="k")
        queue.claim(worker="doomed")
        # Simulate the worker dying: no terminal event, just reopen.
        reopened = JobQueue(tmp_path)
        recovered = reopened.get(job.job_id)
        assert recovered.status == "queued"
        assert recovered.recovered == 1
        assert reopened.depth() == 1

    def test_recovered_job_goes_to_the_front(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit("probe", {}, idempotency_key="a")
        queue.submit("probe", {}, idempotency_key="b")
        queue.claim()  # first is now running
        reopened = JobQueue(tmp_path)
        assert reopened.claim().job_id == first.job_id

    def test_crash_looper_is_failed_after_max_recoveries(self, tmp_path):
        job_id = None
        for round_number in range(3):
            queue = JobQueue(tmp_path, max_recoveries=2)
            job = queue.claim()
            if job is None:
                job, _ = queue.submit("probe", {}, idempotency_key="k")
                queue.claim()
            job_id = job.job_id
            # "crash": drop the queue with the job still running
        final = JobQueue(tmp_path, max_recoveries=2)
        record = final.get(job_id)
        assert record.status == "failed"
        assert "crash-looped" in record.error
        assert final.depth() == 0

    def test_recovery_counter(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit("probe", {})
        queue.claim()
        obs = Observability()
        JobQueue(tmp_path, obs=obs)
        assert obs.registry.counter("service.jobs.recovered").value == 1


class TestTornJournal:
    def _journal_files(self, tmp_path):
        return sorted(tmp_path.glob("journal-*.ckpt"))

    def test_torn_tail_entry_is_forgotten(self, tmp_path):
        queue = JobQueue(tmp_path)
        kept, _ = queue.submit("probe", {}, idempotency_key="kept")
        torn, _ = queue.submit("probe", {}, idempotency_key="torn")
        # Tear the last journal entry (the second submit) in half, as a
        # crash mid-write would without the atomic rename.
        last = self._journal_files(tmp_path)[-1]
        blob = last.read_bytes()
        last.write_bytes(blob[:len(blob) // 2])

        reopened = JobQueue(tmp_path)
        assert reopened.get(kept.job_id) is not None
        assert reopened.get(torn.job_id) is None  # forgotten, not mangled
        assert reopened.depth() == 1

    def test_corrupt_tail_entry_is_forgotten(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit("probe", {}, idempotency_key="kept")
        queue.submit("probe", {}, idempotency_key="flipped")
        last = self._journal_files(tmp_path)[-1]
        blob = bytearray(last.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        last.write_bytes(bytes(blob))

        reopened = JobQueue(tmp_path)
        assert reopened.depth() == 1

    def test_events_after_a_torn_entry_survive_the_next_reopen(
            self, tmp_path):
        """The queue prunes the torn tail so post-reopen events are not
        appended beyond the replay truncation point."""
        queue = JobQueue(tmp_path)
        queue.submit("probe", {}, idempotency_key="torn")
        last = self._journal_files(tmp_path)[-1]
        blob = last.read_bytes()
        last.write_bytes(blob[:len(blob) // 2])

        middle = JobQueue(tmp_path)
        fresh, _ = middle.submit("probe", {}, idempotency_key="fresh")

        final = JobQueue(tmp_path)
        assert final.get(fresh.job_id) is not None
        assert final.depth() == 1

    def test_forgotten_submit_is_safe_to_resubmit(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit("probe", {"spin": 2},
                              idempotency_key="k")
        last = self._journal_files(tmp_path)[-1]
        last.write_bytes(b"")

        reopened = JobQueue(tmp_path)
        again, created = reopened.submit("probe", {"spin": 2},
                                         idempotency_key="k")
        assert created  # the journal forgot it, so this is a new submit
        assert again.job_id == job.job_id  # …but the identity is stable
