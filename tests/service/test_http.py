"""HTTP API tests: a real socket on an OS-assigned port."""

import json
import urllib.request

import pytest

from repro.obs import Observability
from repro.service import (
    PyraNetService,
    ServiceClient,
    ServiceError,
    serve_in_thread,
)


@pytest.fixture
def served(tmp_path):
    service = PyraNetService(tmp_path / "svc", n_workers=2,
                             obs=Observability(), durable=False,
                             poll_interval=0.01)
    server, thread = serve_in_thread(service)
    client = ServiceClient(f"http://127.0.0.1:{server.port}",
                           timeout=10.0)
    yield service, server, client
    server.shutdown()
    server.server_close()
    service.stop()
    thread.join(timeout=5)


class TestRoutes:
    def test_healthz(self, served):
        _, _, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers_running"] is True

    def test_submit_and_wait(self, served):
        _, _, client = served
        sub = client.submit("probe", {"spin": 3}, idempotency_key="p")
        assert sub["created"] is True
        record = client.wait(sub["job_id"], timeout=10)
        assert record["status"] == "done"
        assert record["result"]["spin"] == 3

    def test_duplicate_submission_over_http(self, served):
        _, _, client = served
        first = client.submit("probe", {"spin": 1}, idempotency_key="k")
        again = client.submit("probe", {"spin": 1}, idempotency_key="k")
        assert again["job_id"] == first["job_id"]
        assert again["created"] is False

    def test_jobs_listing_and_report(self, served):
        _, _, client = served
        sub = client.submit("probe", {"spin": 1})
        client.wait(sub["job_id"], timeout=10)
        assert sub["job_id"] in [row["job_id"] for row in client.jobs()]
        report = client.report(sub["job_id"])
        assert report["status"] == "done"
        assert report["report"]["spans"]

    def test_run_report_and_http_metrics(self, served):
        service, _, client = served
        client.healthz()
        report = client.run_report()
        requests = service.obs.registry.counter(
            "service.http.requests").value
        assert requests >= 1
        assert (service.obs.registry.histogram(
            "service.http.latency_s").count >= 1)
        assert any(span["name"] == "service.http.request"
                   for span in report["spans"])

    def test_store_endpoints_over_http(self, served):
        _, _, client = served
        sub = client.submit(
            "curate",
            {"n_github_files": 30, "n_llm_prompts": 2,
             "n_queries_per_prompt": 2, "store": "http-store"},
            idempotency_key="c")
        record = client.wait(sub["job_id"], timeout=120)
        assert record["status"] == "done", record["error"]

        assert [row["name"] for row in client.stores()] == ["http-store"]
        facets = client.facets("http-store")
        assert facets["n_entries"] == record["result"]["n_entries"]
        sample = client.sample("http-store", n=2)
        assert sample["n"] == 2 and len(sample["rows"]) == 2


class TestErrorMapping:
    def test_unknown_route_is_404(self, served):
        _, _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_unknown_job_is_404(self, served):
        _, _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-doesnotexist")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.report("job-doesnotexist")
        assert excinfo.value.status == 404

    def test_unknown_store_is_404(self, served):
        _, _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.facets("ghost")
        assert excinfo.value.status == 404

    def test_unknown_job_type_is_400(self, served):
        _, _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.submit("mine-bitcoin", {})
        assert excinfo.value.status == 400
        assert "unknown job type" in str(excinfo.value)

    def test_malformed_bodies_are_400(self, served):
        _, server, _ = served
        url = f"http://127.0.0.1:{server.port}/jobs"

        def post(blob: bytes) -> int:
            request = urllib.request.Request(url, data=blob,
                                             method="POST")
            try:
                with urllib.request.urlopen(request, timeout=10):
                    return 200
            except urllib.error.HTTPError as exc:
                return exc.code

        assert post(b"") == 400                       # empty
        assert post(b"not json") == 400               # undecodable
        assert post(b"[1, 2]") == 400                 # not an object
        assert post(b"{}") == 400                     # no type
        assert post(json.dumps(
            {"type": "probe", "params": "x"}).encode()) == 400
        assert post(json.dumps(
            {"type": "probe", "idempotency_key": 7}).encode()) == 400

    def test_bad_query_arg_is_400(self, served):
        _, server, client = served
        sub = client.submit(
            "curate",
            {"n_github_files": 30, "n_llm_prompts": 2,
             "n_queries_per_prompt": 2, "store": "q"},
            idempotency_key="c")
        client.wait(sub["job_id"], timeout=120)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/stores/q/sample?n=banana")
        assert excinfo.value.status == 400

    def test_errors_bump_the_error_counter(self, served):
        service, _, client = served
        with pytest.raises(ServiceError):
            client.job("job-doesnotexist")
        assert (service.obs.registry.counter(
            "service.http.errors").value >= 1)


class TestShutdownRoute:
    def test_shutdown_drains_and_journals(self, tmp_path):
        service = PyraNetService(tmp_path / "svc", n_workers=2,
                                 durable=False, poll_interval=0.01)
        server, thread = serve_in_thread(service)
        client = ServiceClient(f"http://127.0.0.1:{server.port}",
                               timeout=10.0)
        sub = client.submit("probe", {"spin": 2})
        assert client.shutdown() == {"status": "stopping"}
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()
        # The in-flight job finished and the exit was journaled.
        assert service.job(sub["job_id"])["status"] in ("done", "queued")
        events = [entry["name"] for entry in service.queue._ckpt.entries()
                  if entry.get("kind") == "stage"]
        assert events[-1] == "shutdown"
