"""The job-type registry and the ``repair`` job type."""

import pytest

from repro.obs import Observability
from repro.service import (
    HANDLERS,
    PyraNetService,
    get_job_type,
    job_type_names,
    register_handler,
    register_job_type,
    unregister_job_type,
    validate_payload,
)


@pytest.fixture
def service(tmp_path):
    svc = PyraNetService(tmp_path / "svc", n_workers=2,
                         obs=Observability(), durable=False)
    yield svc
    svc.stop()


def _runner(job, ctx, obs):
    return {"ok": True}


class TestRegistry:
    def test_builtins_registered(self):
        assert {"curate", "finetune", "eval", "probe",
                "repair"} <= set(job_type_names())

    def test_register_and_unregister(self):
        register_job_type("reg-test", _runner,
                          payload_schema={"x": {"type": "int"}})
        try:
            job_type = get_job_type("reg-test")
            assert job_type.runner is _runner
            assert job_type.payload_schema["x"]["type"] == "int"
            assert "reg-test" in job_type_names()
        finally:
            unregister_job_type("reg-test")
        assert get_job_type("reg-test") is None

    def test_handlers_view_reflects_registry(self):
        register_job_type("view-test", _runner)
        try:
            assert "view-test" in HANDLERS
            assert HANDLERS.get("view-test") is _runner
            assert "view-test" in sorted(HANDLERS)
        finally:
            HANDLERS.pop("view-test")
        assert "view-test" not in HANDLERS

    def test_handlers_mutation_flows_to_registry(self):
        HANDLERS["mut-test"] = _runner
        try:
            assert get_job_type("mut-test").runner is _runner
        finally:
            HANDLERS.pop("mut-test")

    def test_register_handler_is_schema_less_registration(self):
        register_handler("legacy-test", _runner)
        try:
            assert get_job_type("legacy-test").payload_schema == {}
        finally:
            unregister_job_type("legacy-test")


class TestPayloadValidation:
    def test_unknown_type_lists_known(self):
        with pytest.raises(ValueError, match="unknown job type"):
            validate_payload("mine-bitcoin", {})

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError, match="wants int"):
            validate_payload("probe", {"spin": "lots"})

    def test_bool_is_not_an_int(self):
        with pytest.raises(ValueError, match="got bool"):
            validate_payload("probe", {"spin": True})

    def test_int_accepted_for_float(self):
        validate_payload("curate", {"dedup_threshold": 1})

    def test_required_field_enforced(self):
        with pytest.raises(ValueError, match="params\\['store'\\]"):
            validate_payload("finetune", {})

    def test_undeclared_params_pass_through(self):
        validate_payload("probe", {"n": 3, "anything": "goes"})

    def test_submit_rejects_invalid_payload(self, service):
        with pytest.raises(ValueError, match="wants int"):
            service.submit("repair", {"n_candidates": "many"})


class TestRepairJob:
    def test_repair_job_lands_store_with_facet(self, service):
        sub = service.submit("repair", {
            "n_candidates": 10, "seed": 7, "budget": 2,
            "store": "repair-store"}, idempotency_key="r")
        assert service.pool.run_pending() == 1
        record = service.job(sub["job_id"])
        assert record["status"] == "done", record["error"]
        result = record["result"]
        assert result["store"] == "repair-store"
        assert result["n_records"] > 0
        assert result["origins"].get("repair", 0) > 0
        assert 0.0 <= result["fix_rate"] <= 1.0
        # The store is queryable through the service's facet surface.
        facets = service.facets("repair-store")
        assert facets["origins"] == result["origins"]

    def test_repair_job_without_store_reports_digest(self, service):
        sub = service.submit("repair", {"n_candidates": 8, "seed": 3,
                                        "budget": 2},
                             idempotency_key="r2")
        service.pool.run_pending()
        record = service.job(sub["job_id"])
        assert record["status"] == "done", record["error"]
        assert record["result"]["dataset_digest"]

    def test_repair_job_deterministic(self, tmp_path):
        digests = []
        for name in ("a", "b"):
            svc = PyraNetService(tmp_path / name, durable=False)
            sub = svc.submit("repair", {"n_candidates": 8, "seed": 3,
                                        "budget": 2},
                             idempotency_key="k")
            svc.pool.run_pending()
            digests.append(
                svc.job(sub["job_id"])["result"]["dataset_digest"])
            svc.stop()
        assert digests[0] == digests[1]


class TestEvalJobConfig:
    def test_eval_job_with_repair_budget(self, service):
        sub = service.submit("eval", {
            "suite": "machine", "n_problems": 2, "n_samples": 2,
            "seed": 1, "repair_budget": 1}, idempotency_key="e")
        service.pool.run_pending()
        record = service.job(sub["job_id"])
        assert record["status"] == "done", record["error"]
        result = record["result"]
        assert result["repair_budget"] == 1
        assert result["config"]["repair_budget"] == 1
        assert len(result["fix_rate_curve"]) == 2
        assert result["report_digest"]
