"""End-to-end acceptance: the real service process, really killed.

Boots ``examples/serve.py`` as a subprocess, submits curate -> eval
jobs over HTTP, SIGKILLs the process mid-curation, restarts it on the
same service root, and asserts the finished store and the evaluation
report are byte-identical to an uninterrupted control run.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.resilience import FaultPlan, FaultRule
from repro.service import ServiceClient

pytestmark = pytest.mark.faults

REPO = Path(__file__).resolve().parents[2]
SERVE = REPO / "examples" / "serve.py"

CURATE = {
    "n_github_files": 60,
    "n_llm_prompts": 2,
    "n_queries_per_prompt": 2,
    "seed": 9,
    "store": "e2e",
}
EVAL = {
    "recipe": "architecture",
    "store": "e2e",
    "n_problems": 6,
    "seed": 9,
}


def start_server(root, fault_plan_path=None, timeout=30.0):
    """Boot serve.py on an OS-assigned port; returns (proc, client)."""
    env = {**os.environ,
           "PYTHONPATH": str(REPO / "src"),
           "PYTHONUNBUFFERED": "1"}
    argv = [sys.executable, str(SERVE), "--port", "0", "--workers", "1",
            "--queue-dir", str(root)]
    if fault_plan_path is not None:
        argv += ["--fault-plan", str(fault_plan_path)]
    proc = subprocess.Popen(argv, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            cwd=str(REPO / "examples"), env=env)
    deadline = time.monotonic() + timeout
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise AssertionError(
                f"server died on boot (rc={proc.returncode})")
        if "listening on http://" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    assert port, "server never printed its port"
    return proc, ServiceClient(f"http://127.0.0.1:{port}", timeout=30.0)


def stop_server(proc, client):
    try:
        client.shutdown()
    except Exception:
        pass
    try:
        proc.wait(timeout=15)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=15)


def run_jobs(client):
    """Submit curate then eval, wait for both, return their records."""
    curate = client.submit("curate", CURATE, idempotency_key="curate-e2e")
    curated = client.wait(curate["job_id"], timeout=120)
    assert curated["status"] == "done", curated["error"]
    ev = client.submit("eval", EVAL, idempotency_key="eval-e2e")
    evaluated = client.wait(ev["job_id"], timeout=120)
    assert evaluated["status"] == "done", evaluated["error"]
    return curated, evaluated


def store_fingerprint(root):
    store = Path(root) / "stores" / "e2e"
    return {
        path.name: hashlib.blake2b(path.read_bytes(),
                                   digest_size=16).hexdigest()
        for path in sorted(store.iterdir()) if path.is_file()
    }


def slowdown_plan(tmp_path) -> Path:
    """A delay schedule that stretches curation into a multi-second
    window so the kill reliably lands mid-job."""
    plan = FaultPlan([FaultRule(site="stage.syntax_check", kind="delay",
                                ordinals=tuple(range(400)),
                                delay_s=0.25)])
    path = tmp_path / "slow-plan.json"
    path.write_text(plan.to_json(indent=2), encoding="utf-8")
    return path


def test_kill_dash_nine_mid_curation_resumes_byte_identical(tmp_path):
    # Control: the uninterrupted run.
    control_root = tmp_path / "control"
    proc, client = start_server(control_root)
    try:
        control_curated, control_evaluated = run_jobs(client)
    finally:
        stop_server(proc, client)
    control_store = store_fingerprint(control_root)

    # Interrupted: same submissions, but the process is SIGKILLed while
    # the curation job is demonstrably mid-flight (running, with
    # checkpoint batches already journaled).
    victim_root = tmp_path / "victim"
    proc, client = start_server(victim_root,
                                fault_plan_path=slowdown_plan(tmp_path))
    curate = client.submit("curate", CURATE, idempotency_key="curate-e2e")
    job_ckpt = victim_root / "jobs" / curate["job_id"] / "checkpoint"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        record = client.job(curate["job_id"])
        if (record["status"] == "running"
                and list(job_ckpt.glob("journal-*.ckpt"))):
            break
        time.sleep(0.05)
    else:
        pytest.fail("curation never reached a mid-flight checkpoint")
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=15)
    assert not (victim_root / "stores" / "e2e").exists()

    # Restart on the same root, no fault plan: the journaled job is
    # recovered, resumes from its checkpoint, and the eval submission
    # proceeds as if nothing happened.
    proc, client = start_server(victim_root)
    try:
        record = client.job(curate["job_id"])
        assert record["status"] in ("queued", "running")
        assert record["recovered"] == 1
        curated, evaluated = run_jobs(client)
        assert curated["recovered"] == 1
    finally:
        stop_server(proc, client)

    # The acceptance bar: byte-identical store, identical digests,
    # identical eval outcomes.
    assert store_fingerprint(victim_root) == control_store
    assert (curated["result"]["dataset_digest"]
            == control_curated["result"]["dataset_digest"])
    assert (curated["result"]["manifest_digest"]
            == control_curated["result"]["manifest_digest"])
    assert (evaluated["result"]["report_digest"]
            == control_evaluated["result"]["report_digest"])
    assert (json.dumps(evaluated["result"]["summary"], sort_keys=True)
            == json.dumps(control_evaluated["result"]["summary"],
                          sort_keys=True))


def test_graceful_restart_serves_finished_jobs(tmp_path):
    """A clean stop/start on the same root: terminal jobs, results and
    dedup keys all survive; resubmission does not re-run."""
    root = tmp_path / "svc"
    proc, client = start_server(root)
    try:
        sub = client.submit("probe", {"spin": 3}, idempotency_key="p")
        first = client.wait(sub["job_id"], timeout=30)
    finally:
        stop_server(proc, client)

    proc, client = start_server(root)
    try:
        record = client.job(sub["job_id"])
        assert record["status"] == "done"
        assert record["result"] == first["result"]
        again = client.submit("probe", {"spin": 3}, idempotency_key="p")
        assert again["created"] is False
        assert again["job_id"] == sub["job_id"]
    finally:
        stop_server(proc, client)
