"""Concurrency drills: racing submitters, racing workers, exact counts."""

import threading

from repro.obs import Observability
from repro.service import JobQueue, PyraNetService, serve_in_thread
from repro.service import ServiceClient

N_THREADS = 16


def in_threads(fn, n=N_THREADS):
    """Run ``fn(index)`` on n threads through a start barrier."""
    barrier = threading.Barrier(n)
    results = [None] * n
    errors = []

    def runner(index):
        barrier.wait()
        try:
            results[index] = fn(index)
        except Exception as exc:  # surfaced by the caller's assert
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,))
               for i in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


class TestRacingSubmitters:
    def test_duplicate_key_executes_exactly_once(self, tmp_path):
        """N racing submitters of one idempotency key -> one job, one
        execution, and the obs counters account for every submission."""
        obs = Observability()
        service = PyraNetService(tmp_path, n_workers=4, obs=obs,
                                 durable=False)
        calls = []
        from repro.service import HANDLERS, register_handler

        def counting(job, ctx, job_obs):
            calls.append(job.job_id)
            return {"ok": True}

        register_handler("count-test", counting)
        try:
            results = in_threads(
                lambda i: service.submit("count-test", {"x": 1},
                                         idempotency_key="one"))
            executed = service.pool.run_pending()
        finally:
            HANDLERS.pop("count-test")

        job_ids = {row["job_id"] for row in results}
        assert len(job_ids) == 1
        assert sum(1 for row in results if row["created"]) == 1
        assert executed == 1
        assert len(calls) == 1

        counter = obs.registry.counter
        assert counter("service.jobs.submitted").value == 1
        assert counter("service.jobs.deduped").value == N_THREADS - 1
        assert counter("service.jobs.claimed").value == 1
        assert counter("service.jobs.finished").value == 1
        assert counter("service.jobs.failed").value == 0
        service.stop()

    def test_duplicate_key_over_http(self, tmp_path):
        obs = Observability()
        service = PyraNetService(tmp_path, n_workers=2, obs=obs,
                                 durable=False, poll_interval=0.01)
        server, thread = serve_in_thread(service)
        client = ServiceClient(f"http://127.0.0.1:{server.port}",
                               timeout=10.0)
        try:
            results = in_threads(
                lambda i: client.submit("probe", {"spin": 2},
                                        idempotency_key="http-one"),
                n=8)
            job_ids = {row["job_id"] for row in results}
            assert len(job_ids) == 1
            record = client.wait(job_ids.pop(), timeout=10)
            assert record["status"] == "done"
            assert record["attempts"] == 1
            counter = obs.registry.counter
            assert counter("service.jobs.submitted").value == 1
            assert counter("service.jobs.deduped").value == 7
            assert counter("service.jobs.finished").value == 1
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
            thread.join(timeout=5)

    def test_distinct_keys_all_execute(self, tmp_path):
        obs = Observability()
        service = PyraNetService(tmp_path, n_workers=4, obs=obs,
                                 durable=False)
        in_threads(lambda i: service.submit("probe", {"spin": 1},
                                            idempotency_key=f"k{i}"))
        assert service.pool.run_pending() == N_THREADS
        counter = obs.registry.counter
        assert counter("service.jobs.submitted").value == N_THREADS
        assert counter("service.jobs.deduped").value == 0
        assert counter("service.jobs.finished").value == N_THREADS
        service.stop()


class TestRacingClaimers:
    def test_each_job_claimed_once(self, tmp_path):
        queue = JobQueue(tmp_path, durable=False)
        for i in range(N_THREADS):
            queue.submit("probe", {"n": i})

        claims = in_threads(lambda i: queue.claim(worker=f"w{i}"))
        claimed_ids = [job.job_id for job in claims if job is not None]
        assert len(claimed_ids) == N_THREADS
        assert len(set(claimed_ids)) == N_THREADS
        assert queue.depth() == 0
