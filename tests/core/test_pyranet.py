"""Integration tests for the top-level PyraNet facade."""

import pytest

from repro.core.pyranet import PyraNet, RECIPES, gains, run_table4
from repro.model.generator import CODELLAMA_7B


@pytest.fixture(scope="module")
def pyranet():
    driver = PyraNet(seed=1, n_samples=6, n_test_vectors=10)
    driver.build_dataset(n_github_files=350, n_llm_prompts=12,
                         n_queries_per_prompt=5)
    return driver


class TestFacade:
    def test_dataset_built(self, pyranet):
        assert len(pyranet.dataset) > 30
        assert pyranet.dataset.trainable_layers()

    def test_dataset_required_before_finetune(self):
        fresh = PyraNet(seed=0)
        with pytest.raises(RuntimeError):
            _ = fresh.dataset

    def test_unknown_profile_rejected(self, pyranet):
        with pytest.raises(KeyError):
            pyranet.base_model("gpt-17")

    def test_unknown_recipe_rejected(self, pyranet):
        with pytest.raises(ValueError):
            pyranet.finetune(CODELLAMA_7B.name, recipe="alchemy")

    def test_all_recipes_run(self, pyranet):
        for recipe in RECIPES:
            model = pyranet.finetune(CODELLAMA_7B.name, recipe=recipe)
            out = model.generate("an 8-bit up counter with enable")
            assert isinstance(out, str) and out

    def test_evaluate_returns_report(self, pyranet):
        model = pyranet.base_model(CODELLAMA_7B.name)
        report = pyranet.evaluate(model, suite="machine", n_problems=4)
        summary = report.summary()
        assert set(summary) == {"pass@1", "pass@5", "pass@10"}
        assert all(0 <= v <= 100 for v in summary.values())

    def test_self_reflection_wrapper(self, pyranet):
        model = pyranet.base_model(CODELLAMA_7B.name)
        wrapped = pyranet.with_self_reflection(model)
        out = wrapped.generate("a parity generator for a byte")
        assert isinstance(out, str)


class TestExperimentShapes:
    """Small-scale versions of the headline orderings."""

    def test_architecture_beats_baseline(self, pyranet):
        problems = 20
        base = pyranet.base_model(CODELLAMA_7B.name)
        r_base = pyranet.evaluate(base, "machine", problems)
        arch = pyranet.finetune(CODELLAMA_7B.name, recipe="architecture")
        r_arch = pyranet.evaluate(arch, "machine", problems)
        assert sum(r_arch.summary().values()) > sum(
            r_base.summary().values())

    def test_erroneous_dataset_hurts(self, pyranet):
        results = run_table4(pyranet, CODELLAMA_7B.name, n_problems=10)
        assert sum(results["correct"].cells()) > sum(
            results["erroneous"].cells())

    def test_gains_arithmetic(self, pyranet):
        from repro.core.pyranet import TableOneRow

        a = TableOneRow("a", {"pass@1": 50.0, "pass@5": 60.0,
                              "pass@10": 70.0},
                        {"pass@1": 30.0, "pass@5": 40.0, "pass@10": 50.0})
        b = TableOneRow("b", {"pass@1": 40.0, "pass@5": 55.0,
                              "pass@10": 65.0},
                        {"pass@1": 35.0, "pass@5": 38.0, "pass@10": 45.0})
        assert gains(a, b) == [10.0, 5.0, 5.0, -5.0, 2.0, 5.0]
