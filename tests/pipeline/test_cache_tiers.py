"""ResultCache tiers: true LRU memory, length-prefixed keys, disk spill.

Pins the two bug fixes in the memory tier — eviction is LRU (a ``get``
refreshes recency; the old code evicted in pure insertion order) and
``content_key`` length-prefixes the namespace (the old concatenation
let a namespace/part boundary shift collide) — plus the contract of the
optional persistent tier: memory misses probe the disk, hits promote,
puts write through, and the disk counters surface in shared registries.
"""

from repro.obs import MetricRegistry, Observability
from repro.pipeline import DiskCache, ResultCache, content_key
from repro.pipeline.executor import ParallelExecutor


class TestMemoryLRU:
    def test_get_refreshes_recency(self):
        """The fixed behaviour: a read keeps an entry alive.  Under the
        old FIFO eviction ``a`` would be evicted here despite being the
        hottest entry."""
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.get("b", "evicted") == "evicted"

    def test_repeated_insert_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b", "evicted") == "evicted"

    def test_get_many_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get_many(["a"]) == [1]
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b", "evicted") == "evicted"


class TestContentKey:
    def test_namespace_boundary_cannot_collide(self):
        """The old scheme hashed ``namespace + encoded(parts)`` with no
        framing, so moving bytes across the namespace/part boundary
        produced the same digest.  Length prefixes make the boundary
        part of the hash."""
        assert content_key("ab") != content_key("a", "b")
        assert content_key("ns", "ab") != content_key("nsa", "b")
        assert content_key("ns", "a", "b") != content_key("ns", "ab")

    def test_length_prefix_bytes_cannot_alias(self):
        # A part that *looks like* another part's length prefix plus
        # payload must still hash differently.
        part = b"x" * 3
        framed = len(part).to_bytes(8, "little") + part
        assert content_key("ns", part) != content_key("ns", framed)

    def test_str_and_bytes_parts_supported(self):
        assert content_key("ns", "text") == content_key("ns", "text")
        assert content_key("ns", b"raw") == content_key("ns", b"raw")
        assert content_key("ns", 42) == content_key("ns", 42)

    def test_distinct_namespaces_do_not_share_keys(self):
        assert content_key("syntax", "code") != content_key("rank", "code")


class TestDiskTier:
    def test_memory_miss_probes_disk_and_promotes(self, tmp_path):
        disk = DiskCache(tmp_path)
        warm = ResultCache(disk=disk)
        warm.put("k", "value")
        # A fresh memory tier over the same directory: the first get is
        # served from disk and promoted, the second from memory.
        cold = ResultCache(disk=DiskCache(tmp_path))
        assert cold.get("k") == "value"
        assert "k" in cold  # promoted into the memory tier
        assert cold.stats()["disk"]["hits"] == 1
        assert cold.get("k") == "value"
        assert cold.stats()["disk"]["hits"] == 1  # no second probe

    def test_disk_hit_counts_as_overall_hit(self, tmp_path):
        ResultCache(disk=DiskCache(tmp_path)).put("k", 1)
        rerun = ResultCache(disk=DiskCache(tmp_path))
        assert rerun.get("k") == 1
        assert rerun.hits == 1 and rerun.misses == 0

    def test_true_miss_counts_both_tiers(self, tmp_path):
        cache = ResultCache(disk=DiskCache(tmp_path))
        assert cache.get("absent", "fallback") == "fallback"
        assert cache.misses == 1
        assert cache.stats()["disk"]["misses"] == 1

    def test_corrupt_entry_recomputed_never_served(self, tmp_path):
        first = ResultCache(disk=DiskCache(tmp_path))
        key = content_key("ns", "module m; endmodule")
        first.put(key, "clean")
        path = first.disk.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0x40
        path.write_bytes(bytes(raw))
        rerun = ResultCache(disk=DiskCache(tmp_path))
        calls = []

        def compute():
            calls.append(1)
            return "recomputed"

        assert rerun.get_or_compute("ns", "module m; endmodule",
                                    compute) == "recomputed"
        assert calls == [1]
        assert rerun.stats()["disk"]["corrupt"] == 1
        # The recomputed value was written through and is healthy again.
        third = ResultCache(disk=DiskCache(tmp_path))
        assert third.get(key) == "recomputed"

    def test_get_many_mixed_tiers(self, tmp_path):
        seed = ResultCache(disk=DiskCache(tmp_path))
        seed.put("on-disk", "d")
        cache = ResultCache(disk=DiskCache(tmp_path))
        cache.put("in-memory", "m")
        got = cache.get_many(["in-memory", "on-disk", "absent"],
                             default="?")
        assert got == ["m", "d", "?"]
        stats = cache.stats()
        assert stats["disk"]["hits"] == 1
        assert stats["disk"]["misses"] == 1

    def test_get_many_with_io_mapper(self, tmp_path):
        seed = ResultCache(disk=DiskCache(tmp_path))
        for i in range(8):
            seed.put(f"k{i}", i)
        cache = ResultCache(disk=DiskCache(tmp_path))
        executor = ParallelExecutor(mode="thread", max_workers=4)
        keys = [f"k{i}" for i in range(8)] + ["absent"]
        assert (cache.get_many(keys, default=None,
                               mapper=executor.io_map)
                == list(range(8)) + [None])
        assert cache.stats()["disk"]["hits"] == 8

    def test_eviction_counter_reports_sweeps(self, tmp_path):
        cache = ResultCache(
            disk=DiskCache(tmp_path, max_entries=2))
        for i in range(5):
            cache.put(f"k{i}", i)
        assert cache.stats()["disk"]["evictions"] == 3
        assert len(cache.disk) == 2

    def test_clear_keeps_the_disk_tier(self, tmp_path):
        cache = ResultCache(disk=DiskCache(tmp_path))
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") == 1  # served from disk, re-promoted

    def test_sync_disk_is_safe_with_and_without_tier(self, tmp_path):
        ResultCache().sync_disk()  # no disk: a no-op
        cache = ResultCache(disk=DiskCache(tmp_path))
        cache.put("k", 1)
        cache.sync_disk()


class TestRegistryIntegration:
    def test_disk_counters_live_in_shared_registry(self, tmp_path):
        registry = MetricRegistry()
        seed = ResultCache(name="curation", registry=MetricRegistry(),
                           disk=DiskCache(tmp_path))
        seed.put("k", 1)
        cache = ResultCache(name="curation", registry=registry,
                            disk=DiskCache(tmp_path))
        cache.get("k")
        cache.get("absent")
        assert registry.counters("cache.curation.disk.") == {
            "cache.curation.disk.hits": 1,
            "cache.curation.disk.misses": 1,
            "cache.curation.disk.corrupt": 0,
            "cache.curation.disk.evictions": 0,
        }

    def test_diskless_cache_adds_no_disk_counter_names(self):
        """Existing golden run reports must not grow counter rows just
        because the disk tier exists as a feature."""
        registry = MetricRegistry()
        cache = ResultCache(name="syntax", registry=registry)
        cache.get("x")
        assert all(".disk." not in name
                   for name in registry.counters("cache."))

    def test_disk_counters_surface_in_run_report(self, tmp_path):
        obs = Observability()
        seed = ResultCache(disk=DiskCache(tmp_path))
        seed.put("k", "v")
        cache = ResultCache(name="curation", registry=obs.registry,
                            disk=DiskCache(tmp_path))
        cache.get("k")
        counters = obs.run_report().metrics["counters"]
        assert counters["cache.curation.disk.hits"] == 1
        assert counters["cache.curation.hits"] == 1
