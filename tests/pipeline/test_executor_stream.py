"""ParallelExecutor.stream_map and io_map under every backend.

stream_map is the spine of the streaming curate path: it must preserve
input order, keep a bounded look-ahead (never materialise the source),
propagate real work errors, and degrade infrastructure failures to a
serial recompute — in serial, thread, and process modes alike.
"""

import pytest

from repro.obs.tracing import Tracer
from repro.pipeline import ParallelExecutor


def _square(x):
    return x * x


def _boom_on_seven(x):
    if x == 7:
        raise ValueError("seven")
    return x


class TestStreamMapOrdering:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_order_preserved(self, mode):
        executor = ParallelExecutor(mode=mode, max_workers=3)
        out = list(executor.stream_map(_square, range(40)))
        assert out == [x * x for x in range(40)]
        assert not executor.fell_back

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_empty_stream(self, mode):
        executor = ParallelExecutor(mode=mode, max_workers=2)
        assert list(executor.stream_map(_square, [])) == []

    def test_window_one(self):
        executor = ParallelExecutor(mode="thread", max_workers=2)
        out = list(executor.stream_map(_square, range(10), window=1))
        assert out == [x * x for x in range(10)]


class TestStreamMapLaziness:
    @pytest.mark.parametrize("mode,window", [("serial", None),
                                             ("thread", 4)])
    def test_bounded_lookahead(self, mode, window):
        """Consuming one result must not drain the source: at most
        ``window`` items may be pulled ahead of the consumer."""
        pulled = []

        def source():
            for x in range(1000):
                pulled.append(x)
                yield x

        executor = ParallelExecutor(mode=mode, max_workers=2)
        stream = executor.stream_map(_square, source(), window=window)
        first = next(stream)
        assert first == 0
        # Serial pulls exactly one; pooled modes at most the window
        # plus the one being resolved.
        limit = 1 if mode == "serial" else (window or 4) + 1
        assert len(pulled) <= limit

    def test_million_item_source_is_not_materialised(self):
        executor = ParallelExecutor(mode="thread", max_workers=2)
        stream = executor.stream_map(_square, iter(range(10**6)),
                                     window=4)
        head = [next(stream) for _ in range(5)]
        assert head == [0, 1, 4, 9, 16]
        stream.close()


class TestStreamMapFailures:
    def test_thread_mode_propagates_work_errors(self):
        executor = ParallelExecutor(mode="thread", max_workers=2)
        with pytest.raises(ValueError, match="seven"):
            list(executor.stream_map(_boom_on_seven, range(10)))

    def test_serial_mode_propagates_work_errors(self):
        executor = ParallelExecutor.serial()
        with pytest.raises(ValueError, match="seven"):
            list(executor.stream_map(_boom_on_seven, range(10)))

    def test_process_mode_unpicklable_falls_back_to_serial(self):
        executor = ParallelExecutor(mode="process", max_workers=2)
        out = list(executor.stream_map(lambda x: x + 1, range(20)))
        assert out == list(range(1, 21))
        assert executor.fell_back


class TestStreamMapTracing:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_worker_spans_recorded(self, mode):
        executor = ParallelExecutor(mode=mode, max_workers=2)
        tracer = Tracer()
        executor.tracer = tracer
        with tracer.span("parent"):
            out = list(executor.stream_map(_square, range(6)))
        assert out == [x * x for x in range(6)]
        names = [span["name"] for span in tracer.export()]
        workers = [name for name in names if name.startswith("worker[")]
        assert len(workers) == 6


class TestIoMap:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_order_preserved(self, mode):
        """io_map must give ordered results under every backend — the
        process executor routes it through threads (cache probes must
        not be pickled to another process)."""
        executor = ParallelExecutor(mode=mode, max_workers=3)
        out = executor.io_map(_square, list(range(50)))
        assert out == [x * x for x in range(50)]

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_errors_propagate(self, mode):
        executor = ParallelExecutor(mode=mode, max_workers=2)
        with pytest.raises(ValueError, match="seven"):
            executor.io_map(_boom_on_seven, list(range(10)))

    def test_closures_work_under_process_mode(self):
        """Unlike map(), io_map never pickles the function, so local
        closures survive a process-mode executor without fallback."""
        executor = ParallelExecutor(mode="process", max_workers=2)
        offset = 100
        out = executor.io_map(lambda x: x + offset, list(range(10)))
        assert out == [x + 100 for x in range(10)]
