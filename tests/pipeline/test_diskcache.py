"""DiskCache: atomic persistence, digest verification, LRU sweeps.

The persistent tier's contract is narrow but strict: an entry written
by one process is served to the next, a damaged entry is *never*
served (schema, digest, and unpickle failures all discard and report
``CORRUPT`` so the caller recomputes), and the entry count respects
``max_entries`` via mtime-ordered sweeps.
"""

import os

import pytest

from repro.obs import Observability
from repro.pipeline.diskcache import (
    CORRUPT,
    HIT,
    MISS,
    SCHEMA,
    DiskCache,
)


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k1", {"rank": 17, "ok": True})
        assert cache.get("k1") == (HIT, {"rank": 17, "ok": True})
        assert len(cache) == 1

    def test_absent_key_is_a_miss(self, tmp_path):
        assert DiskCache(tmp_path).get("nope") == (MISS, None)

    def test_entries_survive_across_instances(self, tmp_path):
        """The whole point of the tier: a fresh process (here a fresh
        instance) sees the previous run's entries."""
        DiskCache(tmp_path).put("k", [1, 2, 3])
        fresh = DiskCache(tmp_path)
        assert len(fresh) == 1
        assert fresh.get("k") == (HIT, [1, 2, 3])

    def test_overwrite_same_key(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", "first")
        cache.put("k", "second")
        assert cache.get("k") == (HIT, "second")
        assert len(cache) == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = DiskCache(tmp_path)
        for i in range(5):
            cache.put(f"k{i}", i)
        assert not list(tmp_path.glob("*.tmp"))

    def test_unpicklable_value_skipped(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.put("bad", lambda: None) == 0
        assert cache.get("bad") == (MISS, None)
        assert len(cache) == 0


class TestCorruption:
    def _entry_path(self, cache, key):
        path = cache.path_for(key)
        assert path.exists()
        return path

    def test_flipped_payload_byte_detected_and_discarded(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", {"result": "pass"})
        path = self._entry_path(cache, "k")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.get("k") == (CORRUPT, None)
        # Discarded, not re-served: the entry file is gone and the next
        # lookup is a plain miss.
        assert not path.exists()
        assert cache.get("k") == (MISS, None)
        assert len(cache) == 0

    def test_truncated_entry_detected(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", list(range(100)))
        path = self._entry_path(cache, "k")
        path.write_bytes(path.read_bytes()[:-10])
        assert cache.get("k") == (CORRUPT, None)
        assert not path.exists()

    def test_foreign_schema_discarded(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", 1)
        path = self._entry_path(cache, "k")
        raw = path.read_bytes()
        path.write_bytes(raw.replace(SCHEMA, b"pyranet-diskcache/v0"))
        assert cache.get("k") == (CORRUPT, None)
        assert not path.exists()

    def test_garbage_file_discarded(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.path_for("k").write_bytes(b"not an entry at all")
        # The open-time scan counted it; the failed read uncounts it.
        assert DiskCache(tmp_path).get("k") == (CORRUPT, None)

    def test_recompute_after_corruption(self, tmp_path):
        """End to end: corrupt entry -> discarded -> recomputed ->
        healthy entry served afterwards."""
        cache = DiskCache(tmp_path)
        cache.put("k", "original")
        path = self._entry_path(cache, "k")
        raw = bytearray(path.read_bytes())
        raw[len(SCHEMA) + 5] ^= 0x01
        path.write_bytes(bytes(raw))
        status, _ = cache.get("k")
        assert status == CORRUPT
        cache.put("k", "recomputed")
        assert cache.get("k") == (HIT, "recomputed")


class TestEviction:
    def test_sweep_keeps_most_recent(self, tmp_path):
        cache = DiskCache(tmp_path, max_entries=3)
        evicted = 0
        for i in range(6):
            path = cache.path_for(f"k{i}")
            evicted += cache.put(f"k{i}", i)
            # Distinct mtimes make the LRU order deterministic even on
            # coarse-timestamp filesystems.
            os.utime(path, ns=(i * 1_000_000, i * 1_000_000))
        assert evicted == 3
        assert len(cache) == 3
        assert cache.get("k0") == (MISS, None)
        assert cache.get("k5") == (HIT, 5)

    def test_hit_refreshes_recency(self, tmp_path):
        cache = DiskCache(tmp_path, max_entries=2)
        cache.put("old", 1)
        cache.put("hot", 2)
        for i, key in enumerate(("old", "hot")):
            os.utime(cache.path_for(key),
                     ns=(i * 1_000_000, i * 1_000_000))
        # A read is a *use*: it must survive the next sweep even though
        # it was written first.
        assert cache.get("old") == (HIT, 1)
        cache.put("new", 3)
        assert cache.get("old") == (HIT, 1)
        assert cache.get("new") == (HIT, 3)
        assert cache.get("hot") == (MISS, None)

    def test_unbounded_by_default(self, tmp_path):
        cache = DiskCache(tmp_path)
        for i in range(50):
            assert cache.put(f"k{i}", i) == 0
        assert len(cache) == 50

    def _survivors_after_tied_sweep(self, directory):
        """Fill a cache, stamp every entry with ONE mtime, then force a
        sweep and report which keys survived."""
        seed = DiskCache(directory)
        keys = [f"k{i}" for i in range(6)]
        for i, key in enumerate(keys):
            seed.put(key, i)
        for key in keys:
            os.utime(seed.path_for(key), ns=(1_000_000, 1_000_000))
        bounded = DiskCache(directory, max_entries=3)
        bounded.put("fresh", 99)  # over budget -> sweep with tied mtimes
        return sorted(key for key in keys
                      if bounded.get(key)[0] == HIT)

    def test_tied_mtimes_evict_in_path_order(self, tmp_path):
        """Regression: the sweep sorted on mtime alone, so entries
        stamped with the same st_mtime_ns (coarse-timestamp
        filesystems stamp whole batches) were evicted in glob order —
        platform-dependent survivors.  The (mtime, path) sort makes
        the choice deterministic: lexicographically-first paths go."""
        survivors = self._survivors_after_tied_sweep(tmp_path / "a")
        # 7 entries, budget 3, 'fresh' is newest: the two path-greatest
        # of the six tied keys survive alongside it.
        assert survivors == ["k4", "k5"]

    def test_tied_mtimes_same_survivors_every_run(self, tmp_path):
        assert (self._survivors_after_tied_sweep(tmp_path / "one")
                == self._survivors_after_tied_sweep(tmp_path / "two"))


class TestDurability:
    def test_sync_flushes_without_error(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", 1)
        cache.sync()
        assert cache.get("k") == (HIT, 1)

    def test_open_and_sweep_record_spans(self, tmp_path):
        obs = Observability()
        cache = DiskCache(tmp_path, max_entries=1, obs=obs)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.sync()
        names = [span["name"] for span in obs.run_report().spans]
        assert "cache.disk.open" in names
        assert "cache.disk.sweep" in names
        assert "cache.disk.sync" in names

    def test_durable_mode_syncs_each_write(self, tmp_path):
        cache = DiskCache(tmp_path, durable=True)
        cache.put("k", {"durable": True})
        assert cache.get("k") == (HIT, {"durable": True})
