"""Tests for the staged pipeline engine."""
