"""ResultCache under thread pressure: counts must stay exact.

The pre-observability cache bumped plain ints for hits/misses on paths
that released the entry lock first, so concurrent lookups could lose
increments.  Counters are now self-locking instruments; these tests
hammer the cache from many threads and require *exact* totals.
"""

import threading

from repro.obs import MetricRegistry, NullRegistry, Observability
from repro.pipeline import ResultCache


class TestThreadedCounts:
    def test_hits_plus_misses_equals_lookups_exactly(self):
        cache = ResultCache()
        n_threads, n_lookups = 16, 500
        barrier = threading.Barrier(n_threads)

        def hammer(thread_index):
            barrier.wait()
            for i in range(n_lookups):
                # Heavy key overlap across threads: plenty of both
                # hits and misses, racing on the same entries.
                cache.get_or_compute("stress", i % 50,
                                     lambda: thread_index)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = n_threads * n_lookups
        assert cache.hits + cache.misses == total
        # Every distinct key misses at least once; duplicates may
        # double-compute under a race, but never lose a count.
        assert 50 <= cache.misses <= total
        assert len(cache) == 50

    def test_stats_totals_match_counters(self):
        cache = ResultCache()
        for i in range(20):
            cache.get_or_compute("ns", i % 4, lambda: i)
        stats = cache.stats()
        assert stats["hits"] == cache.hits == 16
        assert stats["misses"] == cache.misses == 4
        assert stats["hits"] + stats["misses"] == 20
        assert stats["hit_rate"] == 16 / 20

    def test_get_counts_default_as_miss(self):
        cache = ResultCache()
        assert cache.get("absent", "fallback") == "fallback"
        assert cache.misses == 1
        cache.put("present", 1)
        assert cache.get("present") == 1
        assert cache.hits == 1

    def test_clear_resets_counters(self):
        cache = ResultCache()
        cache.get_or_compute("ns", "a", lambda: 1)
        cache.get_or_compute("ns", "a", lambda: 1)
        cache.clear()
        assert cache.hits == cache.misses == 0
        assert len(cache) == 0


class TestRegistryDelegation:
    def test_counters_live_in_the_shared_registry(self):
        registry = MetricRegistry()
        cache = ResultCache(name="syntax", registry=registry)
        cache.get_or_compute("ns", "x", lambda: 1)
        cache.get_or_compute("ns", "x", lambda: 1)
        assert registry.counters("cache.syntax.") == {
            "cache.syntax.hits": 1, "cache.syntax.misses": 1}
        assert cache.hits == 1 and cache.misses == 1

    def test_registry_counters_surface_in_run_report(self):
        obs = Observability()
        cache = ResultCache(name="eval", registry=obs.registry)
        cache.get_or_compute("ns", "x", lambda: 1)
        cache.get_or_compute("ns", "x", lambda: 1)
        cache.get_or_compute("ns", "y", lambda: 2)
        assert obs.run_report().cache_stats() == {
            "eval": {"hits": 1, "misses": 2}}

    def test_null_registry_falls_back_to_private_counters(self):
        # A noop registry would swallow the counts the engine trace
        # needs; the cache must keep counting privately.
        cache = ResultCache(name="c", registry=NullRegistry())
        cache.get_or_compute("ns", "x", lambda: 1)
        cache.get_or_compute("ns", "x", lambda: 1)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_bound_still_holds(self):
        cache = ResultCache(max_entries=3)
        for i in range(10):
            cache.put(str(i), i)
        assert len(cache) == 3
