"""Warm-run proof: a persistent cache makes re-runs recompute nothing.

The acceptance contract for the disk tier, asserted through the run's
own telemetry rather than timing: running curation (and evaluation)
twice over an unchanged corpus with a shared ``--cache-dir`` style
:class:`DiskCache` must serve *every* cached stage lookup of the second
run from disk — ``cache.<name>.disk.hits > 0`` and zero cache misses,
which is exactly "zero syntax-check / rank / describe / simulation
recompute" because a miss is what triggers a compute.
"""

from repro.corpus import GitHubScrapeSimulator
from repro.dataset import CurationPipeline
from repro.eval.config import EvalConfig
from repro.eval.harness import evaluate_model
from repro.eval.problems.machine import build_machine_problems
from repro.model.interfaces import FineTunable, TrainStats
from repro.obs import Observability
from repro.pipeline import DiskCache, ResultCache


class TinyModel(FineTunable):
    """Deterministic stand-in: same description -> same completion."""

    def train_batch(self, examples, loss_weight):
        return TrainStats()

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None):
        header = module_header or "module top_module();"
        return f"{header}\n  // {len(description)}\nendmodule"


def _curation_cache(tmp_path, obs):
    return ResultCache(name="curation", registry=obs.registry,
                       disk=DiskCache(tmp_path / "curation", obs=obs))


class TestCurationWarmRun:
    def test_second_run_recomputes_nothing(self, tmp_path):
        raw_files = GitHubScrapeSimulator(seed=5).scrape(80)

        def run_once():
            obs = Observability()
            cache = _curation_cache(tmp_path, obs)
            result = CurationPipeline(seed=5, obs=obs,
                                      cache=cache).run(raw_files)
            return result, obs.run_report().metrics["counters"]

        cold_result, cold = run_once()
        warm_result, warm = run_once()

        # Cold run: everything was computed and written through.
        assert cold["cache.curation.disk.hits"] == 0
        assert cold["cache.curation.disk.misses"] > 0

        # Warm run: every lookup served from the persistent tier —
        # zero misses means zero syntax/rank/describe recomputes.
        assert warm["cache.curation.disk.hits"] > 0
        assert warm["cache.curation.disk.misses"] == 0
        assert warm["cache.curation.disk.corrupt"] == 0
        assert warm["cache.curation.misses"] == 0
        assert (warm["cache.curation.hits"]
                == warm["cache.curation.disk.hits"])

        # And the cache cannot have changed any decision.
        assert ([e.code for e in warm_result.dataset]
                == [e.code for e in cold_result.dataset])
        assert (warm_result.dataset.layer_sizes()
                == cold_result.dataset.layer_sizes())

    def test_trace_meta_carries_disk_stats(self, tmp_path):
        raw_files = GitHubScrapeSimulator(seed=5).scrape(40)
        obs = Observability()
        cache = _curation_cache(tmp_path, obs)
        result = CurationPipeline(seed=5, obs=obs,
                                  cache=cache).run(raw_files)
        disk = result.report.trace.meta["cache"]["disk"]
        assert disk["entries"] > 0
        assert disk["misses"] > 0


class TestEvalWarmRun:
    def test_second_evaluation_skips_all_simulation(self, tmp_path):
        problems = build_machine_problems()[:6]

        def run_once():
            obs = Observability()
            cache = ResultCache(name="eval", registry=obs.registry,
                                disk=DiskCache(tmp_path / "eval",
                                               obs=obs))
            report = evaluate_model(
                TinyModel(), problems,
                EvalConfig(n_samples=3, seed=3, n_test_vectors=8),
                cache=cache, obs=obs)
            return report, obs.run_report().metrics["counters"]

        cold_report, cold = run_once()
        warm_report, warm = run_once()

        assert cold["cache.eval.disk.misses"] > 0
        assert warm["cache.eval.disk.hits"] > 0
        assert warm["cache.eval.disk.misses"] == 0
        assert warm["cache.eval.misses"] == 0
        # Identical pass@k: the cache replays, never alters, outcomes.
        assert warm_report.pass_at(1) == cold_report.pass_at(1)
