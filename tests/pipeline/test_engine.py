"""Unit tests for the staged pipeline engine.

Covers the result cache, the parallel executor (all modes, order
preservation, serial fallback), record/batch stages, and the trace
instrumentation with its JSON round-trip.
"""

import pytest

from repro.pipeline import (
    BatchStage,
    Drop,
    Keep,
    ParallelExecutor,
    PipelineTrace,
    Record,
    RecordStage,
    ResultCache,
    StagedPipeline,
    StageMetrics,
    content_key,
)


# module-level so the process pool can pickle it
def _double(x):
    return x * 2


class TestResultCache:
    def test_get_or_compute_memoises(self):
        cache = ResultCache()
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute("ns", "content", compute) == 42
        assert cache.get_or_compute("ns", "content", compute) == 42
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_namespaces_do_not_collide(self):
        cache = ResultCache()
        cache.get_or_compute("a", "x", lambda: 1)
        assert cache.get_or_compute("b", "x", lambda: 2) == 2

    def test_content_key_parts_are_length_prefixed(self):
        assert content_key("ns", "ab", "c") != content_key("ns", "a", "bc")

    def test_eviction_respects_max_entries(self):
        cache = ResultCache(max_entries=2)
        for i in range(5):
            cache.put(f"k{i}", i)
        assert len(cache) == 2

    def test_stats_shape(self):
        cache = ResultCache()
        cache.get_or_compute("ns", "x", lambda: 1)
        cache.get_or_compute("ns", "x", lambda: 1)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_clear_resets_counters(self):
        cache = ResultCache()
        cache.get_or_compute("ns", "x", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0


class TestParallelExecutor:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_map_matches_serial_loop(self, mode):
        executor = ParallelExecutor(mode=mode, max_workers=2)
        items = list(range(23))
        assert executor.map(_double, items) == [x * 2 for x in items]
        # Deterministic order regardless of mode; a pool never fell
        # back on picklable module-level work.
        assert not executor.fell_back

    def test_unpicklable_work_falls_back_to_serial(self):
        executor = ParallelExecutor(mode="process", max_workers=2)
        offset = 10
        result = executor.map(lambda x: x + offset, list(range(8)))
        assert result == [x + 10 for x in range(8)]
        assert executor.fell_back

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            ParallelExecutor(mode="fibers")

    def test_fn_errors_propagate_in_thread_mode(self):
        executor = ParallelExecutor(mode="thread", max_workers=2)

        def boom(x):
            raise KeyError(x)

        with pytest.raises(KeyError):
            executor.map(boom, list(range(4)))

    def test_from_env_reads_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE_MODE", "serial")
        monkeypatch.setenv("REPRO_PIPELINE_WORKERS", "3")
        executor = ParallelExecutor.from_env(default_mode="thread")
        assert executor.mode == "serial"
        assert executor.max_workers == 3

    def test_chunking_covers_all_items(self):
        executor = ParallelExecutor(mode="thread", max_workers=4,
                                    chunk_size=3)
        items = list(range(10))
        assert executor.map(_double, items) == [x * 2 for x in items]


def _keep_even(x):
    if x % 2:
        return Drop("odd")
    return Keep(value=x * 10, meta={"seen": True})


class TestStages:
    def test_record_stage_filters_and_maps(self):
        pipeline = StagedPipeline(
            "t", [RecordStage("evens", _keep_even)]
        )
        result = pipeline.run(values=[0, 1, 2, 3, 4])
        assert [r.value for r in result.records] == [0, 20, 40]
        assert all(r.meta["seen"] for r in result.records)
        metrics = result.trace.stage("evens")
        assert metrics.n_in == 5 and metrics.n_out == 3
        assert metrics.drops == {"odd": 2}

    def test_plain_return_value_replaces_payload(self):
        pipeline = StagedPipeline("t", [RecordStage("double", _double)])
        result = pipeline.run(values=[1, 2])
        assert [r.value for r in result.records] == [2, 4]

    def test_when_predicate_skips_records(self):
        stage = RecordStage(
            "mark", lambda v: Keep(meta={"marked": True}),
            when=lambda record: record.value > 1,
        )
        result = StagedPipeline("t", [stage]).run(values=[0, 5])
        assert "marked" not in result.records[0].meta
        assert result.records[1].meta["marked"]

    def test_record_indices_survive_filtering(self):
        pipeline = StagedPipeline("t", [RecordStage("evens", _keep_even)])
        result = pipeline.run(values=[1, 2, 3, 4])
        assert [r.index for r in result.records] == [1, 3]

    def test_cached_stage_computes_each_distinct_value_once(self):
        calls = []

        def expensive(value):
            calls.append(value)
            return Keep(meta={"len": len(value)})

        cache = ResultCache()
        pipeline = StagedPipeline(
            "t",
            [RecordStage("measure", expensive, cache_namespace="len")],
            cache=cache,
        )
        result = pipeline.run(values=["aa", "bbb", "aa", "aa"])
        assert sorted(calls) == ["aa", "bbb"]
        assert [r.meta["len"] for r in result.records] == [2, 3, 2, 2]
        # Second run over the same values is all hits.
        calls.clear()
        pipeline.run(values=["aa", "bbb"])
        assert calls == []

    def test_cache_traffic_attributed_to_stage(self):
        cache = ResultCache()
        stage = RecordStage("measure", lambda v: len(v),
                            cache_namespace="len")
        pipeline = StagedPipeline("t", [stage], cache=cache)
        trace1 = pipeline.run(values=["a", "b"]).trace
        trace2 = pipeline.run(values=["a", "b"]).trace
        assert trace1.stage("measure").cache_misses == 2
        assert trace2.stage("measure").cache_hits == 2
        assert trace2.stage("measure").cache_hit_rate == 1.0

    def test_batch_stage_reports_drops(self):
        def keep_first_two(records):
            return records[:2], [(r, "overflow") for r in records[2:]]

        pipeline = StagedPipeline("t", [BatchStage("cap", keep_first_two)])
        result = pipeline.run(values=list("abcde"))
        assert [r.value for r in result.records] == ["a", "b"]
        assert result.trace.stage("cap").drops == {"overflow": 3}

    def test_batch_stage_plain_list_return(self):
        pipeline = StagedPipeline(
            "t", [BatchStage("rev", lambda records: records[::-1])]
        )
        result = pipeline.run(values=[1, 2, 3])
        assert [r.value for r in result.records] == [3, 2, 1]

    def test_parallel_and_serial_agree(self):
        stages = lambda: [  # noqa: E731 - tiny factory
            RecordStage("evens", _keep_even),
            BatchStage("rev", lambda records: records[::-1]),
        ]
        values = list(range(40))
        serial = StagedPipeline("s", stages(),
                                executor=ParallelExecutor.serial())
        threaded = StagedPipeline(
            "p", stages(),
            executor=ParallelExecutor(mode="thread", max_workers=4))
        a = serial.run(values=values)
        b = threaded.run(values=values)
        assert ([(r.index, r.value) for r in a.records]
                == [(r.index, r.value) for r in b.records])


class TestTrace:
    def _trace(self):
        cache = ResultCache()
        pipeline = StagedPipeline(
            "demo",
            [
                RecordStage("evens", _keep_even),
                RecordStage("name", lambda v: f"v{v}",
                            cache_namespace="name", key_of=str),
            ],
            cache=cache,
        )
        return pipeline.run(values=list(range(6))).trace

    def test_wall_times_and_counts(self):
        trace = self._trace()
        assert [m.name for m in trace.stages] == ["evens", "name"]
        assert all(m.wall_time_s >= 0.0 for m in trace.stages)
        assert trace.wall_time_s >= sum(m.wall_time_s
                                        for m in trace.stages) * 0.5
        assert trace.stage("evens").n_dropped == 3
        assert trace.meta["executor"]["mode"] == "serial"
        assert trace.meta["n_input"] == 6
        assert trace.meta["cache"]["misses"] == 3

    def test_drop_histogram_sums_stages(self):
        trace = self._trace()
        assert trace.drop_histogram() == {"odd": 3}

    def test_json_round_trip(self):
        trace = self._trace()
        restored = PipelineTrace.from_json(trace.to_json())
        assert restored.to_dict() == trace.to_dict()
        assert restored.stage("name").cache_misses == 3

    def test_summary_lines_mention_every_stage(self):
        trace = self._trace()
        text = "\n".join(trace.summary_lines())
        assert "evens" in text and "name" in text

    def test_stage_metrics_round_trip(self):
        metrics = StageMetrics(name="s", n_in=4, n_out=2,
                               wall_time_s=0.5, drops={"bad": 2},
                               cache_hits=1, cache_misses=3)
        assert StageMetrics.from_dict(metrics.to_dict()) == metrics

    def test_unknown_stage_lookup_returns_none(self):
        assert self._trace().stage("nope") is None
